"""Reproduction of *NewMadeleine: a Fast Communication Scheduling Engine for
High Performance Networks* (Aumage, Brunet, Furmento, Namyst — INRIA
RR-6085, 2007).

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event kernel (events, processes, tracing).
``repro.netsim``
    Simulated hardware substrate: NICs, links, nodes, clusters, calibrated
    technology profiles and the host memory model.
``repro.core``
    The NewMadeleine engine itself: optimization window, strategy database,
    rendezvous protocol, transfer/collect layers, incremental pack API.
``repro.madmpi``
    MAD-MPI: the paper's MPI subset (plus derived datatypes and, as an
    extension, collectives).
``repro.baselines``
    Executable models of the paper's comparators (MPICH, OpenMPI).
``repro.bench``
    The paper's ping-pong programs, figure sweeps, irregular-traffic
    generator and table reporting.

The most common entry points are re-exported here.
"""

from repro.core import NmadEngine
from repro.errors import ReproError
from repro.madmpi import Communicator, MadMpi
from repro.netsim import (
    Cluster,
    MX_MYRI10G,
    PROFILES,
    QUADRICS_QM500,
)
from repro.sim import Simulator, Tracer

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Communicator",
    "MX_MYRI10G",
    "MadMpi",
    "NmadEngine",
    "PROFILES",
    "QUADRICS_QM500",
    "ReproError",
    "Simulator",
    "Tracer",
    "__version__",
]

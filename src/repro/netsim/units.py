"""Units and size helpers.

Library-wide conventions (documented once here, relied on everywhere):

* **time** is simulated microseconds (``float``),
* **sizes** are bytes (``int``),
* **bandwidths** are bytes per microsecond (== MB/s / 1e0... precisely:
  1 byte/us = 10^6 bytes/s ≈ 0.9537 MiB/s; we use the decimal convention
  ``1 MB/s == 1e6 bytes/s == 1 byte/us`` which matches how the paper's
  axes are labelled).

The paper's message-size axes use "characters" with labels like ``4``,
``1K``, ``2M``; :func:`parse_size` and :func:`format_size` mirror that
labelling so benchmark tables read like the figures.
"""

from __future__ import annotations

import math

__all__ = [
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "mbps_to_bytes_per_us",
    "bytes_per_us_to_mbps",
    "wire_time_us",
    "log2_size_sweep",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

_SUFFIXES = {"": 1, "B": 1, "K": KB, "KB": KB, "M": MB, "MB": MB, "G": GB, "GB": GB}


def parse_size(text: str | int) -> int:
    """Parse a figure-axis style size label (``"4"``, ``"32K"``, ``"2M"``).

    Integers pass through unchanged.  Raises ``ValueError`` on nonsense.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size {text}")
        return text
    s = text.strip().upper()
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    num, suffix = s[:idx], s[idx:]
    if not num.isdigit() or suffix not in _SUFFIXES:
        raise ValueError(f"cannot parse size {text!r}")
    return int(num) * _SUFFIXES[suffix]


def format_size(nbytes: int) -> str:
    """Format bytes the way the paper labels its x axes (``4``, ``1K``, ``2M``)."""
    if nbytes < 0:
        raise ValueError(f"negative size {nbytes}")
    for factor, suffix in ((GB, "G"), (MB, "M"), (KB, "K")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return str(nbytes)


def mbps_to_bytes_per_us(mbps: float) -> float:
    """Convert decimal MB/s to bytes per microsecond (numerically equal)."""
    if mbps < 0:
        raise ValueError(f"negative bandwidth {mbps}")
    return mbps  # 1 MB/s = 1e6 B / 1e6 us = 1 B/us

def bytes_per_us_to_mbps(bpu: float) -> float:
    """Convert bytes per microsecond to decimal MB/s (numerically equal)."""
    if bpu < 0:
        raise ValueError(f"negative bandwidth {bpu}")
    return bpu


def wire_time_us(nbytes: int, bandwidth_mbps: float) -> float:
    """Serialization time of ``nbytes`` at ``bandwidth_mbps`` decimal MB/s."""
    if nbytes < 0:
        raise ValueError(f"negative size {nbytes}")
    if bandwidth_mbps <= 0:
        raise ValueError(f"non-positive bandwidth {bandwidth_mbps}")
    return nbytes / mbps_to_bytes_per_us(bandwidth_mbps)


def log2_size_sweep(lo: str | int, hi: str | int) -> list[int]:
    """Inclusive power-of-two sweep between two sizes, like the figure axes.

    ``log2_size_sweep("4", "2M")`` reproduces the x axis of paper Figure 2.
    """
    lo_b, hi_b = parse_size(lo), parse_size(hi)
    if lo_b <= 0 or hi_b < lo_b:
        raise ValueError(f"bad sweep bounds ({lo!r}, {hi!r})")
    if 2 ** int(math.log2(lo_b)) != lo_b:
        raise ValueError(f"sweep bounds must be powers of two, got {lo!r}")
    sizes = []
    size = lo_b
    while size <= hi_b:
        sizes.append(size)
        size *= 2
    return sizes

"""Structured network fabrics: switches, fat-tree and dragonfly builders.

The paper's experiments run on flat point-to-point meshes (two hosts, one
wire per rail), and :class:`~repro.netsim.topology.Cluster` keeps that as
its default so every figure stays bit-identical.  This module adds the
*structured* fabrics that ROADMAP item 5 asks for: traffic between node
pairs traverses shared switch ports modeled as contention points, and a
whole switch — or the rack behind it — can die as one correlated event.

Design constraints, in order:

* **Reuse the wire machinery.**  A :class:`Switch` is a lightweight frame
  forwarder that plugs into the existing :class:`~repro.netsim.link.Link`
  endpoints: links deliver into ``switch._arrive`` exactly as they deliver
  into a NIC, and the switch re-transmits on an egress link after a FIFO
  per-port serialization delay.  No frame is ever rewritten; addressing
  stays end-to-end (``frame.dst_node`` is always a host).
* **Determinism.**  ECMP path choice hashes ``(src, dst, switch salt)``
  through an explicit integer mixer — never Python's ``hash()``, which the
  sanitize CI sweeps across ``PYTHONHASHSEED`` values.  The same flow takes
  the same path on every run with the same builder seed.
* **Local reroute.**  When a switch's primary next hop for a flow is dead,
  it re-hashes over the surviving candidates and counts a
  ``paths_rerouted`` event — this is how a mid-transfer spine kill heals
  without any endpoint knowing the fabric's shape.

Builders are frozen specs (:class:`Mesh`, :class:`FatTree`,
:class:`Dragonfly`) with a ``build`` method the cluster calls once per
rail.  Port bandwidth and per-hop latency come from the rail's
:class:`~repro.netsim.profiles.NicProfile`, so a fat-tree rail built from
``MX_MYRI10G`` serializes at the same 1250 MB/s per hop as the flat wire.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Union

from repro.errors import NetworkError
from repro.netsim.frames import Frame
from repro.netsim.link import FaultPlan, Link
from repro.netsim.profiles import NicProfile
from repro.netsim.units import wire_time_us
from repro.sim import Simulator, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.nic import Nic
    from repro.netsim.topology import Cluster

__all__ = [
    "Switch",
    "Mesh",
    "FatTree",
    "Dragonfly",
    "TopologySpec",
    "resolve_topology",
    "flow_hash",
]


def flow_hash(src_node: int, dst_node: int, salt: int) -> int:
    """Deterministic 32-bit flow mixer for ECMP port selection.

    An explicit multiply/xor avalanche (xxhash-style constants) so the
    choice is a pure function of the flow and the builder seed — immune to
    ``PYTHONHASHSEED`` and identical on every platform.
    """
    h = (src_node + 0x100) * 0x9E3779B1
    h ^= (dst_node + 0x200) * 0x85EBCA77
    h ^= (salt + 0x300) * 0xC2B2AE3D
    h &= 0xFFFFFFFF
    h ^= h >> 15
    h = (h * 0x2C1B3C6D) & 0xFFFFFFFF
    h ^= h >> 13
    return h


class _Port:
    """One egress port: a FIFO serialization queue in front of a link."""

    __slots__ = (
        "switch", "port_id", "link", "next_hop", "bandwidth_mbps",
        "_queue", "_busy", "_current", "frames_forwarded", "bytes_forwarded",
    )

    def __init__(
        self,
        switch: Switch,
        port_id: int,
        link: Link,
        next_hop: Switch | None,
        bandwidth_mbps: float,
    ) -> None:
        self.switch = switch
        self.port_id = port_id
        self.link = link
        self.next_hop = next_hop
        self.bandwidth_mbps = bandwidth_mbps
        self._queue: deque[Frame] = deque()
        self._busy = False
        self._current: Frame | None = None
        self.frames_forwarded = 0
        self.bytes_forwarded = 0

    @property
    def alive(self) -> bool:
        """Usable for new flows: the far end is a host or a live switch."""
        return self.next_hop is None or self.next_hop.up

    @property
    def depth(self) -> int:
        """Frames queued behind the one being serialized (contention)."""
        return len(self._queue)

    def push(self, frame: Frame) -> None:
        self._queue.append(frame)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        frame = self._queue.popleft()
        self._busy = True
        self._current = frame
        gen = self.switch.generation
        self.switch.sim.schedule(
            wire_time_us(frame.wire_size, self.bandwidth_mbps),
            lambda: self._finish(frame, gen),
        )

    def _finish(self, frame: Frame, gen: int) -> None:
        if gen != self.switch.generation:
            return  # switch died mid-serialization; fail() accounted the frame
        self._current = None
        self.frames_forwarded += 1
        self.bytes_forwarded += frame.wire_size
        self.switch.frames_forwarded += 1
        self.switch.bytes_forwarded += frame.wire_size
        self.link.transmit(frame)
        if self._queue:
            self._start_next()
        else:
            self._busy = False


class Switch:
    """A frame forwarder: FIFO output ports plus a static ECMP route table.

    Switches sit *between* links: an ingress link's ``dst`` endpoint.  They
    never originate traffic, so ``node_id`` is a negative sentinel that can
    never collide with a host id (hosts are ``0..n-1``).
    """

    #: Links skip the endpoint-address check for forwarders (the frame's
    #: ``dst_node`` names the final host, not the switch).
    is_forwarder: ClassVar[bool] = True

    def __init__(
        self,
        sim: Simulator,
        switch_id: int,
        name: str,
        tier: str,
        rail: int,
        salt: int,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.switch_id = switch_id
        self.node_id = -1 - switch_id
        self.name = name
        self.tier = tier  # "edge" | "agg" | "core" | "router"
        self.rail = rail
        self.group = -1  # pod / core group / dragonfly group (builder sets)
        self.salt = salt
        self.tracer = tracer if tracer is not None else Tracer()
        self.up = True
        self._gen = 0
        self.ports: list[_Port] = []
        #: dst host id -> candidate egress port ids (ECMP set).
        self.routes: dict[int, tuple[int, ...]] = {}
        # Counters (mirrored by stats.SWITCH_COUNTERS into the report).
        self.frames_forwarded = 0
        self.bytes_forwarded = 0
        self.frames_dropped = 0
        self.bytes_dropped = 0
        self.paths_rerouted = 0

    @property
    def generation(self) -> int:
        """Incarnation counter; bumping it voids in-flight port closures."""
        return self._gen

    # -- wiring -------------------------------------------------------------
    def add_port(self, link: Link, bandwidth_mbps: float,
                 next_hop: Switch | None = None) -> int:
        """Attach an egress ``link``; returns the new port id.

        ``bandwidth_mbps`` is the port's serialization rate — builders pass
        the rail profile's rate so every hop matches the flat wire.
        """
        if bandwidth_mbps <= 0:
            raise NetworkError(f"{self.name}: bad port bandwidth {bandwidth_mbps}")
        port = _Port(self, len(self.ports), link, next_hop, bandwidth_mbps)
        self.ports.append(port)
        return port.port_id

    def add_route(self, dst_node: int, port_ids: tuple[int, ...]) -> None:
        if not port_ids:
            raise NetworkError(f"{self.name}: empty ECMP set for {dst_node}")
        self.routes[dst_node] = port_ids

    # -- forwarding ---------------------------------------------------------
    def select_port(self, src_node: int, dst_node: int,
                    count: bool = True) -> int | None:
        """Pick the egress port for a flow; ``None`` when no live path.

        The primary choice hashes the flow over the full ECMP set; when the
        primary's next hop is down the flow re-hashes over the survivors (a
        *reroute*, counted when ``count`` is true).  ``count=False`` gives a
        side-effect-free peek for path walks and tests.
        """
        candidates = self.routes.get(dst_node)
        if candidates is None:
            raise NetworkError(f"{self.name}: no route to node {dst_node}")
        h = flow_hash(src_node, dst_node, self.salt)
        primary = candidates[h % len(candidates)]
        if self.ports[primary].alive:
            return primary
        alive = [p for p in candidates if self.ports[p].alive]
        if not alive:
            return None
        if count:
            self.paths_rerouted += 1
            self.tracer.emit(self.sim.now, self.name, "reroute",
                             src=src_node, dst=dst_node,
                             around=self.ports[primary].link.name)
        return alive[h % len(alive)]

    def _arrive(self, frame: Frame) -> None:
        """Link delivery endpoint: forward or drop (same duck type as Nic)."""
        if not self.up:
            self.frames_dropped += 1
            self.bytes_dropped += frame.wire_size
            return
        port_id = self.select_port(frame.src_node, frame.dst_node)
        if port_id is None:
            # Every candidate next hop is dead: a black hole.  The bytes are
            # accounted here so conservation audits can explain the loss.
            self.frames_dropped += 1
            self.bytes_dropped += frame.wire_size
            self.tracer.emit(self.sim.now, self.name, "black_hole",
                             frame=frame.frame_id, dst=frame.dst_node)
            return
        self.ports[port_id].push(frame)

    # -- fault domain -------------------------------------------------------
    def fail(self) -> None:
        """Power off: every queued and in-flight frame is lost, idempotently."""
        if not self.up:
            return
        self.up = False
        self._gen += 1
        for port in self.ports:
            for frame in port._queue:
                self.frames_dropped += 1
                self.bytes_dropped += frame.wire_size
            if port._current is not None:
                self.frames_dropped += 1
                self.bytes_dropped += port._current.wire_size
            port._queue.clear()
            port._busy = False
            port._current = None
        self.tracer.emit(self.sim.now, self.name, "switch_down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return (f"<Switch {self.name} {state} ports={len(self.ports)} "
                f"fwd={self.frames_forwarded}>")


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def _link(cluster: "Cluster", src: "Nic | Switch", dst: "Nic | Switch",
          latency_us: float) -> Link:
    link = Link(cluster.sim, src, dst, latency_us, tracer=cluster.tracer)
    cluster.links.append(link)
    return link


@dataclass(frozen=True)
class Mesh:
    """The paper-faithful default: a full point-to-point mesh per rail."""

    name: ClassVar[str] = "mesh"

    def capacity(self) -> int:
        return 1 << 30  # a mesh scales (quadratically) to any node count

    def build(self, cluster: "Cluster", rail_idx: int,
              profile: NicProfile) -> None:
        # NOTE: this loop order is load-bearing — it reproduces the original
        # Cluster.__init__ wiring exactly, so link list order, event order
        # and therefore every figure stay bit-identical.
        n_nodes = len(cluster.nodes)
        for a in range(n_nodes):
            for b in range(n_nodes):
                if a == b:
                    continue
                src = cluster.nodes[a].nic(rail_idx)
                dst = cluster.nodes[b].nic(rail_idx)
                link = _link(cluster, src, dst, profile.latency_us)
                src.connect(b, link)


@dataclass(frozen=True)
class FatTree:
    """A k-ary fat-tree (k pods of k/2 edge + k/2 agg, (k/2)·m cores).

    ``oversubscription`` trims the agg→core fan-out: each aggregation
    switch keeps ``m = max(1, (k/2)//oversubscription)`` core uplinks, so
    the spine shrinks while edge connectivity is preserved (every pod's
    column-``a`` agg reaches the same ``m`` cores of group ``a``, so
    up/down routing never black-holes on a healthy fabric).
    """

    k: int = 4
    oversubscription: int = 1
    seed: int = 0
    name: ClassVar[str] = "fat-tree"

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise NetworkError(f"fat-tree k must be even and >= 2, got {self.k}")
        if self.oversubscription < 1:
            raise NetworkError(
                f"oversubscription must be >= 1, got {self.oversubscription}")
        if self.seed < 0:
            raise NetworkError(f"seed must be >= 0, got {self.seed}")

    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def cores_per_group(self) -> int:
        return max(1, self.half // self.oversubscription)

    def capacity(self) -> int:
        return self.k * self.half * self.half  # k^3/4 at oversub 1

    def build(self, cluster: "Cluster", rail_idx: int,
              profile: NicProfile) -> None:
        n_nodes = len(cluster.nodes)
        k, half, m = self.k, self.half, self.cores_per_group
        lat = profile.latency_us
        bw = profile.bandwidth_mbps
        mk = cluster._new_switch

        # Switches: edges/aggs per (pod, column), cores per (group, member).
        edges = [[mk(f"ft{rail_idx}.pod{p}.edge{e}", "edge", rail_idx,
                     self.seed, group=p)
                  for e in range(half)] for p in range(k)]
        aggs = [[mk(f"ft{rail_idx}.pod{p}.agg{a}", "agg", rail_idx,
                    self.seed, group=p)
                 for a in range(half)] for p in range(k)]
        cores = [[mk(f"ft{rail_idx}.core{g}.{c}", "core", rail_idx,
                     self.seed, group=g)
                  for c in range(m)] for g in range(half)]

        # Hosts round-robin ACROSS pods first (host 0 -> pod0.edge0,
        # host 1 -> pod1.edge0, ...), so even a two-node drill crosses the
        # spine instead of sharing an edge switch.
        edge_order = [(p, e) for e in range(half) for p in range(k)]
        attach: dict[int, tuple[int, int]] = {}
        members: dict[tuple[int, int], list[int]] = {pe: [] for pe in edge_order}
        for host in range(n_nodes):
            pe = edge_order[host % len(edge_order)]
            attach[host] = pe
            members[pe].append(host)
        if rail_idx == 0:
            cluster.racks = [members[pe] for pe in edge_order if members[pe]]

        # Host <-> edge wiring.
        for host in range(n_nodes):
            p, e = attach[host]
            edge = edges[p][e]
            nic = cluster.nodes[host].nic(rail_idx)
            uplink = _link(cluster, nic, edge, lat)
            nic.set_uplink(uplink)
            cluster.host_uplinks[(host, rail_idx)] = uplink
            down = _link(cluster, edge, nic, lat)
            edge.add_route(host, (edge.add_port(down, bw),))

        # Edge <-> agg wiring (full bipartite within each pod).  Record the
        # agg-side down port towards each edge for the agg route table.
        agg_down: dict[tuple[int, int, int], int] = {}
        for p in range(k):
            for e in range(half):
                edge = edges[p][e]
                ups = []
                for a in range(half):
                    agg = aggs[p][a]
                    ups.append(edge.add_port(
                        _link(cluster, edge, agg, lat), bw, next_hop=agg))
                    agg_down[(p, a, e)] = agg.add_port(
                        _link(cluster, agg, edge, lat), bw, next_hop=edge)
                # Edge routes: local hosts already direct; all others ECMP up.
                ecmp = tuple(ups)
                for host in range(n_nodes):
                    if attach[host] != (p, e):
                        edge.add_route(host, ecmp)

        # Agg <-> core wiring: column a talks to core group a, members 0..m-1.
        for p in range(k):
            for a in range(half):
                agg = aggs[p][a]
                core_ups = []
                for c in range(m):
                    core = cores[a][c]
                    core_ups.append(agg.add_port(
                        _link(cluster, agg, core, lat), bw, next_hop=core))
                    core.add_port(_link(cluster, core, agg, lat), bw,
                                  next_hop=agg)
                # Agg routes: down to the pod's edges, ECMP up otherwise.
                ecmp_up = tuple(core_ups)
                for host in range(n_nodes):
                    hp, he = attach[host]
                    if hp == p:
                        agg.add_route(host, (agg_down[(p, a, he)],))
                    else:
                        agg.add_route(host, ecmp_up)

        # Core routes: one down port per pod (to that pod's column-a agg).
        for g in range(half):
            for c in range(m):
                core = cores[g][c]
                down_by_pod = {}
                for port in core.ports:
                    assert port.next_hop is not None
                    down_by_pod[port.next_hop.group] = port.port_id
                for host in range(n_nodes):
                    hp, _he = attach[host]
                    core.add_route(host, (down_by_pod[hp],))

        # Rack fault-domain bookkeeping: a rack is one edge switch's hosts;
        # its switch set spans every rail's copy of that edge.
        rack_idx = 0
        for pe in edge_order:
            if not members[pe]:
                continue
            p, e = pe
            if rail_idx == 0:
                cluster._rack_switches.append([edges[p][e]])
            else:
                cluster._rack_switches[rack_idx].append(edges[p][e])
            rack_idx += 1


@dataclass(frozen=True)
class Dragonfly:
    """A dragonfly: all-to-all routers per group, pairwise global links.

    Each unordered group pair gets one global link (both directions) hosted
    by the least-loaded router on each side (deterministic, lowest index on
    ties).  Minimal routing: direct global port when the router owns one,
    else ECMP over the local gateways that do.
    """

    groups: int = 4
    routers: int = 2
    hosts_per_router: int = 2
    global_links: int = 2
    seed: int = 0
    name: ClassVar[str] = "dragonfly"

    def __post_init__(self) -> None:
        if self.groups < 2:
            raise NetworkError(f"dragonfly needs >= 2 groups, got {self.groups}")
        if self.routers < 1 or self.hosts_per_router < 1:
            raise NetworkError("dragonfly routers and hosts_per_router must be >= 1")
        if self.routers * self.global_links < self.groups - 1:
            raise NetworkError(
                f"dragonfly under-provisioned: {self.routers} routers x "
                f"{self.global_links} global links < {self.groups - 1} peer groups")
        if self.seed < 0:
            raise NetworkError(f"seed must be >= 0, got {self.seed}")

    def capacity(self) -> int:
        return self.groups * self.routers * self.hosts_per_router

    def build(self, cluster: "Cluster", rail_idx: int,
              profile: NicProfile) -> None:
        n_nodes = len(cluster.nodes)
        lat = profile.latency_us
        bw = profile.bandwidth_mbps
        mk = cluster._new_switch
        routers = [[mk(f"df{rail_idx}.g{g}.r{r}", "router", rail_idx,
                       self.seed, group=g)
                    for r in range(self.routers)] for g in range(self.groups)]

        # Hosts fill group by group (rack == group).
        attach: dict[int, tuple[int, int]] = {}
        group_hosts: list[list[int]] = [[] for _ in range(self.groups)]
        for host in range(n_nodes):
            g = host // (self.routers * self.hosts_per_router)
            r = (host // self.hosts_per_router) % self.routers
            attach[host] = (g, r)
            group_hosts[g].append(host)
        if rail_idx == 0:
            cluster.racks = [hosts for hosts in group_hosts if hosts]

        # Host <-> router wiring.
        for host in range(n_nodes):
            g, r = attach[host]
            router = routers[g][r]
            nic = cluster.nodes[host].nic(rail_idx)
            uplink = _link(cluster, nic, router, lat)
            nic.set_uplink(uplink)
            cluster.host_uplinks[(host, rail_idx)] = uplink
            down = _link(cluster, router, nic, lat)
            router.add_route(host, (router.add_port(down, bw),))

        # Local all-to-all within each group.
        local_port: dict[tuple[int, int, int], int] = {}
        for g in range(self.groups):
            for r1 in range(self.routers):
                for r2 in range(self.routers):
                    if r1 == r2:
                        continue
                    link = _link(cluster, routers[g][r1], routers[g][r2], lat)
                    local_port[(g, r1, r2)] = routers[g][r1].add_port(
                        link, bw, next_hop=routers[g][r2])

        # Global links: one per unordered group pair, balanced per router.
        load = [[0] * self.routers for _ in range(self.groups)]
        gateway: dict[tuple[int, int], list[tuple[int, int]]] = {}
        global_port: dict[tuple[int, int, int], int] = {}
        for gj in range(self.groups):
            for gi in range(gj):
                # min() keeps the first (lowest-index) router on ties.
                ri = min(range(self.routers), key=load[gi].__getitem__)
                rj = min(range(self.routers), key=load[gj].__getitem__)
                load[gi][ri] += 1
                load[gj][rj] += 1
                a, b = routers[gi][ri], routers[gj][rj]
                global_port[(gi, ri, gj)] = a.add_port(
                    _link(cluster, a, b, lat), bw, next_hop=b)
                global_port[(gj, rj, gi)] = b.add_port(
                    _link(cluster, b, a, lat), bw, next_hop=a)
                gateway.setdefault((gi, gj), []).append((ri, rj))
                gateway.setdefault((gj, gi), []).append((rj, ri))

        # Routes: direct global port, else local hop to a gateway router.
        for g in range(self.groups):
            for r in range(self.routers):
                router = routers[g][r]
                for host in range(n_nodes):
                    hg, hr = attach[host]
                    if hg == g:
                        if hr != r:
                            router.add_route(
                                host, (local_port[(g, r, hr)],))
                        continue
                    direct = global_port.get((g, r, hg))
                    if direct is not None:
                        router.add_route(host, (direct,))
                    else:
                        gates = tuple(
                            local_port[(g, r, gr)]
                            for gr, _far in gateway[(g, hg)] if gr != r)
                        router.add_route(host, gates)

        if rail_idx == 0:
            cluster._rack_switches.extend(
                [list(routers[g]) for g in range(self.groups) if group_hosts[g]])
        else:
            rack_idx = 0
            for g in range(self.groups):
                if not group_hosts[g]:
                    continue
                cluster._rack_switches[rack_idx].extend(routers[g])
                rack_idx += 1


TopologySpec = Union[Mesh, FatTree, Dragonfly]

_BY_NAME: dict[str, TopologySpec] = {
    "mesh": Mesh(),
    "fat-tree": FatTree(),
    "dragonfly": Dragonfly(),
}


def resolve_topology(topology: str | TopologySpec) -> TopologySpec:
    """Accept a spec instance or a name with default parameters."""
    if isinstance(topology, (Mesh, FatTree, Dragonfly)):
        return topology
    spec = _BY_NAME.get(topology)
    if spec is None:
        raise NetworkError(
            f"unknown topology {topology!r} (choose from "
            f"{sorted(_BY_NAME)} or pass a spec)")
    return spec


def schedule_switch_fault(cluster: "Cluster", switch: Switch,
                          plan: FaultPlan) -> None:
    """Apply a :class:`FaultPlan` with ``switch_down_at`` to one switch."""
    if plan.switch_down_at is None:
        raise NetworkError("FaultPlan has no switch_down_at")
    delay = max(0.0, plan.switch_down_at - cluster.sim.now)
    cluster.sim.schedule(delay, switch.fail)

"""On-wire frame representation.

A :class:`Frame` is what a NIC transmits: an opaque payload (the engines put
their own packet structures there), a wire size that includes whatever
headers the sending protocol added, and addressing.  The NIC layer never
inspects payloads — exactly like real hardware — which keeps the substrate
reusable by the NewMadeleine engine and by the baseline MPI models alike.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Frame", "FrameKind"]


class FrameKind:
    """Well-known frame kinds (free-form strings; these are conventions)."""

    DATA = "data"          # eager data, possibly an aggregate
    RDV_REQ = "rdv_req"    # rendezvous request (control)
    RDV_ACK = "rdv_ack"    # rendezvous acknowledgement (control)
    RDV_DATA = "rdv_data"  # rendezvous bulk data (zero-copy / RDMA path)
    REL_ACK = "rel_ack"    # standalone reliability-layer acknowledgement
    CREDIT = "credit"      # standalone flow-control credit grant
    NACK = "nack"          # receiver refused an eager segment (overflow)
    SESSION_HELLO = "session_hello"      # session handshake: open/announce
    SESSION_WELCOME = "session_welcome"  # session handshake: accept/confirm
    HEARTBEAT = "heartbeat"              # idle-path liveness probe/reply


_frame_ids = itertools.count()


@dataclass
class Frame:
    """One physical packet handed to a NIC for transmission.

    ``wire_size`` is the full on-wire byte count (payload + protocol
    headers) and is what serialization time is charged on.  ``payload_size``
    is the application-useful byte count, kept separately so tests can check
    byte conservation and header overhead independently.

    The three ``rel_*``/``corrupted`` fields belong to the optional
    reliability layer (``EngineParams.reliability="ack"``): ``rel_seq`` is
    the per-peer physical-frame sequence number, ``rel_ack`` a piggybacked
    ``(cumulative, selective...)`` acknowledgement for the reverse
    direction, and ``corrupted`` models a payload whose checksum will fail
    on arrival (set by a link's :class:`~repro.netsim.link.FaultPlan`).
    They stay ``None``/``False`` in the paper-faithful default mode.

    ``fc_grant`` belongs to the optional flow-control layer
    (``EngineParams.flow_control="credit"``): a piggybacked cumulative
    ``(released_bytes_total, released_wraps_total)`` credit grant for the
    reverse direction.  Cumulative totals make grants idempotent, so
    duplication or retransmission by the reliability layer is harmless.

    ``session`` belongs to the optional session layer
    (``EngineParams.sessions="epoch"``): a
    ``(sender_incarnation, receiver_incarnation)`` pair where the second
    element is the *sender's view* of the receiver's incarnation (``-1``
    when unknown, which is only legal on session handshake frames).  The
    receiver fences any frame whose view of it is stale — that is how no
    duplicate or ghost delivery crosses a crash/restart boundary.  Stays
    ``None`` in the paper-faithful default mode.
    """

    src_node: int
    dst_node: int
    kind: str
    wire_size: int
    payload: Any = None
    payload_size: int = 0
    rel_seq: int | None = None
    rel_ack: tuple[int, tuple[int, ...]] | None = None
    fc_grant: tuple[int, int] | None = None
    session: tuple[int, int] | None = None
    corrupted: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.wire_size < 0:
            raise ValueError(f"negative wire size {self.wire_size}")
        if self.payload_size < 0:
            raise ValueError(f"negative payload size {self.payload_size}")
        if self.payload_size > self.wire_size:
            raise ValueError(
                f"payload ({self.payload_size}B) larger than wire size "
                f"({self.wire_size}B); headers cannot be negative"
            )

    @property
    def header_size(self) -> int:
        """Bytes of protocol header carried by this frame."""
        return self.wire_size - self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame#{self.frame_id} {self.kind} {self.src_node}->{self.dst_node} "
            f"wire={self.wire_size}B payload={self.payload_size}B>"
        )

"""NIC device model.

The NIC is the heart of the substrate because the whole NewMadeleine design
revolves around NIC *activity*: "While the NICs are busy, NewMadeleine
keeps accumulating packets... As soon as a NIC becomes idle, the
optimization window is analyzed" (paper §3.1).  The model therefore exposes
exactly the two things the engine's transfer layer consumes:

* a **busy/idle state machine**: a NIC serializes transmissions; each frame
  occupies the card for ``send_overhead + cpu_gap + wire_size/bandwidth``
  microseconds, and
* an **idle notification hook** fired the instant the card runs out of
  queued work — this is the "processor asking the process scheduler for the
  next ready process" analogy of paper §3.3.

Frames are delivered to the peer NIC through a :class:`~repro.netsim.link.Link`
after the wire latency, where the receive handler runs after
``recv_overhead``.  Reception is full-duplex (does not block transmission),
like the real hardware.

The same device serves the baselines: they simply push frames into the tx
queue (the hardware pipelines them back-to-back with ``pipeline_gap_us``
between frames — the efficient pipelining paper §5.2 credits MPICH with),
while the NewMadeleine transfer layer holds packets back and refills the
card one optimized packet at a time via the idle hook.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import ClassVar

from repro.errors import NetworkError
from repro.netsim.frames import Frame
from repro.netsim.link import Link
from repro.netsim.profiles import NicProfile
from repro.netsim.units import wire_time_us
from repro.sim import Event, Simulator, Tracer

__all__ = ["Nic"]


class Nic:
    """One network interface card attached to a node."""

    #: NICs are terminal link endpoints: links addressed elsewhere raise.
    #: Switches (:mod:`repro.netsim.fabric`) override this to forward.
    is_forwarder: ClassVar[bool] = False

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        rail: int,
        profile: NicProfile,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.rail = rail
        self.profile = profile
        self.tracer = tracer if tracer is not None else Tracer()
        self.name = f"node{node_id}.nic{rail}.{profile.tech}"
        self._links: dict[int, Link] = {}
        # Structured fabrics attach one uplink into the switched fabric
        # instead of a link per peer; it is the routing fallback for any
        # destination without a direct point-to-point link.
        self._uplink: Link | None = None
        self._queue: deque[tuple[Frame, float, Event]] = deque()
        self._transmitting = False
        self._rx_handler: Callable[[Frame], None] | None = None
        self._idle_callbacks: list[Callable[[Nic], None]] = []
        # Crash/restart lifecycle: a generation counter invalidates the
        # tx/rx completion closures already in the event queue when the
        # card loses power, so a frame half-serialized at crash time never
        # reaches the wire and a frame half-received never reaches a
        # handler from the previous incarnation.
        self.up = True
        self._gen = 0
        # Receive coalescing: adjacent same-timestamp arrivals append to one
        # pending handler batch (one queue entry, one dispatch) when the
        # kernel's mark() proves nothing else was scheduled in between —
        # see _arrive for the exact guard.
        self._rx_batch: list[Frame] | None = None
        self._rx_mark = -1
        self._rx_due = -1.0
        self._rx_gen = -1
        # Statistics (exercised by tests and utilization benches).
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_lost = 0
        self.busy_time = 0.0
        self._tx_started_at = 0.0

    # -- wiring -------------------------------------------------------------
    def connect(self, dst_node: int, link: Link) -> None:
        """Attach the outgoing link towards ``dst_node``."""
        if dst_node in self._links:
            raise NetworkError(f"{self.name}: already connected to node {dst_node}")
        if dst_node == self.node_id:
            raise NetworkError(f"{self.name}: cannot connect a NIC to itself")
        self._links[dst_node] = link

    def set_uplink(self, link: Link) -> None:
        """Attach the fabric uplink (at most one; fabric builders call this)."""
        if self._uplink is not None:
            raise NetworkError(f"{self.name}: uplink already attached")
        self._uplink = link

    @property
    def uplink(self) -> Link | None:
        """The fabric uplink, if this NIC hangs off a switched topology."""
        return self._uplink

    def peers(self) -> list[int]:
        """Node ids reachable through a *direct* link on this NIC."""
        return sorted(self._links)

    def has_peer(self, dst_node: int) -> bool:
        """Can this NIC reach ``dst_node`` (direct link or fabric uplink)?"""
        if dst_node in self._links:
            return True
        return self._uplink is not None and dst_node != self.node_id

    def _route(self, dst_node: int) -> Link | None:
        """The egress link for ``dst_node``: direct if present, else uplink."""
        link = self._links.get(dst_node)
        return link if link is not None else self._uplink

    def set_receive_handler(self, fn: Callable[[Frame], None]) -> None:
        """Install the upper layer's frame-arrival handler."""
        self._rx_handler = fn

    def add_idle_callback(self, fn: Callable[[Nic], None]) -> None:
        """Register ``fn(nic)`` to run every time the card goes idle.

        This is the hook the NewMadeleine transfer layer uses to pull the
        next optimized packet "as soon as a card becomes idle" (paper §3.3).
        """
        self._idle_callbacks.append(fn)

    # -- state ----------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when the card is neither transmitting nor has queued frames."""
        return self.up and not self._transmitting and not self._queue

    @property
    def queued(self) -> int:
        """Frames waiting in the tx queue (not counting the one on the wire)."""
        return len(self._queue)

    # -- transmission -----------------------------------------------------------
    def post_send(self, frame: Frame, cpu_gap_us: float = 0.0) -> Event:
        """Queue ``frame`` for transmission; returns a tx-completion event.

        The returned event succeeds when the frame has fully left the card
        (serialization done), *not* when it arrives — matching how drivers
        report send completion.  ``cpu_gap_us`` charges extra host CPU time
        on the critical path for this frame (the engine uses it for its
        per-frame scheduler inspection cost, paper §5.1).
        """
        if frame.src_node != self.node_id:
            raise NetworkError(
                f"{self.name}: frame src node {frame.src_node} != {self.node_id}"
            )
        if self._route(frame.dst_node) is None:
            raise NetworkError(
                f"{self.name}: no link to node {frame.dst_node} "
                f"(connected: {self.peers()}, no uplink)"
            )
        if cpu_gap_us < 0:
            raise NetworkError(f"negative cpu gap {cpu_gap_us}")
        done = self.sim.event(name=f"txdone:{frame.frame_id}")
        if not self.up:
            # A send racing the crash is benign: the frame is lost and the
            # completion event never fires, exactly as if the power died
            # one microsecond later.
            self.frames_lost += 1
            return done
        self._queue.append((frame, cpu_gap_us, done))
        if not self._transmitting:
            self._start_next(first_of_burst=True)
        return done

    def _start_next(self, first_of_burst: bool) -> None:
        frame, cpu_gap, done = self._queue.popleft()
        self._transmitting = True
        self._tx_started_at = self.sim.now
        tx_time = (
            self.profile.send_overhead_us
            + cpu_gap
            + wire_time_us(frame.wire_size, self.profile.bandwidth_mbps)
        )
        if not first_of_burst:
            # Back-to-back streaming pays the inter-frame pipeline gap
            # instead of a full fresh injection.
            tx_time += self.profile.pipeline_gap_us - self.profile.send_overhead_us
            tx_time = max(tx_time, 0.0)
        self.tracer.emit(self.sim.now, self.name, "tx_start",
                         frame=frame.frame_id, fkind=frame.kind,
                         size=frame.wire_size, tx_time=round(tx_time, 4))
        gen = self._gen
        self.sim.schedule(tx_time, lambda: self._finish_tx(frame, done, gen))

    def _finish_tx(self, frame: Frame, done: Event, gen: int) -> None:
        if gen != self._gen:
            return  # card crashed mid-serialization; frame never hit the wire
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        self.busy_time += self.sim.now - self._tx_started_at
        link = self._route(frame.dst_node)
        if link is None:  # pragma: no cover - post_send already validated
            raise NetworkError(f"{self.name}: lost route to {frame.dst_node}")
        link.transmit(frame)
        self.tracer.emit(self.sim.now, self.name, "tx_done", frame=frame.frame_id)
        done.succeed(frame)
        if self._queue:
            self._start_next(first_of_burst=False)
        else:
            self._transmitting = False
            self._notify_idle()

    def _notify_idle(self) -> None:
        self.tracer.emit(self.sim.now, self.name, "idle")
        if self._idle_callbacks:
            # Deliver via the queue so refill decisions are deterministic
            # and may themselves post sends re-entrantly — but as ONE queued
            # dispatch for the whole list instead of one closure per
            # callback.  _run_idle_callbacks re-checks ``idle`` before each
            # callback, exactly like the old per-closure guard did: if an
            # earlier callback posts a send, the rest become no-ops for this
            # idle edge and fire again at the next one.
            self.sim.schedule(0.0, self._run_idle_callbacks)

    def _run_idle_callbacks(self) -> None:
        for fn in self._idle_callbacks:
            if self.idle:
                fn(self)

    # -- crash / restart --------------------------------------------------------
    def crash(self) -> None:
        """Lose power: drop queued and in-flight frames, detach the host.

        Frames already accepted by ``post_send`` (queued or on the card)
        are lost — their completion events never fire, which is exactly
        the ambiguity real senders face.  The receive handler and idle
        callbacks are detached so a restarted node's *new* engine can
        install its own without the old engine's closures lingering.
        """
        self.frames_lost += len(self._queue) + (1 if self._transmitting else 0)
        self._queue.clear()
        self._transmitting = False
        self._rx_handler = None
        self._idle_callbacks.clear()
        self._rx_batch = None
        self.up = False
        self._gen += 1
        self.tracer.emit(self.sim.now, self.name, "crash")

    def restart(self) -> None:
        """Power the card back up (handlers must be re-installed)."""
        self.up = True
        self._gen += 1
        self.tracer.emit(self.sim.now, self.name, "restart")

    # -- reception -------------------------------------------------------------
    def _arrive(self, frame: Frame) -> None:
        if not self.up:
            # Arrivals at a dead card vanish silently (counted, so the
            # cluster fault summary can still account for every byte).
            self.frames_lost += 1
            return
        self.tracer.emit(self.sim.now, self.name, "rx_start",
                         frame=frame.frame_id, fkind=frame.kind,
                         size=frame.wire_size)
        sim = self.sim
        gen = self._gen
        due = sim.now + self.profile.recv_overhead_us
        batch = self._rx_batch
        if (
            batch is not None
            and sim.mark() == self._rx_mark
            and due == self._rx_due
            and gen == self._rx_gen
        ):
            # Same handler timestamp, same card incarnation, and the kernel
            # mark proves NOTHING was scheduled since the pending batch was
            # pushed — so this frame's hypothetical own queue entry would
            # sit immediately behind the batch with no entry in between.
            # Appending is therefore order-identical to a separate dispatch
            # and saves one push + one dispatch (a burst of same-timestamp
            # completions costs one dispatch total).
            batch.append(frame)
            return
        batch = [frame]
        self._rx_batch = batch
        self._rx_gen = gen
        self._rx_due = due
        sim.schedule(
            self.profile.recv_overhead_us, lambda: self._handle_batch(batch, gen)
        )
        self._rx_mark = sim.mark()

    def _handle_batch(self, frames: list[Frame], gen: int) -> None:
        if gen != self._gen:
            # Card crashed between arrival and handler dispatch: the whole
            # batch belongs to the dead incarnation.
            if self._rx_batch is frames:
                self._rx_batch = None
            return
        if self._rx_batch is frames:
            self._rx_batch = None  # no appends once dispatch has begun
        for frame in frames:
            if gen != self._gen:
                return  # card crashed mid-batch (a handler can kill the card)
            self.frames_received += 1
            self.bytes_received += frame.wire_size
            self.tracer.emit(self.sim.now, self.name, "rx_done",
                             frame=frame.frame_id)
            if self._rx_handler is None:
                raise NetworkError(
                    f"{self.name}: frame {frame!r} arrived but no receive "
                    "handler is installed"
                )
            self._rx_handler(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.idle else f"busy(q={len(self._queue)})"
        return f"<Nic {self.name} {state}>"

"""Point-to-point wire between two NICs.

A :class:`Link` is unidirectional (topology creates one per direction); it
adds propagation latency and delivers frames to the destination NIC in
transmission order.  Ordering is guaranteed because the sending NIC
serializes transmissions and the link never lets a frame overtake an
earlier one (delivery times are clamped monotonic, which matters when a
``slow_link`` fault ends mid-flight), and the kernel resolves equal
timestamps in scheduling order.

The link also keeps conservation counters (frames/bytes entered vs
delivered) that the property tests use to prove no packet is ever lost or
duplicated by the scheduling engine above.

Faults are modelled by a composable :class:`FaultPlan` (drop the nth
frame, drop a fixed id set, drop bursts, corrupt payloads, slow the link
down over a time window, take the link permanently down at a given time,
deliver an arrival twice, hold an arrival back past its successors,
seeded latency jitter, and timed partition windows).  A bare callable
``frame -> bool`` is still accepted wherever a plan is (the historical
``fault_injector`` hook), returning ``True`` to drop.  The engine — like the real
NewMadeleine, which targets reliable system-area networks (MX, Elan, SCI)
— performs **no retransmission** by default; fault injection exists so
tests can prove that a loss surfaces as a visible failure (stuck requests,
failed conservation check, parked sequence gaps) rather than silent
corruption.  The opt-in reliability layer
(:mod:`repro.core.reliability`) builds recovery on top of these same
fault hooks.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from random import Random

from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.netsim.frames import Frame
from repro.sim import Simulator, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.fabric import Switch
    from repro.netsim.nic import Nic

__all__ = ["FaultPlan", "Link"]

#: Outcomes a fault decision may produce.
DELIVER, DROP, CORRUPT = "deliver", "drop", "corrupt"
#: Partition drops are ordinary drops wearing a name tag: the link counts
#: them separately so ``fault_summary()`` can tell a lossy wire from a
#: severed one.
DROP_PARTITION = "drop_partition"
DUPLICATE = "duplicate"


class FaultPlan:
    """Deterministic, composable fault model for one link.

    A plan combines any of:

    * ``drop_nth`` — 1-based arrival indices to drop;
    * ``drop_frame_ids`` — a fixed set of :attr:`Frame.frame_id` to drop;
    * ``bursts`` — ``(first_n, length)`` pairs dropping ``length``
      consecutive arrivals starting at arrival ``first_n``;
    * ``corrupt_nth`` — arrival indices delivered with a failing checksum
      (the receiver discards them like a loss, but the bytes did travel);
    * ``drop_kind_nth`` — ``(kind, n)`` pairs dropping the nth frame *of
      that kind* (e.g. ``("rel_ack", 1)`` to lose the first ack);
    * ``slow_link`` — ``(factor, from_us, until_us)`` multiplying the
      link's propagation latency by ``factor`` for frames entering the
      wire in ``[from_us, until_us)`` (``until_us=None`` = forever): a
      degraded-but-alive link, the overload scenario flow control is
      built for;
    * ``down_at_us`` — a time after which every frame is dropped (permanent
      link failure);
    * ``dup_nth`` — 1-based arrival indices delivered *twice* (the wire
      echoes the frame; both copies arrive back to back);
    * ``reorder`` — ``(nth, delay_us)`` pairs holding the nth arrival back
      ``delay_us`` past its normal delivery time while letting later
      frames overtake it (the one fault that deliberately bypasses the
      link's FIFO floor);
    * ``jitter`` — ``(max_us, seed)`` adding seeded uniform latency noise
      in ``[0, max_us)`` per delivered frame.  Jitter respects the FIFO
      floor, so it spreads deliveries without reordering them;
    * ``partitions`` — ``(from_us, until_us)`` windows during which every
      frame is dropped (``until_us=None`` = forever), counted separately
      from plain drops.  :meth:`~repro.netsim.topology.Cluster.partition`
      installs these across group boundaries;
    * ``node_crash_at`` / ``node_restart_at`` — virtual times at which a
      whole *node* fail-stops and (optionally) comes back as a new
      incarnation.  These are node-level faults, not link-level ones:
      ``decide`` ignores them; apply the plan through
      :meth:`~repro.netsim.topology.Cluster.schedule_node_fault`;
    * ``switch_down_at`` — a virtual time at which a whole *switch*
      fail-stops, taking every path through it with it.  Like the node
      faults this is not a link-level decision: ``decide`` ignores it;
      apply the plan through
      :meth:`~repro.netsim.topology.Cluster.schedule_switch_fault`.

    Plans keep per-instance arrival counters (and a per-instance jitter
    RNG), so do not share one instance across links.  Drop decisions win
    over duplication, which wins over corruption, when several match.
    """

    def __init__(
        self,
        drop_nth: Sequence[int] = (),
        drop_frame_ids: Sequence[int] = (),
        bursts: Sequence[tuple[int, int]] = (),
        corrupt_nth: Sequence[int] = (),
        drop_kind_nth: Sequence[tuple[str, int]] = (),
        slow_link: tuple[float, float, float | None] | None = None,
        down_at_us: float | None = None,
        dup_nth: Sequence[int] = (),
        reorder: Sequence[tuple[int, float]] = (),
        jitter: tuple[float, int] | None = None,
        partitions: Sequence[tuple[float, float | None]] = (),
        node_crash_at: float | None = None,
        node_restart_at: float | None = None,
        switch_down_at: float | None = None,
    ) -> None:
        for n in tuple(drop_nth) + tuple(corrupt_nth) + tuple(dup_nth):
            if n < 1:
                raise NetworkError(f"fault indices are 1-based, got {n}")
        for first, length in bursts:
            if first < 1 or length < 1:
                raise NetworkError(f"bad burst ({first}, {length})")
        for kind, n in drop_kind_nth:
            if n < 1:
                raise NetworkError(f"bad drop_kind_nth ({kind!r}, {n})")
        if slow_link is not None:
            factor, from_us, until_us = slow_link
            if factor < 1:
                raise NetworkError(
                    f"slow_link factor must be >= 1, got {factor}")
            if from_us < 0:
                raise NetworkError(f"negative slow_link from_us {from_us}")
            if until_us is not None and until_us <= from_us:
                raise NetworkError(
                    f"empty slow_link window [{from_us}, {until_us})")
        if down_at_us is not None and down_at_us < 0:
            raise NetworkError(f"negative down_at_us {down_at_us}")
        reorder_map: dict[int, float] = {}
        for n, delay_us in reorder:
            if n < 1:
                raise NetworkError(f"fault indices are 1-based, got {n}")
            if delay_us <= 0:
                raise NetworkError(
                    f"reorder delay must be positive, got {delay_us}")
            if n in reorder_map:
                raise NetworkError(f"duplicate reorder index {n}")
            reorder_map[n] = delay_us
        if jitter is not None:
            max_us, _seed = jitter
            if max_us <= 0:
                raise NetworkError(
                    f"jitter max_us must be positive, got {max_us}")
        for from_us, until_us in partitions:
            if from_us < 0:
                raise NetworkError(f"negative partition from_us {from_us}")
            if until_us is not None and until_us <= from_us:
                raise NetworkError(
                    f"empty partition window [{from_us}, {until_us})")
        if node_crash_at is not None and node_crash_at < 0:
            raise NetworkError(f"negative node_crash_at {node_crash_at}")
        if node_restart_at is not None:
            if node_crash_at is None:
                raise NetworkError(
                    "node_restart_at without node_crash_at (nothing to "
                    "restart from)")
            if node_restart_at <= node_crash_at:
                raise NetworkError(
                    f"node_restart_at ({node_restart_at}) must be after "
                    f"node_crash_at ({node_crash_at})")
        if switch_down_at is not None and switch_down_at < 0:
            raise NetworkError(f"negative switch_down_at {switch_down_at}")
        self.drop_nth = frozenset(drop_nth)
        self.drop_frame_ids = frozenset(drop_frame_ids)
        self.bursts = tuple(bursts)
        self.corrupt_nth = frozenset(corrupt_nth)
        self.drop_kind_nth = frozenset(drop_kind_nth)
        self.slow_link = slow_link
        self.down_at_us = down_at_us
        self.dup_nth = frozenset(dup_nth)
        self.reorder = reorder_map
        self.jitter = jitter
        self._jitter_rng: Random | None = (
            Random(jitter[1]) if jitter is not None else None)
        self.partitions: list[tuple[float, float | None]] = list(partitions)
        self.node_crash_at = node_crash_at
        self.node_restart_at = node_restart_at
        self.switch_down_at = switch_down_at
        self._n = 0
        self._kind_counts: dict[str, int] = {}

    def add_partition(self, from_us: float, until_us: float | None) -> None:
        """Append a partition window (``Cluster.partition`` composes here)."""
        if from_us < 0:
            raise NetworkError(f"negative partition from_us {from_us}")
        if until_us is not None and until_us <= from_us:
            raise NetworkError(
                f"empty partition window [{from_us}, {until_us})")
        self.partitions.append((from_us, until_us))

    def decide(self, frame: Frame, now: float) -> str:
        """Classify the next arrival: deliver, drop, duplicate, or corrupt."""
        self._n += 1
        n = self._n
        kind_n = self._kind_counts.get(frame.kind, 0) + 1
        self._kind_counts[frame.kind] = kind_n
        if self.down_at_us is not None and now >= self.down_at_us:
            return DROP
        if any(from_us <= now and (until_us is None or now < until_us)
               for from_us, until_us in self.partitions):
            return DROP_PARTITION
        if n in self.drop_nth or frame.frame_id in self.drop_frame_ids:
            return DROP
        if any(first <= n < first + length for first, length in self.bursts):
            return DROP
        if (frame.kind, kind_n) in self.drop_kind_nth:
            return DROP
        if n in self.dup_nth:
            return DUPLICATE
        if n in self.corrupt_nth:
            return CORRUPT
        return DELIVER

    def extra_latency(self, now: float) -> tuple[float, bool]:
        """``(extra_us, overtake_ok)`` for the arrival ``decide`` just saw.

        ``extra_us`` combines jitter noise and any ``reorder`` hold-back;
        ``overtake_ok`` is True only for a reordered frame, telling the
        link to leave its FIFO floor alone so successors can pass it.
        """
        extra = 0.0
        overtake = False
        if self._jitter_rng is not None and self.jitter is not None:
            extra += self._jitter_rng.uniform(0.0, self.jitter[0])
        delay_us = self.reorder.get(self._n)
        if delay_us is not None:
            extra += delay_us
            overtake = True
        return extra, overtake

    def latency_factor(self, now: float) -> float:
        """Latency multiplier for a frame entering the wire at ``now``."""
        if self.slow_link is None:
            return 1.0
        factor, from_us, until_us = self.slow_link
        if now < from_us or (until_us is not None and now >= until_us):
            return 1.0
        return factor

    def __call__(self, frame: Frame) -> bool:
        """Callable-shim view: ``True`` when the frame should be dropped.

        Lets a plan be used anywhere a bare injector callable is expected;
        corruption and duplication degrade to delivery through this
        narrower interface.
        """
        return self.decide(frame, now=0.0) in (DROP, DROP_PARTITION)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.drop_nth:
            parts.append(f"drop_nth={sorted(self.drop_nth)}")
        if self.drop_frame_ids:
            parts.append(f"drop_ids={sorted(self.drop_frame_ids)}")
        if self.bursts:
            parts.append(f"bursts={list(self.bursts)}")
        if self.corrupt_nth:
            parts.append(f"corrupt_nth={sorted(self.corrupt_nth)}")
        if self.drop_kind_nth:
            parts.append(f"drop_kind_nth={sorted(self.drop_kind_nth)}")
        if self.slow_link is not None:
            parts.append(f"slow_link={self.slow_link}")
        if self.down_at_us is not None:
            parts.append(f"down_at={self.down_at_us}us")
        if self.dup_nth:
            parts.append(f"dup_nth={sorted(self.dup_nth)}")
        if self.reorder:
            parts.append(f"reorder={sorted(self.reorder.items())}")
        if self.jitter is not None:
            parts.append(f"jitter={self.jitter}")
        if self.partitions:
            parts.append(f"partitions={self.partitions}")
        if self.node_crash_at is not None:
            parts.append(f"node_crash_at={self.node_crash_at}us")
        if self.node_restart_at is not None:
            parts.append(f"node_restart_at={self.node_restart_at}us")
        if self.switch_down_at is not None:
            parts.append(f"switch_down_at={self.switch_down_at}us")
        return f"<FaultPlan {' '.join(parts) or 'clean'}>"


class Link:
    """One directed wire between two endpoints with fixed latency.

    Endpoints are NICs in the flat mesh; structured fabrics
    (:mod:`repro.netsim.fabric`) also terminate links on switches, which
    forward rather than consume — the endpoint duck type is ``name``,
    ``node_id``, ``is_forwarder`` and ``_arrive``.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Nic | Switch,
        dst: Nic | Switch,
        latency_us: float,
        tracer: Tracer | None = None,
        fault_injector: FaultPlan | Callable[[Frame], bool] | None = None,
    ) -> None:
        if latency_us < 0:
            raise NetworkError(f"negative link latency {latency_us}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_us = latency_us
        self.tracer = tracer if tracer is not None else Tracer()
        #: A :class:`FaultPlan` or a bare ``frame -> bool`` drop callable.
        self.fault_plan: FaultPlan | Callable[[Frame], bool] | None = fault_injector
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_slowed = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        self.frames_jittered = 0
        self.frames_partition_dropped = 0
        #: Drops of frames already carrying the ``corrupted`` flag from an
        #: earlier hop — the chaos auditor's corrupt-conservation bound
        #: needs them: such a frame is neither discarded by an engine nor
        #: visible in any switch counter.
        self.frames_corrupt_dropped = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_dropped = 0
        self.bytes_duplicated = 0
        self.down_since: float | None = None
        # FIFO floor: no frame may be delivered before an earlier one (a
        # slow_link window ending mid-flight would otherwise let later
        # frames overtake).  At constant latency the clamp never binds.
        self._last_deliver_at = 0.0
        self.name = f"link.{src.name}->{dst.name}"

    # ``fault_injector`` predates FaultPlan; keep it as an alias so existing
    # code and tests that assign a callable keep working unchanged.
    @property
    def fault_injector(self) -> FaultPlan | Callable[[Frame], bool] | None:
        return self.fault_plan

    @fault_injector.setter
    def fault_injector(
        self, fn: FaultPlan | Callable[[Frame], bool] | None
    ) -> None:
        self.fault_plan = fn

    def _fault_action(self, frame: Frame) -> str:
        if self.fault_plan is None:
            return DELIVER
        if isinstance(self.fault_plan, FaultPlan):
            return self.fault_plan.decide(frame, now=self.sim.now)
        return DROP if self.fault_plan(frame) else DELIVER

    def transmit(self, frame: Frame) -> None:
        """Accept a fully-serialized frame and deliver it after the latency."""
        if not self.dst.is_forwarder and frame.dst_node != self.dst.node_id:
            # A forwarder endpoint (switch) routes on the final host
            # address; only terminal NIC endpoints enforce it.
            raise NetworkError(
                f"{self.name}: frame addressed to node {frame.dst_node}, "
                f"link ends at node {self.dst.node_id}"
            )
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        action = self._fault_action(frame)
        if action in (DROP, DROP_PARTITION):
            self.frames_dropped += 1
            self.bytes_dropped += frame.wire_size
            if action == DROP_PARTITION:
                self.frames_partition_dropped += 1
            if frame.corrupted:
                self.frames_corrupt_dropped += 1
            if (isinstance(self.fault_plan, FaultPlan)
                    and self.fault_plan.down_at_us is not None
                    and self.sim.now >= self.fault_plan.down_at_us):
                if self.down_since is None:
                    self.down_since = self.sim.now
                    self.tracer.emit(self.sim.now, self.name, "link_down")
            self.tracer.emit(self.sim.now, self.name, "wire_drop",
                             frame=frame.frame_id, size=frame.wire_size,
                             partition=action == DROP_PARTITION)
            return
        if action == CORRUPT:
            # The bytes travel (conservation holds) but the payload checksum
            # will fail on arrival.  Deliver a flagged copy so a sender-held
            # retransmit buffer never sees the corruption.
            self.frames_corrupted += 1
            frame = dataclasses.replace(frame, corrupted=True)
            self.tracer.emit(self.sim.now, self.name, "wire_corrupt",
                             frame=frame.frame_id, size=frame.wire_size)
        latency = self.latency_us
        extra_us = 0.0
        overtake = False
        if isinstance(self.fault_plan, FaultPlan):
            factor = self.fault_plan.latency_factor(self.sim.now)
            if factor > 1.0:
                latency *= factor
                self.frames_slowed += 1
                self.tracer.emit(self.sim.now, self.name, "wire_slow",
                                 frame=frame.frame_id, factor=factor)
            extra_us, overtake = self.fault_plan.extra_latency(self.sim.now)
        deliver_at = self.sim.now + latency + extra_us
        if overtake:
            # A reordered frame is held back without raising the FIFO floor:
            # successors keep their normal delivery times and overtake it.
            self.frames_reordered += 1
            floor = max(self._last_deliver_at, self.sim.now + latency)
            self._last_deliver_at = floor
            self.tracer.emit(self.sim.now, self.name, "wire_reorder",
                             frame=frame.frame_id, delay_us=extra_us)
        else:
            if extra_us > 0.0:
                self.frames_jittered += 1
            if deliver_at < self._last_deliver_at:
                deliver_at = self._last_deliver_at
            self._last_deliver_at = deliver_at
        self.tracer.emit(self.sim.now, self.name, "wire_enter",
                         frame=frame.frame_id, size=frame.wire_size)
        if action == DUPLICATE:
            # The wire echoes the frame: a second, independent delivery of
            # the same bytes right behind the first (FIFO tie-break keeps
            # the original in front).  Both copies ride one queue entry —
            # schedule_batch is exactly equivalent to two back-to-back
            # schedule() calls but costs a single push and dispatch.
            self.frames_duplicated += 1
            self.bytes_duplicated += frame.wire_size
            self.tracer.emit(self.sim.now, self.name, "wire_dup",
                             frame=frame.frame_id, size=frame.wire_size)
            deliver: Callable[[], None] = lambda: self._deliver(frame)
            self.sim.schedule_batch(deliver_at - self.sim.now,
                                    [deliver, deliver])
        else:
            self.sim.schedule(deliver_at - self.sim.now,
                              lambda: self._deliver(frame))

    def _deliver(self, frame: Frame) -> None:
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_size
        self.tracer.emit(self.sim.now, self.name, "wire_exit",
                         frame=frame.frame_id, size=frame.wire_size)
        self.dst._arrive(frame)

    @property
    def down(self) -> bool:
        """True once a ``down_at_us`` fault has taken the link down."""
        return self.down_since is not None

    @property
    def in_flight(self) -> int:
        """Frames currently between the two NICs."""
        return self.frames_sent - self.frames_delivered

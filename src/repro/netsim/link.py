"""Point-to-point wire between two NICs.

A :class:`Link` is unidirectional (topology creates one per direction); it
adds propagation latency and delivers frames to the destination NIC in
transmission order.  Ordering is guaranteed because the sending NIC
serializes transmissions and the latency is constant, and the kernel
resolves equal timestamps in scheduling order.

The link also keeps conservation counters (frames/bytes entered vs
delivered) that the property tests use to prove no packet is ever lost or
duplicated by the scheduling engine above.

A ``fault_injector`` hook can drop frames.  The engine — like the real
NewMadeleine, which targets reliable system-area networks (MX, Elan, SCI)
— performs **no retransmission**; fault injection exists so tests can prove
that a loss surfaces as a visible failure (stuck requests, failed
conservation check, parked sequence gaps) rather than silent corruption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.netsim.frames import Frame
from repro.sim import Simulator, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.nic import Nic

__all__ = ["Link"]


class Link:
    """One directed wire: ``src`` NIC to ``dst`` NIC with fixed latency."""

    def __init__(
        self,
        sim: Simulator,
        src: "Nic",
        dst: "Nic",
        latency_us: float,
        tracer: Tracer | None = None,
        fault_injector=None,
    ) -> None:
        if latency_us < 0:
            raise NetworkError(f"negative link latency {latency_us}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_us = latency_us
        self.tracer = tracer if tracer is not None else Tracer()
        self.fault_injector = fault_injector
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.name = f"link.{src.name}->{dst.name}"

    def transmit(self, frame: Frame) -> None:
        """Accept a fully-serialized frame and deliver it after the latency."""
        if frame.dst_node != self.dst.node_id:
            raise NetworkError(
                f"{self.name}: frame addressed to node {frame.dst_node}, "
                f"link ends at node {self.dst.node_id}"
            )
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        if self.fault_injector is not None and self.fault_injector(frame):
            self.frames_dropped += 1
            self.tracer.emit(self.sim.now, self.name, "wire_drop",
                             frame=frame.frame_id, size=frame.wire_size)
            return
        self.tracer.emit(self.sim.now, self.name, "wire_enter",
                         frame=frame.frame_id, size=frame.wire_size)
        self.sim.schedule(self.latency_us, lambda: self._deliver(frame))

    def _deliver(self, frame: Frame) -> None:
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_size
        self.tracer.emit(self.sim.now, self.name, "wire_exit",
                         frame=frame.frame_id, size=frame.wire_size)
        self.dst._arrive(frame)

    @property
    def in_flight(self) -> int:
        """Frames currently between the two NICs."""
        return self.frames_sent - self.frames_delivered

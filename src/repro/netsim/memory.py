"""Host memory cost model.

Paper §5.3 explains the derived-datatype result entirely in terms of memory
copies: MPICH "copies all the data fragments into a new contiguous buffer",
receives "in a temporary memory area before being dispatched", and "the cost
of a memory copy operation being proportional to the size of the data, this
behaviour is no longer optimized when dealing with bigger blocks".

This module provides that proportional cost.  It is calibrated to the
evaluation platform (dual-core 1.8 GHz Opteron, DDR-era memory): a sustained
copy bandwidth on the order of 1.2 GB/s plus a small per-call overhead for
the function call and cache warmup.  The exact constants live in the
hardware profiles; this class just turns (bytes, calls) into microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Charges simulated time for host memory copies.

    Parameters
    ----------
    copy_bandwidth_mbps:
        Sustained large-copy bandwidth in decimal MB/s (bytes/us).
    per_call_overhead_us:
        Fixed cost of each ``memcpy`` invocation (call + setup).  This is
        what makes packing *many tiny* fragments expensive even when the
        byte count is small — the effect that favours MPICH's pack for small
        datatypes (paper §5.3: "certainly optimized when dealing with a
        small overall data size").
    """

    copy_bandwidth_mbps: float = 1200.0
    per_call_overhead_us: float = 0.08

    def __post_init__(self) -> None:
        if self.copy_bandwidth_mbps <= 0:
            raise ValueError("copy bandwidth must be positive")
        if self.per_call_overhead_us < 0:
            raise ValueError("per-call overhead must be non-negative")

    def copy_time(self, nbytes: int, calls: int = 1) -> float:
        """Microseconds to copy ``nbytes`` using ``calls`` memcpy calls."""
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        if calls < 0:
            raise ValueError(f"negative call count {calls}")
        if nbytes == 0 and calls == 0:
            return 0.0
        return nbytes / self.copy_bandwidth_mbps + calls * self.per_call_overhead_us

    def pack_time(self, block_sizes: Iterable[int]) -> float:
        """Cost of gathering scattered blocks into one contiguous buffer.

        One memcpy call per block — exactly the MPICH datatype pack loop
        modelled by paper reference [5].
        """
        total = 0
        calls = 0
        for size in block_sizes:
            if size < 0:
                raise ValueError(f"negative block size {size}")
            total += size
            calls += 1
        return self.copy_time(total, calls=calls)

    # Unpacking has the same shape as packing (one copy per block).
    unpack_time = pack_time

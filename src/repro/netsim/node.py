"""Host node: CPU-side context owning one NIC per rail.

A node is deliberately thin — it groups the NICs of one machine with the
host memory model so upper layers (engines, MPI models) can charge memcpy
time and reach every rail from one handle.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import NetworkError
from repro.netsim.memory import MemoryModel
from repro.netsim.nic import Nic
from repro.sim import Simulator, Tracer

__all__ = ["Node"]


class Node:
    """One simulated host."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        memory: MemoryModel,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.memory = memory
        self.tracer = tracer if tracer is not None else Tracer()
        self.nics: list[Nic] = []
        self.name = f"node{node_id}"
        # Crash/restart lifecycle.  ``incarnation`` counts restarts: the
        # session layer stamps it on every frame so peers can fence traffic
        # from a previous life of this node.
        self.up = True
        self.incarnation = 0
        self._crash_hooks: list[Callable[[], None]] = []
        # Host memory copies serialize on the CPU: concurrent protocol-level
        # copy requests queue behind each other (see serialize_copy).
        self._copy_free_at = 0.0

    def serialize_copy(self, cost_us: float) -> float:
        """Reserve ``cost_us`` of serialized host-copy time.

        Returns the delay from *now* until this copy completes.  Concurrent
        copies (several eager segments landing from one aggregate, a
        datatype unpack racing an eager copy) queue on the single memory
        engine instead of magically overlapping — without this, many tiny
        copies would be charged in parallel and undercut one large copy of
        the same byte count.
        """
        if cost_us < 0:
            raise ValueError(f"negative copy cost {cost_us}")
        start = max(self.sim.now, self._copy_free_at)
        self._copy_free_at = start + cost_us
        return self._copy_free_at - self.sim.now

    def add_nic(self, nic: Nic) -> None:
        """Attach a NIC (rails must be added in order, starting at 0)."""
        if nic.node_id != self.node_id:
            raise NetworkError(
                f"{self.name}: NIC {nic.name} belongs to node {nic.node_id}"
            )
        if nic.rail != len(self.nics):
            raise NetworkError(
                f"{self.name}: expected rail {len(self.nics)}, got {nic.rail}"
            )
        self.nics.append(nic)

    # -- crash / restart --------------------------------------------------------
    def add_crash_hook(self, fn: Callable[[], None]) -> None:
        """Register ``fn()`` to run (once) when this node crashes.

        The engine registers its :meth:`~repro.core.engine.NmadEngine.halt`
        here so a crash silences the dead process's timers and watchdog.
        Hooks are consumed by :meth:`crash` — a restarted node's new engine
        must register its own.
        """
        self._crash_hooks.append(fn)

    def crash(self) -> None:
        """Fail-stop this host: run crash hooks, then power down every NIC."""
        if not self.up:
            raise NetworkError(f"{self.name}: crash() on a node already down")
        self.up = False
        hooks, self._crash_hooks = self._crash_hooks, []
        for fn in hooks:
            fn()
        for nic in self.nics:
            nic.crash()
        self._copy_free_at = 0.0
        self.tracer.emit(self.sim.now, self.name, "crash")

    def restart(self) -> None:
        """Bring the host back up as a fresh incarnation.

        NIC handlers were detached at crash time; whoever restarts the node
        (typically by constructing a new engine on it) re-installs them.
        """
        if self.up:
            raise NetworkError(f"{self.name}: restart() on a node already up")
        self.up = True
        self.incarnation += 1
        for nic in self.nics:
            nic.restart()
        self.tracer.emit(self.sim.now, self.name, "restart",
                         incarnation=self.incarnation)

    def nic(self, rail: int = 0) -> Nic:
        """The NIC on ``rail`` (rail 0 is the default network)."""
        try:
            return self.nics[rail]
        except IndexError:
            raise NetworkError(
                f"{self.name}: no NIC on rail {rail} (has {len(self.nics)})"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} nics={[n.profile.name for n in self.nics]}>"

"""Network + host hardware substrate (simulated NICs, links, nodes)."""

from repro.netsim.fabric import (
    Dragonfly,
    FatTree,
    Mesh,
    Switch,
    TopologySpec,
    flow_hash,
)
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.link import FaultPlan, Link
from repro.netsim.memory import MemoryModel
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.netsim.profiles import (
    GM_MYRINET,
    HOST_2006_OPTERON,
    MX_MYRI10G,
    PROFILES,
    QUADRICS_QM500,
    SISCI_SCI,
    TCP_GIGE,
    HostProfile,
    NicProfile,
    profile_by_name,
)
from repro.netsim.topology import Cluster
from repro.netsim.units import (
    GB,
    KB,
    MB,
    format_size,
    log2_size_sweep,
    parse_size,
    wire_time_us,
)

__all__ = [
    "Cluster",
    "Dragonfly",
    "FatTree",
    "FaultPlan",
    "Frame",
    "FrameKind",
    "GB",
    "GM_MYRINET",
    "HOST_2006_OPTERON",
    "HostProfile",
    "KB",
    "Link",
    "MB",
    "MemoryModel",
    "Mesh",
    "MX_MYRI10G",
    "Nic",
    "NicProfile",
    "Node",
    "PROFILES",
    "QUADRICS_QM500",
    "SISCI_SCI",
    "Switch",
    "TCP_GIGE",
    "TopologySpec",
    "flow_hash",
    "format_size",
    "log2_size_sweep",
    "parse_size",
    "profile_by_name",
    "wire_time_us",
]

"""Hardware profiles: the 2006 evaluation platform, parameterized.

The paper's testbed: two dual-core 1.8 GHz Opteron boxes (1 MB L2, 1 GB
RAM, Linux 2.6.17) interconnected by MYRI-10G NICs (MX 1.2.0 driver) and
QUADRICS QM500 NICs (Elan driver).  The prototype also ran over GM/Myrinet,
SISCI/SCI and TCP/Ethernet (paper §4), so profiles for those are provided
too (used by tests and the multirail example).

Calibration targets (paper §5): MPICH-class short-message half-round-trip
≈ 3 µs over MX and ≈ 2.2 µs over Quadrics; peak measured bandwidths
≈ 1200 MB/s (MX) and ≈ 910 MB/s (Quadrics); MAD-MPI lands < 0.5 µs above
the baselines at 4 B and at 1155 / 835 MB/s at 2 MB.  Absolute values are
era-plausible; the benches assert the *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.netsim.memory import MemoryModel
from repro.netsim.units import KB

__all__ = [
    "NicProfile",
    "HostProfile",
    "MX_MYRI10G",
    "QUADRICS_QM500",
    "GM_MYRINET",
    "SISCI_SCI",
    "TCP_GIGE",
    "HOST_2006_OPTERON",
    "PROFILES",
    "profile_by_name",
]


@dataclass(frozen=True)
class NicProfile:
    """Nominal and functional characteristics of one NIC technology.

    These are exactly the facts the paper says the transfer layer collects
    about each driver (§4): "the threshold for the rendez-vous protocol or
    the availability of the gather/scatter or as well the remote direct
    access (RDMA) functionality" — plus the timing constants the simulator
    needs.
    """

    name: str                    # profile identifier, e.g. "mx_myri10g"
    tech: str                    # technology family, e.g. "mx"
    latency_us: float            # one-way wire/switch propagation latency
    bandwidth_mbps: float        # raw serialization bandwidth (decimal MB/s)
    send_overhead_us: float      # host CPU cost to inject one frame
    recv_overhead_us: float      # host CPU cost to land one frame
    mtu_bytes: int               # max physical frame size for eager traffic
    rdv_threshold: int           # driver switches to rendezvous above this
    gather_scatter: bool         # NIC can gather segments without host copy
    rdma: bool                   # remote direct memory access available
    pipeline_gap_us: float       # inter-frame gap when streaming back-to-back

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.bandwidth_mbps <= 0:
            raise ValueError(f"bad latency/bandwidth in profile {self.name!r}")
        if self.mtu_bytes <= 0 or self.rdv_threshold <= 0:
            raise ValueError(f"bad mtu/threshold in profile {self.name!r}")
        if min(self.send_overhead_us, self.recv_overhead_us, self.pipeline_gap_us) < 0:
            raise ValueError(f"negative overhead in profile {self.name!r}")

    def with_overrides(self, **kwargs: Any) -> NicProfile:
        """A copy of this profile with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class HostProfile:
    """Host-side characteristics (memory system)."""

    name: str
    memory: MemoryModel


#: Myri-10G with the MX 1.2.0 driver — the paper's primary network.
MX_MYRI10G = NicProfile(
    name="mx_myri10g",
    tech="mx",
    latency_us=1.40,
    bandwidth_mbps=1250.0,
    send_overhead_us=0.45,
    recv_overhead_us=0.45,
    mtu_bytes=4 * KB,
    rdv_threshold=32 * KB,
    gather_scatter=True,
    rdma=True,
    pipeline_gap_us=0.30,
)

#: Quadrics QM500 with the Elan driver — the paper's second network.
QUADRICS_QM500 = NicProfile(
    name="quadrics_qm500",
    tech="elan",
    latency_us=1.00,
    bandwidth_mbps=910.0,
    send_overhead_us=0.25,
    recv_overhead_us=0.25,
    mtu_bytes=4 * KB,
    rdv_threshold=16 * KB,
    gather_scatter=True,
    rdma=True,
    pipeline_gap_us=0.25,
)

#: First-generation Myrinet with the GM driver (paper §4 port list).
GM_MYRINET = NicProfile(
    name="gm_myrinet",
    tech="gm",
    latency_us=6.5,
    bandwidth_mbps=240.0,
    send_overhead_us=0.9,
    recv_overhead_us=0.9,
    mtu_bytes=4 * KB,
    rdv_threshold=16 * KB,
    gather_scatter=False,
    rdma=True,
    pipeline_gap_us=0.8,
)

#: Dolphin SCI with the SISCI driver (paper §4 port list).
SISCI_SCI = NicProfile(
    name="sisci_sci",
    tech="sisci",
    latency_us=2.3,
    bandwidth_mbps=320.0,
    send_overhead_us=0.7,
    recv_overhead_us=0.7,
    mtu_bytes=8 * KB,
    rdv_threshold=8 * KB,
    gather_scatter=False,
    rdma=True,
    pipeline_gap_us=0.6,
)

#: Gigabit Ethernet over TCP (paper §4 port list).
TCP_GIGE = NicProfile(
    name="tcp_gige",
    tech="tcp",
    latency_us=28.0,
    bandwidth_mbps=110.0,
    send_overhead_us=4.0,
    recv_overhead_us=4.0,
    mtu_bytes=1500,
    rdv_threshold=64 * KB,
    gather_scatter=False,
    rdma=False,
    pipeline_gap_us=2.0,
)

#: The evaluation hosts: dual-core 1.8 GHz Opteron, DDR-era memory.
#: 900 MB/s is a sustained single-threaded pack/unpack copy rate (cold
#: caches, byte-granular dataloops), below raw STREAM numbers on purpose —
#: it is what calibrates Figure 4's "about 70 %" gain over MPICH.
HOST_2006_OPTERON = HostProfile(
    name="opteron_1_8ghz",
    memory=MemoryModel(copy_bandwidth_mbps=900.0, per_call_overhead_us=0.08),
)

PROFILES: dict[str, NicProfile] = {
    p.name: p
    for p in (MX_MYRI10G, QUADRICS_QM500, GM_MYRINET, SISCI_SCI, TCP_GIGE)
}


def profile_by_name(name: str) -> NicProfile:
    """Look up a NIC profile; raises ``KeyError`` with the known names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown NIC profile {name!r}; known: {sorted(PROFILES)}"
        ) from None

"""Cluster construction: nodes, rails and full-mesh wiring.

A *rail* is one network technology connecting every node (the paper's
evaluation platform has two rails: Myri-10G and Quadrics).  The cluster
builds one NIC per (node, rail) and a pair of directed links per node pair
per rail.  The multirail strategy (paper §4) and the heterogeneous
load-balancing future work (paper §7) operate across rails of a single
cluster.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NetworkError
from repro.netsim.link import FaultPlan, Link
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.netsim.profiles import HOST_2006_OPTERON, HostProfile, NicProfile
from repro.sim import Simulator, Tracer

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes fully connected on each rail."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int = 2,
        rails: Sequence[NicProfile] = (),
        host: HostProfile = HOST_2006_OPTERON,
        tracer: Tracer | None = None,
    ) -> None:
        if n_nodes < 2:
            raise NetworkError(f"a cluster needs at least 2 nodes, got {n_nodes}")
        if not rails:
            raise NetworkError("a cluster needs at least one rail profile")
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self.host = host
        self.rails: tuple[NicProfile, ...] = tuple(rails)
        self.nodes: list[Node] = []
        self.links: list[Link] = []

        for node_id in range(n_nodes):
            node = Node(sim, node_id, memory=host.memory, tracer=self.tracer)
            for rail_idx, profile in enumerate(self.rails):
                node.add_nic(Nic(sim, node_id, rail_idx, profile, tracer=self.tracer))
            self.nodes.append(node)

        for rail_idx, profile in enumerate(self.rails):
            for a in range(n_nodes):
                for b in range(n_nodes):
                    if a == b:
                        continue
                    src = self.nodes[a].nic(rail_idx)
                    dst = self.nodes[b].nic(rail_idx)
                    link = Link(sim, src, dst, profile.latency_us, tracer=self.tracer)
                    src.connect(b, link)
                    self.links.append(link)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Node by id, with a helpful error on bad ids."""
        if not 0 <= node_id < len(self.nodes):
            raise NetworkError(
                f"node id {node_id} out of range (cluster has {len(self.nodes)})"
            )
        return self.nodes[node_id]

    def schedule_node_fault(self, node_id: int, plan: FaultPlan) -> None:
        """Schedule ``plan``'s node crash (and optional restart) on a node.

        Node faults live on :class:`~repro.netsim.link.FaultPlan` next to
        the link faults so one plan describes a whole chaos scenario, but
        they are applied here — a crash takes down every NIC of the node,
        not one wire.  The restart only powers the NICs back up; whoever
        owns the node (a test, the CLI) constructs a fresh engine on it to
        re-install receive handlers for the new incarnation.
        """
        if plan.node_crash_at is None:
            raise NetworkError(
                f"{plan!r} has no node_crash_at; nothing to schedule")
        node = self.node(node_id)
        self.sim.schedule(max(0.0, plan.node_crash_at - self.sim.now),
                          node.crash)
        if plan.node_restart_at is not None:
            self.sim.schedule(max(0.0, plan.node_restart_at - self.sim.now),
                              node.restart)

    def rail_index(self, tech_or_name: str) -> int:
        """Find a rail by profile name or technology string."""
        for idx, profile in enumerate(self.rails):
            if tech_or_name in (profile.name, profile.tech):
                return idx
        raise NetworkError(
            f"no rail {tech_or_name!r} in cluster "
            f"(rails: {[p.name for p in self.rails]})"
        )

    def conservation_ok(self, allow_faults: bool = False) -> bool:
        """True when no frame is lost or duplicated on any quiesced link.

        With ``allow_faults=True``, frames an injected fault dropped are
        accounted for instead of counted as violations: every frame that
        entered a link must either have been delivered or deliberately
        dropped.  This is the check to use with the reliability layer,
        whose retransmissions re-enter links as fresh sends.
        """
        if allow_faults:
            return all(
                l.frames_sent == l.frames_delivered + l.frames_dropped
                and l.bytes_sent == l.bytes_delivered + l.bytes_dropped
                for l in self.links
            )
        return all(
            l.frames_sent == l.frames_delivered
            and l.bytes_sent == l.bytes_delivered
            for l in self.links
        )

    def fault_summary(self) -> dict[str, int]:
        """Aggregate injected-fault counters across every link."""
        return {
            "frames_dropped": sum(l.frames_dropped for l in self.links),
            "frames_corrupted": sum(l.frames_corrupted for l in self.links),
            "frames_slowed": sum(l.frames_slowed for l in self.links),
            "bytes_dropped": sum(l.bytes_dropped for l in self.links),
            "links_down": sum(1 for l in self.links if l.down),
            "links_slowed": sum(1 for l in self.links if l.frames_slowed),
            "nodes_down": sum(1 for n in self.nodes if not n.up),
            "nic_frames_lost": sum(
                nic.frames_lost for n in self.nodes for nic in n.nics
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {len(self.nodes)} nodes, "
            f"rails={[p.name for p in self.rails]}>"
        )

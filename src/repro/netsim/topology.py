"""Cluster construction: nodes, rails and topology wiring.

A *rail* is one network technology connecting every node (the paper's
evaluation platform has two rails: Myri-10G and Quadrics).  The cluster
builds one NIC per (node, rail) and hands each rail to a topology builder
(:mod:`repro.netsim.fabric`).  The default is the paper-faithful flat full
mesh — a pair of directed links per node pair per rail — while structured
fabrics (fat-tree, dragonfly) wire hosts through switches and allocate
only the links that physically exist, so a 1k-node fat-tree costs
thousands of links instead of the mesh's millions.  The multirail strategy
(paper §4) and the heterogeneous load-balancing future work (paper §7)
operate across rails of a single cluster.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NetworkError
from repro.netsim.fabric import (
    Switch,
    TopologySpec,
    resolve_topology,
    schedule_switch_fault,
)
from repro.netsim.link import FaultPlan, Link
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.netsim.profiles import HOST_2006_OPTERON, HostProfile, NicProfile
from repro.sim import Simulator, Tracer

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes connected on each rail by a topology builder."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int = 2,
        rails: Sequence[NicProfile] = (),
        host: HostProfile = HOST_2006_OPTERON,
        tracer: Tracer | None = None,
        topology: str | TopologySpec = "mesh",
    ) -> None:
        if n_nodes < 2:
            raise NetworkError(f"a cluster needs at least 2 nodes, got {n_nodes}")
        if not rails:
            raise NetworkError("a cluster needs at least one rail profile")
        spec = resolve_topology(topology)
        if n_nodes > spec.capacity():
            raise NetworkError(
                f"{spec.name} topology holds at most {spec.capacity()} "
                f"hosts, got {n_nodes}")
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self.host = host
        self.rails: tuple[NicProfile, ...] = tuple(rails)
        self.topology = spec
        self.topology_name = spec.name
        self.nodes: list[Node] = []
        self.links: list[Link] = []
        self.switches: list[Switch] = []
        #: (host id, rail) -> the host's uplink into the switched fabric
        #: (empty for the mesh, where every link is point-to-point).
        self.host_uplinks: dict[tuple[int, int], Link] = {}
        #: Fault domains: rack -> member host ids (fat-tree: one rack per
        #: populated edge switch; dragonfly: one per group; mesh: none).
        self.racks: list[list[int]] = []
        self._rack_switches: list[list[Switch]] = []

        for node_id in range(n_nodes):
            node = Node(sim, node_id, memory=host.memory, tracer=self.tracer)
            for rail_idx, profile in enumerate(self.rails):
                node.add_nic(Nic(sim, node_id, rail_idx, profile, tracer=self.tracer))
            self.nodes.append(node)

        for rail_idx, profile in enumerate(self.rails):
            spec.build(self, rail_idx, profile)

    def _new_switch(self, name: str, tier: str, rail: int, seed: int,
                    group: int) -> Switch:
        """Create, register and salt a switch (builders call this)."""
        switch_id = len(self.switches)
        salt = (seed * 1_000_003 + switch_id) & 0xFFFFFFFF
        switch = Switch(self.sim, switch_id, name, tier, rail, salt,
                        tracer=self.tracer)
        switch.group = group
        self.switches.append(switch)
        return switch

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Node by id, with a helpful error on bad ids."""
        if not 0 <= node_id < len(self.nodes):
            raise NetworkError(
                f"node id {node_id} out of range (cluster has {len(self.nodes)})"
            )
        return self.nodes[node_id]

    def schedule_node_fault(self, node_id: int, plan: FaultPlan) -> None:
        """Schedule ``plan``'s node crash (and optional restart) on a node.

        Node faults live on :class:`~repro.netsim.link.FaultPlan` next to
        the link faults so one plan describes a whole chaos scenario, but
        they are applied here — a crash takes down every NIC of the node,
        not one wire.  The restart only powers the NICs back up; whoever
        owns the node (a test, the CLI) constructs a fresh engine on it to
        re-install receive handlers for the new incarnation.
        """
        if plan.node_crash_at is None:
            raise NetworkError(
                f"{plan!r} has no node_crash_at; nothing to schedule")
        node = self.node(node_id)
        self.sim.schedule(max(0.0, plan.node_crash_at - self.sim.now),
                          node.crash)
        if plan.node_restart_at is not None:
            self.sim.schedule(max(0.0, plan.node_restart_at - self.sim.now),
                              node.restart)

    # -- switch / rack fault domains ----------------------------------------
    def switch(self, switch_id: int) -> Switch:
        """Switch by id, with a helpful error on bad ids."""
        if not 0 <= switch_id < len(self.switches):
            raise NetworkError(
                f"switch id {switch_id} out of range "
                f"(cluster has {len(self.switches)})")
        return self.switches[switch_id]

    def schedule_switch_fault(self, switch_id: int, plan: FaultPlan) -> None:
        """Schedule ``plan``'s ``switch_down_at`` fail-stop on one switch.

        Like node faults, switch faults live on :class:`FaultPlan` so one
        plan describes a whole scenario, but they are applied here: a dead
        switch drops everything queued in its ports and black-holes
        arrivals, and every flow whose primary ECMP path crossed it
        reroutes at the upstream hop.
        """
        if plan.switch_down_at is None:
            raise NetworkError(
                f"{plan!r} has no switch_down_at; nothing to schedule")
        schedule_switch_fault(self, self.switch(switch_id), plan)

    def fail_domain(self, switch_ids: Sequence[int], at_us: float) -> None:
        """Fail a correlated group of switches as ONE event at ``at_us``.

        This is the blast-radius primitive: a shared power feed or a rack
        top dying takes every switch in the domain down at the same
        virtual instant, not as independent coin flips.
        """
        switches = [self.switch(sid) for sid in switch_ids]
        if not switches:
            raise NetworkError("fail_domain needs at least one switch")

        def _blast() -> None:
            for sw in switches:
                sw.fail()

        self.sim.schedule(max(0.0, at_us - self.sim.now), _blast)

    def rack_partition(self, rack: int, from_us: float,
                       until_us: float | None) -> int:
        """Sever one rack from the rest of the fabric for a time window.

        Installs partition windows on every link crossing the rack
        boundary on every rail — both directions, switch-to-switch and
        nothing inside the rack — so intra-rack traffic keeps flowing
        while the rack is unreachable from outside.  Returns the number
        of links the window was installed on.
        """
        if not self.racks:
            raise NetworkError(
                f"no racks in a flat {self.topology_name}; build a "
                "structured topology (fat-tree, dragonfly) for rack faults")
        if not 0 <= rack < len(self.racks):
            raise NetworkError(
                f"rack {rack} out of range (cluster has {len(self.racks)})")
        rack_switches = self._rack_switches[rack]
        interior = {sw.node_id for sw in rack_switches}
        interior.update(self.racks[rack])
        installed = 0
        for link in self.links:
            inside_src = link.src.node_id in interior
            inside_dst = link.dst.node_id in interior
            if inside_src == inside_dst:
                continue
            plan = link.fault_plan
            if plan is None:
                link.fault_plan = FaultPlan(partitions=((from_us, until_us),))
            elif isinstance(plan, FaultPlan):
                plan.add_partition(from_us, until_us)
            else:
                raise NetworkError(
                    f"{link.name} carries a bare callable fault injector; "
                    "partitions compose only with FaultPlan")
            installed += 1
        self.tracer.emit(self.sim.now, "cluster", "rack_partition",
                         rack=rack, hosts=list(self.racks[rack]),
                         from_us=from_us, until_us=until_us, links=installed)
        return installed

    def path(self, src: int, dst: int, rail: int = 0) -> list[str]:
        """The switch names a ``src -> dst`` flow traverses on ``rail``.

        A side-effect-free walk of the current route tables (reroute
        counters are not bumped).  Empty for a direct point-to-point link
        (the mesh), truncated at the first black hole.
        """
        self.node(src)
        self.node(dst)
        nic = self.nodes[src].nic(rail)
        link = nic.uplink
        if link is None:
            return []  # point-to-point: no switches on the way
        hops: list[str] = []
        current = link.dst
        for _ in range(64):
            if not isinstance(current, Switch):
                break
            hops.append(current.name)
            port_id = current.select_port(src, dst, count=False)
            if port_id is None:
                break
            current = current.ports[port_id].link.dst
        return hops

    def partition(
        self,
        groups: Sequence[Sequence[int]],
        from_us: float,
        until_us: float | None,
        one_way: bool = False,
    ) -> int:
        """Sever the network between node groups for a time window.

        Every link whose endpoints sit in *different* groups gets a
        partition window ``[from_us, until_us)`` (``until_us=None`` =
        forever) appended to its :class:`FaultPlan` — installing one if
        the link has none.  Nodes not named in any group are unaffected.

        With ``one_way=True`` only links from a lower-indexed group to a
        higher-indexed one drop frames: asymmetric loss where A cannot
        reach B but B's frames (including heartbeats) still reach A.

        Returns the number of links the partition was installed on.
        """
        if len(groups) < 2:
            raise NetworkError(
                f"a partition needs at least 2 groups, got {len(groups)}")
        membership: dict[int, int] = {}
        for gidx, members in enumerate(groups):
            for node_id in members:
                self.node(node_id)  # range check
                if node_id in membership:
                    raise NetworkError(
                        f"node {node_id} appears in more than one "
                        "partition group")
                membership[node_id] = gidx
        installed = 0
        for link in self.links:
            ga = membership.get(link.src.node_id)
            gb = membership.get(link.dst.node_id)
            if ga is None or gb is None or ga == gb:
                continue
            if one_way and ga > gb:
                continue
            plan = link.fault_plan
            if plan is None:
                link.fault_plan = FaultPlan(
                    partitions=((from_us, until_us),))
            elif isinstance(plan, FaultPlan):
                plan.add_partition(from_us, until_us)
            else:
                raise NetworkError(
                    f"{link.name} carries a bare callable fault injector; "
                    "partitions compose only with FaultPlan")
            installed += 1
        if installed:
            self.tracer.emit(self.sim.now, "cluster", "partition",
                             groups=[list(g) for g in groups],
                             from_us=from_us, until_us=until_us,
                             one_way=one_way, links=installed)
        return installed

    def rail_index(self, tech_or_name: str) -> int:
        """Find a rail by profile name or technology string."""
        for idx, profile in enumerate(self.rails):
            if tech_or_name in (profile.name, profile.tech):
                return idx
        raise NetworkError(
            f"no rail {tech_or_name!r} in cluster "
            f"(rails: {[p.name for p in self.rails]})"
        )

    def conservation_ok(self, allow_faults: bool = False) -> bool:
        """True when no frame is lost or duplicated on any quiesced link.

        With ``allow_faults=True``, frames an injected fault dropped or
        duplicated are accounted for instead of counted as violations:
        every frame that entered a link must either have been delivered
        or deliberately dropped, and every wire echo adds exactly one
        extra delivery.  This is the check to use with the reliability
        layer, whose retransmissions re-enter links as fresh sends.
        """
        if allow_faults:
            return all(
                l.frames_sent + l.frames_duplicated
                == l.frames_delivered + l.frames_dropped
                and l.bytes_sent + l.bytes_duplicated
                == l.bytes_delivered + l.bytes_dropped
                for l in self.links
            )
        return all(
            l.frames_sent == l.frames_delivered
            and l.bytes_sent == l.bytes_delivered
            for l in self.links
        )

    def fault_summary(self) -> dict[str, int]:
        """Aggregate injected-fault counters across every link."""
        return {
            "frames_dropped": sum(l.frames_dropped for l in self.links),
            "frames_corrupted": sum(l.frames_corrupted for l in self.links),
            "frames_slowed": sum(l.frames_slowed for l in self.links),
            "frames_duplicated": sum(l.frames_duplicated for l in self.links),
            "frames_reordered": sum(l.frames_reordered for l in self.links),
            "frames_jittered": sum(l.frames_jittered for l in self.links),
            "frames_partition_dropped": sum(
                l.frames_partition_dropped for l in self.links),
            "bytes_dropped": sum(l.bytes_dropped for l in self.links),
            "bytes_duplicated": sum(l.bytes_duplicated for l in self.links),
            "links_down": sum(1 for l in self.links if l.down),
            "links_slowed": sum(1 for l in self.links if l.frames_slowed),
            "links_partitioned": sum(
                1 for l in self.links if l.frames_partition_dropped),
            "nodes_down": sum(1 for n in self.nodes if not n.up),
            "nic_frames_lost": sum(
                nic.frames_lost for n in self.nodes for nic in n.nics
            ),
            # Switch fault domain (all zero on the flat mesh).
            "switches_down": sum(1 for s in self.switches if not s.up),
            "switch_frames_dropped": sum(
                s.frames_dropped for s in self.switches),
            "switch_bytes_dropped": sum(
                s.bytes_dropped for s in self.switches),
            "switch_frames_forwarded": sum(
                s.frames_forwarded for s in self.switches),
            "paths_rerouted": sum(s.paths_rerouted for s in self.switches),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {len(self.nodes)} nodes, "
            f"rails={[p.name for p in self.rails]}>"
        )

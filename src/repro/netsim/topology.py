"""Cluster construction: nodes, rails and full-mesh wiring.

A *rail* is one network technology connecting every node (the paper's
evaluation platform has two rails: Myri-10G and Quadrics).  The cluster
builds one NIC per (node, rail) and a pair of directed links per node pair
per rail.  The multirail strategy (paper §4) and the heterogeneous
load-balancing future work (paper §7) operate across rails of a single
cluster.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NetworkError
from repro.netsim.link import FaultPlan, Link
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.netsim.profiles import HOST_2006_OPTERON, HostProfile, NicProfile
from repro.sim import Simulator, Tracer

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes fully connected on each rail."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int = 2,
        rails: Sequence[NicProfile] = (),
        host: HostProfile = HOST_2006_OPTERON,
        tracer: Tracer | None = None,
    ) -> None:
        if n_nodes < 2:
            raise NetworkError(f"a cluster needs at least 2 nodes, got {n_nodes}")
        if not rails:
            raise NetworkError("a cluster needs at least one rail profile")
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self.host = host
        self.rails: tuple[NicProfile, ...] = tuple(rails)
        self.nodes: list[Node] = []
        self.links: list[Link] = []

        for node_id in range(n_nodes):
            node = Node(sim, node_id, memory=host.memory, tracer=self.tracer)
            for rail_idx, profile in enumerate(self.rails):
                node.add_nic(Nic(sim, node_id, rail_idx, profile, tracer=self.tracer))
            self.nodes.append(node)

        for rail_idx, profile in enumerate(self.rails):
            for a in range(n_nodes):
                for b in range(n_nodes):
                    if a == b:
                        continue
                    src = self.nodes[a].nic(rail_idx)
                    dst = self.nodes[b].nic(rail_idx)
                    link = Link(sim, src, dst, profile.latency_us, tracer=self.tracer)
                    src.connect(b, link)
                    self.links.append(link)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Node by id, with a helpful error on bad ids."""
        if not 0 <= node_id < len(self.nodes):
            raise NetworkError(
                f"node id {node_id} out of range (cluster has {len(self.nodes)})"
            )
        return self.nodes[node_id]

    def schedule_node_fault(self, node_id: int, plan: FaultPlan) -> None:
        """Schedule ``plan``'s node crash (and optional restart) on a node.

        Node faults live on :class:`~repro.netsim.link.FaultPlan` next to
        the link faults so one plan describes a whole chaos scenario, but
        they are applied here — a crash takes down every NIC of the node,
        not one wire.  The restart only powers the NICs back up; whoever
        owns the node (a test, the CLI) constructs a fresh engine on it to
        re-install receive handlers for the new incarnation.
        """
        if plan.node_crash_at is None:
            raise NetworkError(
                f"{plan!r} has no node_crash_at; nothing to schedule")
        node = self.node(node_id)
        self.sim.schedule(max(0.0, plan.node_crash_at - self.sim.now),
                          node.crash)
        if plan.node_restart_at is not None:
            self.sim.schedule(max(0.0, plan.node_restart_at - self.sim.now),
                              node.restart)

    def partition(
        self,
        groups: Sequence[Sequence[int]],
        from_us: float,
        until_us: float | None,
        one_way: bool = False,
    ) -> int:
        """Sever the network between node groups for a time window.

        Every link whose endpoints sit in *different* groups gets a
        partition window ``[from_us, until_us)`` (``until_us=None`` =
        forever) appended to its :class:`FaultPlan` — installing one if
        the link has none.  Nodes not named in any group are unaffected.

        With ``one_way=True`` only links from a lower-indexed group to a
        higher-indexed one drop frames: asymmetric loss where A cannot
        reach B but B's frames (including heartbeats) still reach A.

        Returns the number of links the partition was installed on.
        """
        if len(groups) < 2:
            raise NetworkError(
                f"a partition needs at least 2 groups, got {len(groups)}")
        membership: dict[int, int] = {}
        for gidx, members in enumerate(groups):
            for node_id in members:
                self.node(node_id)  # range check
                if node_id in membership:
                    raise NetworkError(
                        f"node {node_id} appears in more than one "
                        "partition group")
                membership[node_id] = gidx
        installed = 0
        for link in self.links:
            ga = membership.get(link.src.node_id)
            gb = membership.get(link.dst.node_id)
            if ga is None or gb is None or ga == gb:
                continue
            if one_way and ga > gb:
                continue
            plan = link.fault_plan
            if plan is None:
                link.fault_plan = FaultPlan(
                    partitions=((from_us, until_us),))
            elif isinstance(plan, FaultPlan):
                plan.add_partition(from_us, until_us)
            else:
                raise NetworkError(
                    f"{link.name} carries a bare callable fault injector; "
                    "partitions compose only with FaultPlan")
            installed += 1
        if installed:
            self.tracer.emit(self.sim.now, "cluster", "partition",
                             groups=[list(g) for g in groups],
                             from_us=from_us, until_us=until_us,
                             one_way=one_way, links=installed)
        return installed

    def rail_index(self, tech_or_name: str) -> int:
        """Find a rail by profile name or technology string."""
        for idx, profile in enumerate(self.rails):
            if tech_or_name in (profile.name, profile.tech):
                return idx
        raise NetworkError(
            f"no rail {tech_or_name!r} in cluster "
            f"(rails: {[p.name for p in self.rails]})"
        )

    def conservation_ok(self, allow_faults: bool = False) -> bool:
        """True when no frame is lost or duplicated on any quiesced link.

        With ``allow_faults=True``, frames an injected fault dropped or
        duplicated are accounted for instead of counted as violations:
        every frame that entered a link must either have been delivered
        or deliberately dropped, and every wire echo adds exactly one
        extra delivery.  This is the check to use with the reliability
        layer, whose retransmissions re-enter links as fresh sends.
        """
        if allow_faults:
            return all(
                l.frames_sent + l.frames_duplicated
                == l.frames_delivered + l.frames_dropped
                and l.bytes_sent + l.bytes_duplicated
                == l.bytes_delivered + l.bytes_dropped
                for l in self.links
            )
        return all(
            l.frames_sent == l.frames_delivered
            and l.bytes_sent == l.bytes_delivered
            for l in self.links
        )

    def fault_summary(self) -> dict[str, int]:
        """Aggregate injected-fault counters across every link."""
        return {
            "frames_dropped": sum(l.frames_dropped for l in self.links),
            "frames_corrupted": sum(l.frames_corrupted for l in self.links),
            "frames_slowed": sum(l.frames_slowed for l in self.links),
            "frames_duplicated": sum(l.frames_duplicated for l in self.links),
            "frames_reordered": sum(l.frames_reordered for l in self.links),
            "frames_jittered": sum(l.frames_jittered for l in self.links),
            "frames_partition_dropped": sum(
                l.frames_partition_dropped for l in self.links),
            "bytes_dropped": sum(l.bytes_dropped for l in self.links),
            "bytes_duplicated": sum(l.bytes_duplicated for l in self.links),
            "links_down": sum(1 for l in self.links if l.down),
            "links_slowed": sum(1 for l in self.links if l.frames_slowed),
            "links_partitioned": sum(
                1 for l in self.links if l.frames_partition_dropped),
            "nodes_down": sum(1 for n in self.nodes if not n.up),
            "nic_frames_lost": sum(
                nic.frames_lost for n in self.nodes for nic in n.nics
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {len(self.nodes)} nodes, "
            f"rails={[p.name for p in self.rails]}>"
        )

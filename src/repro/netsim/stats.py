"""Utilization and throughput reporting over a finished simulation.

Answers the question the paper's design keeps returning to — are the NICs
"exploited at their maximum ... not overloaded when there is a high demand
of transfers and under exploited when there is not" (§3.1) — with per-NIC
busy fractions and achieved throughput, plus a cluster-wide summary the
multirail benches print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.nic import Nic
from repro.netsim.topology import Cluster

__all__ = ["NicUtilization", "nic_utilization", "cluster_utilization",
           "render_utilization", "render_fault_summary"]


@dataclass(frozen=True)
class NicUtilization:
    """One NIC's activity summary over ``[0, horizon_us]``."""

    name: str
    busy_us: float
    horizon_us: float
    frames_sent: int
    bytes_sent: int
    frames_received: int
    bytes_received: int

    @property
    def busy_fraction(self) -> float:
        """Fraction of the horizon the card spent transmitting."""
        return self.busy_us / self.horizon_us if self.horizon_us > 0 else 0.0

    @property
    def achieved_tx_mbps(self) -> float:
        """Average injected bandwidth over the horizon (decimal MB/s)."""
        return self.bytes_sent / self.horizon_us if self.horizon_us > 0 \
            else 0.0


def nic_utilization(nic: Nic, horizon_us: float) -> NicUtilization:
    """Snapshot one NIC's counters against a time horizon."""
    if horizon_us < 0:
        raise ValueError(f"negative horizon {horizon_us}")
    return NicUtilization(
        name=nic.name,
        busy_us=nic.busy_time,
        horizon_us=horizon_us,
        frames_sent=nic.frames_sent,
        bytes_sent=nic.bytes_sent,
        frames_received=nic.frames_received,
        bytes_received=nic.bytes_received,
    )


def cluster_utilization(cluster: Cluster) -> list[NicUtilization]:
    """Utilization of every NIC at the cluster's current time."""
    horizon = cluster.sim.now
    return [nic_utilization(nic, horizon)
            for node in cluster.nodes for nic in node.nics]


def render_utilization(utils: list[NicUtilization]) -> str:
    """Aligned text table of per-NIC utilization."""
    lines = [f"{'nic':<24} {'busy%':>7} {'tx MB/s':>9} {'frames':>8} "
             f"{'bytes':>12}"]
    for u in utils:
        lines.append(
            f"{u.name:<24} {100 * u.busy_fraction:>6.1f}% "
            f"{u.achieved_tx_mbps:>9.1f} {u.frames_sent:>8} "
            f"{u.bytes_sent:>12}"
        )
    return "\n".join(lines)


def render_fault_summary(cluster: Cluster) -> str:
    """One-line report of injected faults across the cluster's links."""
    s = cluster.fault_summary()
    conserved = cluster.conservation_ok(allow_faults=True)
    slowed = (
        f"{s['frames_slowed']} slowed on {s['links_slowed']} link(s), "
        if s["frames_slowed"] else ""
    )
    duplicated = (
        f"{s['frames_duplicated']} duplicated, "
        if s["frames_duplicated"] else ""
    )
    reordered = (
        f"{s['frames_reordered']} reordered, "
        if s["frames_reordered"] else ""
    )
    partitioned = (
        f"{s['frames_partition_dropped']} partition-dropped on "
        f"{s['links_partitioned']} link(s), "
        if s["frames_partition_dropped"] else ""
    )
    return (
        f"faults: {s['frames_dropped']} dropped "
        f"({s['bytes_dropped']}B), {s['frames_corrupted']} corrupted, "
        f"{slowed}{duplicated}{reordered}{partitioned}"
        f"{s['links_down']} link(s) down; "
        f"conservation(with faults): {'ok' if conserved else 'VIOLATED'}"
    )

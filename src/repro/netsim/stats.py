"""Utilization and throughput reporting over a finished simulation.

Answers the question the paper's design keeps returning to — are the NICs
"exploited at their maximum ... not overloaded when there is a high demand
of transfers and under exploited when there is not" (§3.1) — with per-NIC
busy fractions and achieved throughput, plus a cluster-wide summary the
multirail benches print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.netsim.nic import Nic
from repro.netsim.topology import Cluster

__all__ = ["NicUtilization", "SWITCH_COUNTERS", "RTT_SNAPSHOT_KEYS",
           "nic_utilization", "cluster_utilization", "render_utilization",
           "render_fault_summary", "topology_summary", "render_topology",
           "adaptive_summary", "render_adaptive"]

#: Every per-switch integer counter, in report order.  This is the
#: NM304-style registry for the topology layer: the ``--json`` report and
#: the chaos report emit exactly these keys per switch, and the registry
#: test asserts the tuple stays exhaustive against ``fabric.Switch``.
SWITCH_COUNTERS: tuple[str, ...] = (
    "frames_forwarded",
    "bytes_forwarded",
    "frames_dropped",
    "bytes_dropped",
    "paths_rerouted",
)


@dataclass(frozen=True)
class NicUtilization:
    """One NIC's activity summary over ``[0, horizon_us]``."""

    name: str
    busy_us: float
    horizon_us: float
    frames_sent: int
    bytes_sent: int
    frames_received: int
    bytes_received: int

    @property
    def busy_fraction(self) -> float:
        """Fraction of the horizon the card spent transmitting."""
        return self.busy_us / self.horizon_us if self.horizon_us > 0 else 0.0

    @property
    def achieved_tx_mbps(self) -> float:
        """Average injected bandwidth over the horizon (decimal MB/s)."""
        return self.bytes_sent / self.horizon_us if self.horizon_us > 0 \
            else 0.0


def nic_utilization(nic: Nic, horizon_us: float) -> NicUtilization:
    """Snapshot one NIC's counters against a time horizon."""
    if horizon_us < 0:
        raise ValueError(f"negative horizon {horizon_us}")
    return NicUtilization(
        name=nic.name,
        busy_us=nic.busy_time,
        horizon_us=horizon_us,
        frames_sent=nic.frames_sent,
        bytes_sent=nic.bytes_sent,
        frames_received=nic.frames_received,
        bytes_received=nic.bytes_received,
    )


def cluster_utilization(cluster: Cluster) -> list[NicUtilization]:
    """Utilization of every NIC at the cluster's current time."""
    horizon = cluster.sim.now
    return [nic_utilization(nic, horizon)
            for node in cluster.nodes for nic in node.nics]


def render_utilization(utils: list[NicUtilization]) -> str:
    """Aligned text table of per-NIC utilization."""
    lines = [f"{'nic':<24} {'busy%':>7} {'tx MB/s':>9} {'frames':>8} "
             f"{'bytes':>12}"]
    for u in utils:
        lines.append(
            f"{u.name:<24} {100 * u.busy_fraction:>6.1f}% "
            f"{u.achieved_tx_mbps:>9.1f} {u.frames_sent:>8} "
            f"{u.bytes_sent:>12}"
        )
    return "\n".join(lines)


def render_fault_summary(cluster: Cluster) -> str:
    """One-line report of injected faults across the cluster's links."""
    s = cluster.fault_summary()
    conserved = cluster.conservation_ok(allow_faults=True)
    slowed = (
        f"{s['frames_slowed']} slowed on {s['links_slowed']} link(s), "
        if s["frames_slowed"] else ""
    )
    duplicated = (
        f"{s['frames_duplicated']} duplicated, "
        if s["frames_duplicated"] else ""
    )
    reordered = (
        f"{s['frames_reordered']} reordered, "
        if s["frames_reordered"] else ""
    )
    partitioned = (
        f"{s['frames_partition_dropped']} partition-dropped on "
        f"{s['links_partitioned']} link(s), "
        if s["frames_partition_dropped"] else ""
    )
    return (
        f"faults: {s['frames_dropped']} dropped "
        f"({s['bytes_dropped']}B), {s['frames_corrupted']} corrupted, "
        f"{slowed}{duplicated}{reordered}{partitioned}"
        f"{s['links_down']} link(s) down; "
        f"conservation(with faults): {'ok' if conserved else 'VIOLATED'}"
    )


#: The tier whose load spread measures ECMP quality, per topology.
_SPINE_TIER = {"fat-tree": "core", "dragonfly": "router"}


def topology_summary(cluster: Cluster) -> dict[str, Any]:
    """Machine-readable snapshot of the switching fabric.

    Flat mesh clusters (the paper-faithful default) have no switches and
    report an empty-but-well-formed summary so consumers never need to
    special-case the topology.  The per-switch entries carry exactly the
    :data:`SWITCH_COUNTERS` keys; ``ecmp_spread`` measures load balance
    over the spine tier (max − min frames forwarded across live spines —
    0 means perfectly even).
    """
    switches = cluster.switches
    summary: dict[str, Any] = {
        "name": cluster.topology_name,
        "n_switches": len(switches),
        "switches_down": sum(1 for sw in switches if not sw.up),
        "paths_rerouted": sum(sw.paths_rerouted for sw in switches),
        "switch_frames_forwarded": sum(sw.frames_forwarded
                                       for sw in switches),
        "switch_frames_dropped": sum(sw.frames_dropped for sw in switches),
        "switch_bytes_dropped": sum(sw.bytes_dropped for sw in switches),
        "n_racks": len(cluster.racks),
        "switches": [
            {"name": sw.name, "tier": sw.tier, "rail": sw.rail,
             "up": sw.up,
             **{c: getattr(sw, c) for c in SWITCH_COUNTERS}}
            for sw in switches
        ],
    }
    spine_tier = _SPINE_TIER.get(cluster.topology_name)
    spine_loads = [sw.frames_forwarded for sw in switches
                   if spine_tier is not None and sw.tier == spine_tier
                   and sw.rail == 0]
    summary["spine_loads"] = spine_loads
    summary["ecmp_spread"] = (max(spine_loads) - min(spine_loads)
                              if spine_loads else 0)
    return summary


#: Per-peer keys of one :meth:`~repro.core.rttstat.RttEstimator.snapshot`
#: entry, in report order.  The ``--json`` report emits exactly these keys
#: per measured peer and the registry test pins the tuple against the
#: estimator, in the same spirit as :data:`SWITCH_COUNTERS`.
RTT_SNAPSHOT_KEYS: tuple[str, ...] = (
    "srtt_us",
    "rttvar_us",
    "rto_us",
    "samples",
)


def adaptive_summary(
    snapshot: dict[int, dict[str, float | int]],
) -> dict[str, dict[str, float | int]]:
    """JSON-ready view of an RTT-estimator snapshot.

    Takes the raw per-peer dump from
    :meth:`~repro.core.rttstat.RttEstimator.snapshot` and stringifies the
    peer keys (JSON objects cannot have integer keys); entries keep
    exactly the :data:`RTT_SNAPSHOT_KEYS`.  An engine without the
    adaptive layer contributes an empty dict, so consumers never
    special-case the mode.
    """
    return {str(peer): dict(entry) for peer, entry in snapshot.items()}


def render_adaptive(peers: dict[str, dict[str, float | int]]) -> str:
    """Aligned text table of per-peer RTT estimates (``repro report``)."""
    lines = [f"{'peer':<6} {'srtt us':>9} {'rttvar us':>10} {'rto us':>9} "
             f"{'samples':>8}"]
    for peer in sorted(peers, key=int):
        e = peers[peer]
        lines.append(
            f"{peer:<6} {e['srtt_us']:>9.2f} {e['rttvar_us']:>10.2f} "
            f"{e['rto_us']:>9.2f} {e['samples']:>8}"
        )
    return "\n".join(lines)


def render_topology(summary: dict[str, Any]) -> str:
    """Aligned text table of per-switch forwarding counters."""
    lines = [
        f"topology {summary['name']}: {summary['n_switches']} switch(es), "
        f"{summary['switches_down']} down, "
        f"{summary['paths_rerouted']} path(s) rerouted, "
        f"ecmp spread {summary['ecmp_spread']}",
    ]
    if summary["switches"]:
        lines.append(f"{'switch':<24} {'tier':<7} {'fwd':>8} {'fwdB':>12} "
                     f"{'drop':>6} {'rerte':>6} {'state':>6}")
        for sw in summary["switches"]:
            lines.append(
                f"{sw['name']:<24} {sw['tier']:<7} "
                f"{sw['frames_forwarded']:>8} {sw['bytes_forwarded']:>12} "
                f"{sw['frames_dropped']:>6} {sw['paths_rerouted']:>6} "
                f"{'up' if sw['up'] else 'DOWN':>6}"
            )
    return "\n".join(lines)

"""Structural typing contracts for the engine's extension points.

The engine is "dynamically extensible" (paper abstract): strategies come
from a registry, tactics are plain callables strategies compose, and the
transfer layer drives whatever NIC objects the node carries.  These
Protocols pin down exactly what each extension point must provide, so a
third-party strategy or an instrumented test double type-checks against
the engine without inheriting from the concrete classes:

* :class:`StrategyLike` — what :class:`repro.core.transfer.TransferLayer`
  calls on the active optimization function.  :class:`~repro.core.
  strategy.Strategy` satisfies it; so does any duck-typed stand-in.
* :class:`TacticLike` — the shape of a packet-synthesis tactic such as
  :func:`repro.core.tactics.plan_aggregate`: pure function from candidate
  wraps to an :class:`~repro.core.tactics.AggregateChoice`.
* :class:`NicLike` — the slice of :class:`repro.netsim.nic.Nic` the
  transfer layer depends on (idle-driven pull, post_send, receive hook).

All three are ``runtime_checkable`` so tests can assert conformance with
``isinstance`` (which checks attribute presence, not signatures — the
signatures are enforced statically by mypy).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.packet import PacketWrap
    from repro.core.strategy import SchedulingContext, SendPlan
    from repro.core.tactics import AggregateChoice
    from repro.netsim.frames import Frame
    from repro.netsim.profiles import NicProfile
    from repro.sim import Event

__all__ = ["StrategyLike", "TacticLike", "NicLike"]


@runtime_checkable
class StrategyLike(Protocol):
    """An optimization function the transfer layer can drive.

    Instances may carry tuning parameters but must not keep per-call
    mutable scheduling state: the engine interleaves calls across NICs.
    """

    name: str

    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        """Elect the next request for an idle NIC, or ``None``."""
        ...

    def hold_until(self, ctx: SchedulingContext) -> float | None:
        """Absolute retry time after declining despite pending work."""
        ...

    def describe(self) -> str:
        """Human-readable parameterization (for reports)."""
        ...


@runtime_checkable
class TacticLike(Protocol):
    """A packet-synthesis tactic: candidates in, aggregate choice out.

    Tactics are the reusable planning kernels strategies compose
    (:func:`repro.core.tactics.plan_aggregate` is the canonical one).
    They are pure with respect to engine state — everything they may
    consult arrives through the arguments.
    """

    def __call__(
        self,
        candidates: Sequence[PacketWrap],
        dest: int,
        rdv_threshold: int,
        sent: set[int],
        max_items: int | None = None,
        scan_past_blockage: bool = True,
    ) -> AggregateChoice:
        ...


@runtime_checkable
class NicLike(Protocol):
    """The transfer layer's view of one network interface card.

    The real :class:`repro.netsim.nic.Nic` satisfies this; a test double
    only needs these members to be driven by the engine.
    """

    rail: int
    profile: NicProfile

    @property
    def idle(self) -> bool:
        """True when no frame is being transmitted or queued."""
        ...

    @property
    def queued(self) -> int:
        """Number of frames waiting behind the current transmission."""
        ...

    def post_send(self, frame: Frame, cpu_gap_us: float = 0.0) -> Event:
        """Queue a frame; the returned event fires when it left the wire."""
        ...

    def set_receive_handler(self, fn: Callable[[Frame], None]) -> None:
        """Install the single upcall invoked per received frame."""
        ...

    def add_idle_callback(self, fn: Callable[[Any], None]) -> None:
        """Register a hook fired (with the NIC) whenever it goes idle."""
        ...

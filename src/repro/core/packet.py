"""Packet wraps and wire items.

Two levels of "packet" exist in the engine, mirroring the paper:

* a :class:`PacketWrap` is what the **collect layer** produces from one
  application data piece: the data plus "the meta-data necessary in their
  identification by the receiving side (tag number, sender id, sequence
  number)" (paper §3.3), plus the scheduling attributes the optimizer may
  consult ("destination, flow tag, length, sequence number, dependency
  attributes" — §3.2).  Wraps live in the optimization window.

* a **physical packet** is what the strategy synthesizes for an idle NIC:
  a list of :class:`WireItem` records (data segments, rendezvous control
  records, bulk chunks) that travels as a single :class:`~repro.netsim.frames.Frame`.
  Its byte layout is modelled by the header-size constants in
  :class:`HeaderSpec` — the "extra header systematically added ... for
  allowing the reordering and the multiplexing of the packets" whose cost
  Figure 2 measures (§5.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.data import SegmentData
from repro.sim import Event

__all__ = [
    "CancelItem",
    "HeaderSpec",
    "PacketWrap",
    "WireItem",
    "SegItem",
    "RdvReqItem",
    "RdvAckItem",
    "RdvDataItem",
    "PhysPacket",
]


@dataclass(frozen=True)
class HeaderSpec:
    """On-wire header byte counts for the engine's packet format.

    ``rel_header`` and ``checksum`` are only charged when the optional
    reliability layer is active (``EngineParams.reliability="ack"``): every
    sequenced frame then carries a sequence number plus a piggybacked
    cumulative/selective acknowledgement (``rel_header``) and a payload
    checksum used to detect corruption on arrival.
    """

    global_header: int = 16   # once per physical packet
    seg_header: int = 16      # per data segment (tag, flow, seq, length)
    rdv_req: int = 24         # rendezvous announce record
    rdv_ack: int = 16         # rendezvous grant record
    rdv_data_header: int = 24 # per bulk chunk (handle, offset, length)
    rel_header: int = 12      # reliability seq + piggybacked ack record
    checksum: int = 4         # payload checksum (reliability mode only)
    credit_header: int = 8    # piggybacked credit grant (flow-control mode)
    session_header: int = 8   # incarnation pair (session mode only)

    def __post_init__(self) -> None:
        for f in ("global_header", "seg_header", "rdv_req", "rdv_ack",
                  "rdv_data_header", "rel_header", "checksum",
                  "credit_header", "session_header"):
            if getattr(self, f) < 0:
                raise ValueError(f"negative header size for {f}")


_wrap_ids = itertools.count(1)


@dataclass
class PacketWrap:
    """One collected application data piece waiting in the window."""

    dest: int                       # destination node id
    flow: int                       # logical channel (e.g. MPI communicator)
    tag: int                        # message tag within the flow
    seq: int                        # per-(dest, flow) submission sequence no.
    data: SegmentData
    priority: int = 0               # higher = deliver earlier if possible
    allow_reorder: bool = True      # may the optimizer overtake with this?
    depends_on: int | None = None  # wrap_id that must be *sent* first
    rail: int | None = None      # pinned rail (dedicated list) or None
    submitted_at: float = 0.0
    is_control: bool = False        # engine-internal control traffic
    credit_exempt: bool = False     # bypasses credit gating (NACK resends)
    control_item: WireItem | None = None  # the item a control wrap carries
    wrap_id: int = field(default_factory=lambda: next(_wrap_ids))
    completion: Event | None = None  # succeeds when the send completes

    def __post_init__(self) -> None:
        if self.dest < 0:
            raise ValueError(f"bad destination {self.dest}")
        if self.seq < 0:
            raise ValueError(f"bad sequence number {self.seq}")

    @property
    def length(self) -> int:
        """Payload byte count."""
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Wrap#{self.wrap_id} ->{self.dest} flow={self.flow} tag={self.tag} "
            f"seq={self.seq} {self.length}B prio={self.priority}>"
        )


class WireItem:
    """One record inside a physical packet."""

    __slots__ = ()

    def wire_size(self, hdr: HeaderSpec) -> int:
        raise NotImplementedError

    def payload_size(self) -> int:
        return 0


@dataclass
class SegItem(WireItem):
    """An eager data segment with its demultiplexing metadata."""

    src: int
    flow: int
    tag: int
    seq: int
    data: SegmentData

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.seg_header + self.data.nbytes

    def payload_size(self) -> int:
        return self.data.nbytes


@dataclass
class CancelItem(WireItem):
    """Tombstone for a cancelled send.

    Cancelling a wrap that already consumed a sequence number would leave a
    hole in the receiver's (src, flow) ordering stream and park every later
    message forever.  The tombstone travels in the cancelled wrap's place
    (it aggregates like any control record) and advances the receiver's
    sequence counter without matching any posted receive.
    """

    src: int
    flow: int
    tag: int
    seq: int

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.seg_header


@dataclass
class RdvReqItem(WireItem):
    """Announces a large message; the data follows after the grant.

    Carries the same matching metadata as a segment so the receiver matches
    it *in order* against posted receives, plus the handle the grant and the
    bulk chunks refer to.
    """

    src: int
    flow: int
    tag: int
    seq: int
    handle: int
    nbytes: int

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.rdv_req


@dataclass
class RdvAckItem(WireItem):
    """Grants a rendezvous: the destination is ready for zero-copy landing."""

    src: int          # node sending the ACK (the data receiver)
    handle: int       # sender-side handle being granted

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.rdv_ack


@dataclass
class RdvDataItem(WireItem):
    """One zero-copy bulk chunk of a granted rendezvous transfer."""

    src: int
    handle: int
    offset: int
    total: int
    data: SegmentData

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.rdv_data_header + self.data.nbytes

    def payload_size(self) -> int:
        return self.data.nbytes


@dataclass
class PhysPacket:
    """The payload of one frame: an ordered list of wire items."""

    items: list[WireItem]

    def wire_size(self, hdr: HeaderSpec) -> int:
        return hdr.global_header + sum(i.wire_size(hdr) for i in self.items)

    def payload_size(self) -> int:
        return sum(i.payload_size() for i in self.items)

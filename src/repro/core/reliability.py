"""Optional transport reliability: sliding-window ack/retransmit + failover.

The real NewMadeleine targets reliable system-area networks (MX, Elan,
SCI) and performs **no retransmission** — the default
``EngineParams.reliability="off"`` keeps that paper-faithful behaviour,
and every Figure 2/3/4 number is produced in that mode.  This module is
the opt-in production-hardening layer (``reliability="ack"``) that makes
the engine survive lossy links and failing rails:

* every physical frame to a peer carries a per-peer **sequence number**
  (``rel_header`` + ``checksum`` bytes from :class:`HeaderSpec` are added
  to its wire size);
* the receiver acknowledges with a **cumulative + selective** record,
  piggybacked on any reverse frame, or as a small standalone ack frame
  after ``rel_ack_delay_us`` of reverse silence;
* unacked frames are kept in a per-peer send buffer and retransmitted on
  an **exponential-backoff timer** (``rel_timeout_us`` × ``rel_backoff``
  per retry), over the healthiest rail with a link to the peer;
* the receive side **suppresses duplicates** before the demultiplexer, so
  the matcher and the rendezvous reassembly never see a frame twice;
* each retransmit timeout scores a loss against the rail the frame last
  used; ``rel_quarantine_threshold`` consecutive losses **quarantine**
  the rail (if another healthy rail exists) — subsequent traffic,
  retransmits, and not-yet-carved rendezvous chunks fail over to the
  surviving rails;
* a quarantined rail is **re-probed half-open** after a backoff window
  (``rel_probe_after_us``, default 32x the retransmit timeout, doubling
  on every re-quarantine): it rejoins the candidate set one loss short
  of the threshold, so a still-dead rail is ejected on the very next
  timeout while a healed one carries traffic again;
* among healthy rails, election is **congestion-aware**: the least
  congested rail by NIC queue depth (pending window bytes as tie-break)
  wins, sticky to the previous rail on ties — shortest-queue failover
  rather than a fixed priority order;
* after ``rel_retry_budget`` retransmits a frame is declared
  undeliverable: the affected requests fail with
  :class:`~repro.errors.TransportError` (:class:`~repro.errors.RailDownError`
  when the rail was quarantined) instead of stalling the simulation.

Sequencing is per *peer*, not per rail, which is what makes failover
transparent: a retransmitted frame keeps its sequence number on any rail,
so cross-rail replays deduplicate exactly like same-rail ones.
"""

from __future__ import annotations

from collections.abc import Callable

from typing import TYPE_CHECKING

from repro.errors import RailDownError, TransportError
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.nic import Nic

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine

__all__ = ["ReliabilityLayer"]


class _Pending:
    """One unacknowledged frame in a peer channel's send buffer."""

    __slots__ = ("seq", "frame", "cpu_gap_us", "on_delivered", "on_failed",
                 "rail", "retries", "deadline", "sent_at", "hedged_at")

    def __init__(self, seq: int, frame: Frame, cpu_gap_us: float,
                 on_delivered: Callable[[], None] | None,
                 on_failed: Callable[[BaseException], None] | None,
                 rail: int) -> None:
        self.seq = seq
        self.frame = frame
        self.cpu_gap_us = cpu_gap_us
        self.on_delivered = on_delivered
        self.on_failed = on_failed
        self.rail = rail           # rail of the most recent transmission
        self.retries = 0
        self.deadline: float | None = None  # None while queued/in tx
        # First-transmission completion time: the RTT sample anchor.  Karn's
        # rule falls out of the bookkeeping — a retransmitted (retries > 0)
        # or hedged (hedged_at set) frame never feeds the estimator, because
        # its ack cannot be attributed to one transmission.
        self.sent_at: float | None = None
        self.hedged_at: float | None = None


class _Channel:
    """Both directions of the reliability state towards one peer."""

    __slots__ = ("peer", "next_seq", "unacked", "rto_us", "timer_gen",
                 "hedge_gen", "rx_cum", "rx_sacks", "ack_pending", "ack_gen")

    def __init__(self, peer: int, rto_us: float) -> None:
        self.peer = peer
        # Transmit half.
        self.next_seq = 0
        self.unacked: dict[int, _Pending] = {}
        self.rto_us = rto_us
        self.timer_gen = 0
        self.hedge_gen = 0
        # Receive half.
        self.rx_cum = 0                 # every seq < rx_cum was received
        self.rx_sacks: set[int] = set() # received beyond the cumulative edge
        self.ack_pending = False
        self.ack_gen = 0


class ReliabilityLayer:
    """Per-engine ack/retransmit protocol and rail-health tracking.

    In ``"off"`` mode every call degrades to a thin pass-through around
    :meth:`Nic.post_send` with identical timing, so the default engine is
    byte-for-byte and microsecond-for-microsecond the paper's.
    """

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.params = engine.params
        self.nics = list(engine.node.nics)
        self.mode = engine.params.reliability
        # The session layer gates every transmit (constructed just before
        # this layer); in sessions="off" mode the gate is never consulted.
        self._sessions = engine.sessions
        # Adaptive timing: the engine-owned estimator, or None in static
        # mode.  _static_rto_us is the configured constant when static.
        self._rtt = engine.rtt
        self._static_rto_us: float | None = (
            None if engine.params.rel_adaptive
            else float(engine.params.rel_timeout_us))
        self._channels: dict[int, _Channel] = {}
        #: Rails the health tracker has taken out of service.
        self.quarantined: set[int] = set()
        #: Consecutive retransmit-timeouts per rail (reset on any ack).
        self.rail_losses: dict[int, int] = {}
        # Half-open recovery: each quarantine schedules a re-probe after a
        # per-rail backoff window; generation counters void stale probes.
        self._probe_gens: dict[int, int] = {}
        self._probe_backoff: dict[int, float] = {}
        self._name = f"node{engine.node_id}.reliability"

    # -- introspection ------------------------------------------------------
    def rail_ok(self, rail: int) -> bool:
        """May the transfer layer still schedule work on this rail?"""
        return rail not in self.quarantined

    @property
    def n_unacked(self) -> int:
        return sum(len(ch.unacked) for ch in self._channels.values())

    @property
    def quiesced(self) -> bool:
        """True when no frame awaits an ack and no ack awaits sending."""
        return all(not ch.unacked and not ch.ack_pending
                   for ch in self._channels.values())

    def has_outstanding(self, peer: int) -> bool:
        """Does this layer still owe or await anything towards ``peer``?"""
        ch = self._channels.get(peer)
        return ch is not None and bool(ch.unacked or ch.ack_pending)

    def _rto_base_us(self, peer: int) -> float:
        """The un-backed-off retransmit timeout towards ``peer``: the
        measured (clamped, headroomed) estimate in auto mode, the
        configured constant otherwise."""
        if self._rtt is not None:
            return self._rtt.rto_us(peer)
        assert self._static_rto_us is not None
        return self._static_rto_us

    def _channel(self, peer: int) -> _Channel:
        ch = self._channels.get(peer)
        if ch is None:
            ch = _Channel(peer, rto_us=self._rto_base_us(peer))
            self._channels[peer] = ch
        return ch

    # -- transmit side ------------------------------------------------------
    def send(
        self,
        nic: Nic,
        frame: Frame,
        cpu_gap_us: float = 0.0,
        on_delivered: Callable[[], None] | None = None,
        on_failed: Callable[[BaseException], None] | None = None,
    ) -> None:
        """Transmit ``frame`` on ``nic``, reliably when the layer is on.

        ``on_delivered`` fires once: at tx completion in ``"off"`` mode
        (the classic "data left the node" semantics), at ack receipt in
        ``"ack"`` mode.  ``on_failed`` fires instead (ack mode only) when
        the retransmit budget is exhausted — or, with ``sessions="epoch"``,
        when the peer is confirmed dead.
        """
        if self._sessions.active and self._sessions.defer_tx(
                nic, frame, cpu_gap_us, on_delivered, on_failed):
            # Buffered behind the session handshake (it will re-enter here
            # on flush), or failed because the peer is dead.
            return
        if self.mode == "off":
            done = nic.post_send(frame, cpu_gap_us=cpu_gap_us)
            if on_delivered is not None:
                done.add_callback(lambda _evt: on_delivered())
            return
        ch = self._channel(frame.dst_node)
        hdr = self.params.hdr
        frame.rel_seq = ch.next_seq
        ch.next_seq += 1
        frame.wire_size += hdr.rel_header + hdr.checksum
        frame.rel_ack = self._ack_snapshot(ch)
        self._cancel_delayed_ack(ch)
        pending = _Pending(frame.rel_seq, frame, cpu_gap_us,
                           on_delivered, on_failed, rail=nic.rail)
        ch.unacked[pending.seq] = pending
        done = nic.post_send(frame, cpu_gap_us=cpu_gap_us)
        done.add_callback(lambda _evt: self._tx_done(ch, pending))

    def _tx_done(self, ch: _Channel, pending: _Pending) -> None:
        """A (re)transmission fully left the NIC: start its retry clock."""
        if pending.seq not in ch.unacked:
            return  # acked while still queued on the card
        if pending.retries == 0 and pending.sent_at is None:
            pending.sent_at = self.sim.now
            self._maybe_arm_hedge(ch, pending)
        pending.deadline = self.sim.now + ch.rto_us
        self._arm_timer(ch)

    # -- tail hedging ---------------------------------------------------------
    def _maybe_arm_hedge(self, ch: _Channel, pending: _Pending) -> None:
        """Arm the tail re-send for a freshly transmitted frame.

        Only in ``rel_hedge="tail"`` mode with a warm estimate for the
        frame's rail: once the frame has been outstanding past a p99-ish
        quantile of that rail's observed RTT, one copy goes out on the
        second-best rail while the original stays in flight.  Duplicate
        suppression absorbs whichever copy loses; the hedge never scores a
        loss, never counts as a retransmit, and never feeds the estimator.
        """
        if self.params.rel_hedge != "tail" or self._rtt is None:
            return
        if len(self.nics) < 2:
            return
        delay = self._rtt.hedge_delay_us(ch.peer, pending.rail)
        if delay is None:
            return  # estimate too cold to call anything a tail
        gen = ch.hedge_gen
        self.sim.schedule(delay, lambda: self._hedge_fire(ch, pending, gen))

    def _hedge_fire(self, ch: _Channel, pending: _Pending, gen: int) -> None:
        if gen != ch.hedge_gen:
            return  # peer torn down / node halted since arming
        if (pending.seq not in ch.unacked or pending.retries
                or pending.hedged_at is not None):
            return  # acked, already retransmitting, or already hedged
        rail = self._second_best_rail(ch.peer, exclude=pending.rail)
        if rail is None:
            return  # no healthy alternative rail to hedge on
        pending.hedged_at = self.sim.now
        self.engine.stats.hedges_sent += 1
        frame = pending.frame
        frame.rel_ack = self._ack_snapshot(ch)
        self._cancel_delayed_ack(ch)
        self.engine.tracer.emit(self.sim.now, self._name, "hedge",
                                seq=pending.seq, peer=ch.peer,
                                from_rail=pending.rail, to_rail=rail)
        # The original keeps its retry clock and its loss attribution; the
        # hedge copy is fire-and-forget (same seq, so the receiver dedups).
        self.nics[rail].post_send(frame, cpu_gap_us=pending.cpu_gap_us)

    def _second_best_rail(self, peer: int, exclude: int) -> int | None:
        """Least-congested healthy rail other than ``exclude``, if any."""
        candidates = [r for r, nic in enumerate(self.nics)
                      if r != exclude and r not in self.quarantined
                      and nic.has_peer(peer)]
        if not candidates:
            return None
        return min(candidates, key=self._rail_score)

    def _arm_timer(self, ch: _Channel) -> None:
        deadlines = [p.deadline for p in ch.unacked.values()
                     if p.deadline is not None]
        if not deadlines:
            return
        ch.timer_gen += 1
        gen = ch.timer_gen
        delay = max(0.0, min(deadlines) - self.sim.now)
        self.sim.schedule(delay, lambda: self._on_timer(ch, gen))

    def _on_timer(self, ch: _Channel, gen: int) -> None:
        if gen != ch.timer_gen:
            return  # superseded by a newer arm
        now = self.sim.now
        expired = [p for p in ch.unacked.values()
                   if p.deadline is not None and p.deadline <= now]
        if expired:
            self._retransmit(ch, min(expired, key=lambda p: p.seq))
        self._arm_timer(ch)

    def _retransmit(self, ch: _Channel, pending: _Pending) -> None:
        params = self.params
        if pending.retries >= params.rel_retry_budget:
            self._give_up(ch, pending)
            return
        pending.retries += 1
        self.engine.stats.retransmits += 1
        self._note_loss(pending.rail)
        rail = self._choose_rail(ch.peer, prefer=pending.rail)
        if rail != pending.rail:
            self.engine.stats.failovers += 1
            self.engine.tracer.emit(self.sim.now, self._name, "failover",
                                    seq=pending.seq, peer=ch.peer,
                                    from_rail=pending.rail, to_rail=rail)
            pending.rail = rail
        ch.rto_us = min(ch.rto_us * params.rel_backoff,
                        64.0 * self._rto_base_us(ch.peer))
        if self._rtt is not None:
            self.engine.stats.rto_backoffs += 1
        pending.deadline = None
        frame = pending.frame
        frame.rel_ack = self._ack_snapshot(ch)
        self._cancel_delayed_ack(ch)
        self.engine.tracer.emit(self.sim.now, self._name, "retransmit",
                                seq=pending.seq, peer=ch.peer, rail=rail,
                                attempt=pending.retries)
        done = self.nics[rail].post_send(frame, cpu_gap_us=pending.cpu_gap_us)
        done.add_callback(lambda _evt: self._tx_done(ch, pending))

    def _give_up(self, ch: _Channel, pending: _Pending) -> None:
        del ch.unacked[pending.seq]
        self.engine.stats.transport_failures += 1
        kind = (RailDownError if pending.rail in self.quarantined
                else TransportError)
        exc = kind(
            f"node{self.engine.node_id}: frame seq {pending.seq} to node "
            f"{ch.peer} undeliverable after {pending.retries} retransmits "
            f"(last rail {pending.rail})"
        )
        self.engine.tracer.emit(self.sim.now, self._name, "give_up",
                                seq=pending.seq, peer=ch.peer,
                                retries=pending.retries)
        if pending.on_failed is not None:
            pending.on_failed(exc)

    # -- rail health ---------------------------------------------------------
    def _note_loss(self, rail: int) -> None:
        self.rail_losses[rail] = self.rail_losses.get(rail, 0) + 1
        if (rail not in self.quarantined
                and self.rail_losses[rail] >= self.params.rel_quarantine_threshold
                and any(r not in self.quarantined
                        for r in range(len(self.nics)) if r != rail)):
            self._quarantine(rail)

    def _quarantine(self, rail: int) -> None:
        self.quarantined.add(rail)
        self.engine.stats.rails_quarantined += 1
        self.engine.tracer.emit(self.sim.now, self._name, "quarantine",
                                rail=rail,
                                losses=self.rail_losses.get(rail, 0))
        healthy = [r for r in range(len(self.nics))
                   if r not in self.quarantined]
        if healthy:
            self.engine.rendezvous.reroute_rail(rail, healthy[0])
        # Expire everything last sent on the dead rail so failover happens
        # now rather than after the remaining backoff.
        now = self.sim.now
        for ch in self._channels.values():
            touched = False
            for p in ch.unacked.values():
                if p.rail == rail and p.deadline is not None:
                    p.deadline = now
                    touched = True
            if touched:
                self._arm_timer(ch)
        self._schedule_probe(rail)
        self.engine.transfer.kick()

    def _probe_base_us(self) -> float:
        """The first half-open probe delay (0 in params = auto-derive)."""
        configured = self.params.rel_probe_after_us
        if configured > 0.0:
            return configured
        if self._rtt is not None:
            return 32.0 * self._rtt.global_rto_us()
        assert self._static_rto_us is not None
        return 32.0 * self._static_rto_us

    def _schedule_probe(self, rail: int) -> None:
        """Arm the half-open recovery probe for a freshly quarantined rail.

        The backoff doubles on every re-quarantine of the same rail (capped
        at 64x) and resets the next time an ack succeeds on it, so a flapping
        rail is probed ever more lazily while a healed one rejoins fast.
        """
        base = self._probe_base_us()
        if base != base or base == float("inf"):  # NaN/inf = probing off
            return
        backoff = self._probe_backoff.get(rail, base)
        self._probe_backoff[rail] = min(backoff * 2.0, 64.0 * base)
        gen = self._probe_gens.get(rail, 0) + 1
        self._probe_gens[rail] = gen
        self.engine.tracer.emit(self.sim.now, self._name, "probe_armed",
                                rail=rail, after_us=backoff)
        self.sim.schedule(backoff, lambda: self._reprobe(rail, gen))

    def _reprobe(self, rail: int, gen: int) -> None:
        """Half-open the rail: lift the quarantine, one strike re-imposes it.

        The rail rejoins the candidate set with its loss score one short of
        the threshold, so the very next retransmit timeout on it
        re-quarantines immediately (and re-arms a longer probe), while a
        single successful ack clears the score and the backoff entirely.
        """
        if gen != self._probe_gens.get(rail):
            return  # superseded (halt or a newer quarantine cycle)
        if rail not in self.quarantined:
            return
        self.quarantined.discard(rail)
        self.rail_losses[rail] = self.params.rel_quarantine_threshold - 1
        self.engine.stats.rails_reprobed += 1
        self.engine.tracer.emit(self.sim.now, self._name, "reprobe",
                                rail=rail)
        self.engine.transfer.kick()

    def _choose_rail(self, peer: int, prefer: int) -> int:
        """Least-congested healthy rail with a path to ``peer``.

        Congestion-aware shortest-queue choice: each candidate rail is
        scored by its NIC's tx occupancy (queued frames, +1 while the card
        is busy serializing) with the optimization window's O(1) pending-
        byte index as the tie-break.  ``prefer`` stays sticky unless some
        other rail is *strictly* less congested, so the uncontended case
        behaves exactly like the old boolean health check.
        """
        candidates = [r for r, nic in enumerate(self.nics)
                      if r not in self.quarantined and nic.has_peer(peer)]
        if not candidates:
            return prefer  # no healthy alternative: keep trying where we were
        if len(candidates) == 1:
            return candidates[0]
        best = min(candidates, key=self._rail_score)
        if prefer in candidates:
            if self._rail_score(best) < self._rail_score(prefer):
                return best
            return prefer
        return best

    def _rail_score(self, rail: int) -> tuple[int, int]:
        """Queue-depth congestion score for one rail (lower is better)."""
        nic = self.nics[rail]
        depth = nic.queued + (0 if nic.idle else 1)
        return depth, self.engine.window.pending_bytes(rail)

    def choose_rail(self, peer: int, prefer: int = 0) -> int:
        """Public rail election for other control layers (flow control)."""
        return self._choose_rail(peer, prefer)

    # -- receive side --------------------------------------------------------
    def on_frame(self, rail: int, frame: Frame) -> None:
        """Every engine-NIC arrival funnels through here before demux."""
        if frame.corrupted:
            # The checksum the sender appended does not match: discard like
            # a loss (in ack mode the retransmit timer recovers it; in off
            # mode the stall is the loud surface the tests demand).
            self.engine.stats.corrupt_discards += 1
            self.engine.tracer.emit(self.sim.now, self._name, "rx_corrupt",
                                    frame=frame.frame_id, rail=rail)
            return
        if frame.rel_ack is not None:
            cum, sacks = frame.rel_ack
            self._handle_ack(frame.src_node, cum, sacks)
        if frame.kind == FrameKind.REL_ACK:
            return
        if self.mode == "off" or frame.rel_seq is None:
            self.engine.flowcontrol.accept(rail, frame)
            return
        ch = self._channel(frame.src_node)
        if not self._record_rx(ch, frame.rel_seq):
            self.engine.stats.duplicates_suppressed += 1
            self.engine.tracer.emit(self.sim.now, self._name, "dup_suppress",
                                    seq=frame.rel_seq, peer=frame.src_node)
            # The peer is clearly missing our ack: resend it right away.
            self._send_ack(ch)
            return
        self._schedule_delayed_ack(ch)
        self.engine.flowcontrol.accept(rail, frame)

    def _record_rx(self, ch: _Channel, seq: int) -> bool:
        if seq < ch.rx_cum or seq in ch.rx_sacks:
            return False
        ch.rx_sacks.add(seq)
        while ch.rx_cum in ch.rx_sacks:
            ch.rx_sacks.discard(ch.rx_cum)
            ch.rx_cum += 1
        return True

    def _ack_snapshot(self, ch: _Channel) -> tuple[int, tuple[int, ...]]:
        return ch.rx_cum, tuple(sorted(ch.rx_sacks))

    def _handle_ack(self, peer: int, cum: int, sacks: tuple[int, ...]) -> None:
        ch = self._channel(peer)
        sackset = set(sacks)
        acked = sorted(s for s in ch.unacked if s < cum or s in sackset)
        if not acked:
            return
        now = self.sim.now
        for seq in acked:
            pending = ch.unacked.pop(seq)
            self.rail_losses[pending.rail] = 0
            # Proof of life: the rail carried an acked frame, so the next
            # quarantine (if any) starts from the base probe window again.
            self._probe_backoff.pop(pending.rail, None)
            if self._rtt is not None and pending.sent_at is not None:
                if pending.retries == 0 and pending.hedged_at is None:
                    # Karn's rule: only a frame transmitted exactly once
                    # (never retried, never hedged) yields an unambiguous
                    # RTT measurement.
                    self._rtt.sample(peer, pending.rail,
                                     now - pending.sent_at)
                    self.engine.stats.rtt_samples += 1
                elif pending.hedged_at is not None and pending.retries == 0:
                    # Attribution heuristic: the hedge "won" when the ack
                    # materialized faster after the hedge went out than the
                    # original had managed in its entire head start.
                    if (now - pending.hedged_at
                            < pending.hedged_at - pending.sent_at):
                        self.engine.stats.hedges_won += 1
            if pending.on_delivered is not None:
                pending.on_delivered()
        ch.rto_us = self._rto_base_us(peer)  # fresh RTT evidence
        self._arm_timer(ch)

    # -- acknowledgement generation ------------------------------------------
    def _schedule_delayed_ack(self, ch: _Channel) -> None:
        if ch.ack_pending:
            return
        ch.ack_pending = True
        ch.ack_gen += 1
        gen = ch.ack_gen
        self.sim.schedule(self.params.rel_ack_delay_us,
                          lambda: self._delayed_ack_fire(ch, gen))

    def _delayed_ack_fire(self, ch: _Channel, gen: int) -> None:
        if gen != ch.ack_gen or not ch.ack_pending:
            return  # a reverse frame piggybacked the ack in the meantime
        self._send_ack(ch)

    def _cancel_delayed_ack(self, ch: _Channel) -> None:
        ch.ack_pending = False
        ch.ack_gen += 1

    def _send_ack(self, ch: _Channel) -> None:
        self._cancel_delayed_ack(ch)
        hdr = self.params.hdr
        rail = self._choose_rail(ch.peer, prefer=0)
        frame = Frame(
            src_node=self.engine.node_id, dst_node=ch.peer,
            kind=FrameKind.REL_ACK,
            wire_size=hdr.rel_header + hdr.checksum,
            rel_ack=self._ack_snapshot(ch),
        )
        # Standalone acks bypass send() (they must not consume a sequence
        # number) but still need the epoch stamp to pass the peer's fence.
        self._sessions.stamp(frame)
        self.engine.stats.acks_sent += 1
        self.engine.tracer.emit(self.sim.now, self._name, "ack",
                                peer=ch.peer, cum=frame.rel_ack[0],
                                sacks=len(frame.rel_ack[1]), rail=rail)
        self.nics[rail].post_send(frame, cpu_gap_us=0.0)

    # -- session-layer hooks --------------------------------------------------
    def reset_peer(self, peer: int, exc: BaseException) -> None:
        """Tear down the channel to a dead/restarted peer atomically.

        Cancels the retransmit and delayed-ack timers through their
        generation counters *before* dropping the send buffer — the timer
        closures hold the channel object, so a later tick against a
        resurrected peer must find a bumped generation, not a stale
        deadline.  Every unacked frame's requests fail with ``exc``.
        """
        ch = self._channels.get(peer)
        if ch is None:
            return
        ch.timer_gen += 1              # pending _on_timer becomes a no-op
        ch.hedge_gen += 1              # pending _hedge_fire likewise
        self._cancel_delayed_ack(ch)   # pending _delayed_ack_fire likewise
        pendings = sorted(ch.unacked.values(), key=lambda p: p.seq)
        ch.unacked.clear()
        del self._channels[peer]
        if self._rtt is not None:
            # The next incarnation's path may be nothing like this one's.
            self._rtt.forget_peer(peer)
        self.engine.tracer.emit(self.sim.now, self._name, "reset_peer",
                                peer=peer, dropped=len(pendings))
        for pending in pendings:
            if pending.on_failed is not None:
                pending.on_failed(exc)

    def halt(self) -> None:
        """This node crashed: silence every timer, run no callbacks."""
        for ch in self._channels.values():
            ch.timer_gen += 1
            ch.hedge_gen += 1
            ch.ack_pending = False
            ch.ack_gen += 1
            ch.unacked.clear()
        for rail in range(len(self.nics)):
            if rail in self._probe_gens:
                self._probe_gens[rail] += 1  # in-flight probes become no-ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReliabilityLayer {self._name} mode={self.mode} "
                f"unacked={self.n_unacked} quarantined={sorted(self.quarantined)}>")

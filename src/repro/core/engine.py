"""The NewMadeleine engine: the three layers assembled on one node.

Instantiate one :class:`NmadEngine` per cluster node; engines communicate
exclusively through simulated frames (no shared Python state), exactly like
separate processes on separate hosts.

The native interface is deliberately small, mirroring the operations
MAD-MPI maps onto (paper §3.4): :meth:`NmadEngine.isend`,
:meth:`NmadEngine.irecv`, and the request handles' completion events for
wait/test.  The incremental pack interface of the former Madeleine library
lives in :mod:`repro.core.interface`.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

from repro.core.collect import CollectLayer
from repro.core.data import SegmentData
from repro.core.matching import Incoming, Matcher
from repro.core.packet import CancelItem, HeaderSpec, RdvReqItem, SegItem
from repro.core.reliability import ReliabilityLayer
from repro.core.rendezvous import RendezvousManager
from repro.core.requests import ANY, RecvRequest, SendRequest
from repro.core.strategy import Strategy, create
from repro.core.transfer import TransferLayer
from repro.core.window import OptimizationWindow
from repro.errors import MpiError
from repro.netsim.node import Node
from repro.netsim.profiles import NicProfile
from repro.sim import Event, Tracer

__all__ = ["EngineParams", "EngineStats", "NmadEngine"]


@dataclass(frozen=True)
class EngineParams:
    """Engine cost model and protocol constants.

    The two scheduler costs realize the overhead sources of paper §5.1: an
    extra header per physical packet (``hdr``), and "extra operations on
    the critical path to inspect the 'ready list'" — ``pull_cost_us`` once
    per synthesized packet plus ``per_mtu_cost_us`` per MTU of data pushed
    through the optimizer's data path (calibrated per driver, which is why
    the large-message bandwidth deficit differs between MX and Quadrics in
    Figure 2).
    """

    hdr: HeaderSpec = field(default_factory=HeaderSpec)
    pull_cost_us: float = 0.25
    demux_packet_cost_us: float = 0.30
    demux_item_cost_us: float = 0.05
    per_mtu_cost_us: float = 0.10
    #: When a NIC is refilled from an *anticipated* (pre-synthesized) packet
    #: the optimization function already ran off the critical path; only a
    #: hand-over cost remains (paper 3.2, second dispatch policy).
    anticipated_pull_cost_us: float = 0.05
    #: Dispatch policy (paper 3.2): "on_idle" = synthesize when a NIC asks;
    #: "anticipate" = while all NICs are busy keep one ready-to-send packet
    #: prepared and re-feed it instantly; "backlog" = anticipate only once
    #: the window holds at least ``backlog_flush_threshold`` wraps.
    dispatch_policy: str = "on_idle"
    backlog_flush_threshold: int = 8
    per_mtu_cost_by_tech: tuple[tuple[str, float], ...] = (
        ("mx", 0.12),
        ("elan", 0.36),
    )
    rdv_chunk_bytes: int = 512 * 1024
    eager_copy_on_recv: bool = True
    #: Transport reliability (see :mod:`repro.core.reliability`).  The
    #: paper's engine targets reliable system-area networks and performs no
    #: retransmission, so ``"off"`` is the default and keeps every benchmark
    #: number unchanged; ``"ack"`` turns on the sliding-window
    #: ack/retransmit protocol with rail failover.
    reliability: str = "off"
    #: Initial retransmit timeout, doubled (``rel_backoff``) per retry.
    rel_timeout_us: float = 200.0
    rel_backoff: float = 2.0
    #: Retransmissions per frame before the send fails with TransportError.
    rel_retry_budget: int = 8
    #: Reverse-silence window before a standalone ack frame is emitted.
    rel_ack_delay_us: float = 25.0
    #: Consecutive retransmit-timeouts that quarantine a rail (when another
    #: healthy rail exists).
    rel_quarantine_threshold: int = 3

    def __post_init__(self) -> None:
        if min(self.pull_cost_us, self.per_mtu_cost_us,
               self.demux_packet_cost_us, self.demux_item_cost_us,
               self.anticipated_pull_cost_us) < 0:
            raise ValueError("negative scheduler cost")
        if self.dispatch_policy not in ("on_idle", "anticipate", "backlog"):
            raise ValueError(
                f"unknown dispatch policy {self.dispatch_policy!r}; "
                "expected on_idle | anticipate | backlog"
            )
        if self.backlog_flush_threshold < 1:
            raise ValueError("backlog_flush_threshold must be >= 1")
        if self.rdv_chunk_bytes <= 0:
            raise ValueError("rendezvous chunk must be positive")
        if self.reliability not in ("off", "ack"):
            raise ValueError(
                f"unknown reliability mode {self.reliability!r}; "
                "expected off | ack"
            )
        if self.rel_timeout_us <= 0:
            raise ValueError("retransmit timeout must be positive")
        if self.rel_backoff < 1.0:
            raise ValueError("retransmit backoff must be >= 1")
        if self.rel_retry_budget < 1:
            raise ValueError("retry budget must be >= 1")
        if self.rel_ack_delay_us < 0:
            raise ValueError("negative ack delay")
        if self.rel_quarantine_threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")

    def per_mtu_cost(self, profile: NicProfile) -> float:
        """Data-path inspection cost per MTU for this driver."""
        for tech, cost in self.per_mtu_cost_by_tech:
            if tech == profile.tech:
                return cost
        return self.per_mtu_cost_us


@dataclass
class EngineStats:
    """Counters the tests, benches and ablations read."""

    phys_packets: int = 0
    items_sent: int = 0
    aggregated_packets: int = 0    # physical packets carrying >= 2 segments
    aggregated_segments: int = 0   # segments travelling in such packets
    anticipated_hits: int = 0      # idle NICs refilled from a prepared packet
    eager_bytes: int = 0
    rdv_bytes: int = 0
    wire_bytes: int = 0
    recv_copies: int = 0
    recv_copy_bytes: int = 0
    # Reliability-layer counters (all zero in "off" mode).
    retransmits: int = 0
    duplicates_suppressed: int = 0
    failovers: int = 0
    rails_quarantined: int = 0
    acks_sent: int = 0
    corrupt_discards: int = 0
    transport_failures: int = 0


class NmadEngine:
    """One node's NewMadeleine instance."""

    def __init__(
        self,
        node: Node,
        strategy: str | Strategy = "aggregation",
        params: EngineParams | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if not node.nics:
            raise MpiError(f"{node.name}: engine needs at least one NIC")
        self.node = node
        self.sim = node.sim
        self.node_id = node.node_id
        self.params = params if params is not None else EngineParams()
        self.tracer = tracer if tracer is not None else node.tracer
        self.strategy: Strategy = (
            create(strategy) if isinstance(strategy, str) else strategy
        )
        self.stats = EngineStats()
        self.window = OptimizationWindow(n_rails=len(node.nics))
        self.matcher = Matcher(self._on_match, tracer=self.tracer,
                               name=f"node{self.node_id}.matcher",
                               dedup=(self.params.reliability != "off"))
        self.rendezvous = RendezvousManager(self)
        self.collect = CollectLayer(self)
        self.reliability = ReliabilityLayer(self)
        self.transfer = TransferLayer(self)
        self.sim.add_deadlock_hint(self._deadlock_hint)

    # -- strategy management (paper abstract: dynamically extensible) -----
    def set_strategy(self, strategy: str | Strategy, **params: Any) -> None:
        """Swap the optimization function at runtime."""
        self.strategy = (
            create(strategy, **params) if isinstance(strategy, str) else strategy
        )
        self.transfer.kick()

    # -- native send/recv API ------------------------------------------------
    def isend(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        tag: int = 0,
        flow: int = 0,
        priority: int = 0,
        rail: int | None = None,
        allow_reorder: bool = True,
        depends_on: int | None = None,
    ) -> SendRequest:
        """Nonblocking send; returns a handle whose ``done`` event fires
        when the data has fully left this node."""
        wrap = self.collect.submit(
            dest, data, flow=flow, tag=tag, priority=priority, rail=rail,
            allow_reorder=allow_reorder, depends_on=depends_on,
        )
        assert wrap.completion is not None
        return SendRequest(wrap, wrap.completion)

    def irecv(
        self,
        src: int = ANY,
        tag: int = ANY,
        flow: int = 0,
        nbytes: int | None = None,
    ) -> RecvRequest:
        """Nonblocking receive; ``nbytes`` bounds acceptable message size."""
        req = RecvRequest(
            src=src, flow=flow, tag=tag, capacity=nbytes,
            done=self.sim.event(name=f"recv:{src}/{flow}/{tag}"),
            posted_at=self.sim.now,
        )
        self.matcher.post(req)
        return req

    def cancel(self, request: SendRequest) -> bool:
        """Cancel a send that has not been scheduled yet.

        A unique capability of the decoupled design: until a strategy
        commits a wrap to a physical packet *that a NIC accepted*, the data
        has not left the node, so cancellation can still succeed.  That
        covers a wrap sitting in the optimization window and a wrap held in
        an anticipated (pre-synthesized, paper §3.2) packet — the latter is
        unwound back into the window first.  Returns ``True`` in both cases
        (the request's completion then *fails* with :class:`MpiError` so
        waiters are not left hanging), ``False`` if the data already left
        or is mid-flight (rendezvous announced) — too late, like MPI_Cancel
        on a matched send.

        Because the wrap already consumed a sequence number in its
        (dest, flow) stream, a tiny tombstone record travels in its place
        so the receiver's in-order machinery never stalls on the hole.
        """
        from repro.errors import StrategyError

        wrap = request.wrap
        try:
            self.window.take(wrap)
        except StrategyError:
            if not self.transfer.uncommit_anticipated(wrap):
                return False
            # The wrap (and any packet-mates) are back in the window; the
            # tombstone submission below re-kicks scheduling for the rest.
            self.window.take(wrap)
        if wrap.completion is not None and not wrap.completion.triggered:
            err = MpiError(f"send cancelled: {wrap!r}")
            wrap.completion.fail(err)
            wrap.completion.defuse()
        tombstone = CancelItem(src=self.node_id, flow=wrap.flow,
                               tag=wrap.tag, seq=wrap.seq)
        self.collect.submit_control(dest=wrap.dest, item=tombstone)
        self.tracer.emit(self.sim.now, f"node{self.node_id}.collect",
                         "cancel", wrap=wrap.wrap_id)
        return True

    # -- blocking helpers for simulator processes -----------------------------
    def send(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        **kwargs: Any,
    ) -> Generator[Event, None, SendRequest]:
        """Process-style blocking send: ``yield from engine.send(...)``."""
        req = self.isend(dest, data, **kwargs)
        yield req.done
        return req

    def recv(
        self, src: int = ANY, tag: int = ANY, **kwargs: Any
    ) -> Generator[Event, None, RecvRequest]:
        """Process-style blocking receive; returns the completed request."""
        req = self.irecv(src=src, tag=tag, **kwargs)
        yield req.done
        return req

    # -- match dispatch -----------------------------------------------------------
    def _on_match(self, inc: Incoming, req: RecvRequest) -> None:
        if req.capacity is not None and inc.nbytes > req.capacity:
            err = MpiError(
                f"node{self.node_id}: truncation — {inc.nbytes}B message "
                f"(src={inc.src} flow={inc.flow} tag={inc.tag}) into a "
                f"{req.capacity}B receive"
            )
            # Defused like cancel() and TransferLayer._plan_failed: the
            # non-raising failed/error API must stay usable — an application
            # polling via test() would otherwise crash at run() end with the
            # unobserved-failure re-raise despite having handled the error.
            req.done.fail(err)
            req.done.defuse()
            return
        if isinstance(inc.item, RdvReqItem):
            self.rendezvous.grant(inc.item, req)
            return
        item = inc.item
        assert isinstance(item, SegItem)
        if self.params.eager_copy_on_recv and item.data.nbytes > 0:
            # Eager data lands in a driver buffer and is copied out to the
            # user buffer; the request completes after the copy, and copies
            # serialize on the host memory engine.
            delay = self.node.serialize_copy(
                self.node.memory.copy_time(item.data.nbytes))
            self.stats.recv_copies += 1
            self.stats.recv_copy_bytes += item.data.nbytes
            self.sim.schedule(
                delay,
                lambda: req.finish(item.data, src=inc.src, tag=inc.tag),
            )
        else:
            req.finish(item.data, src=inc.src, tag=inc.tag)

    # -- introspection ------------------------------------------------------------
    def quiesced(self) -> bool:
        """True when the engine holds no deferred work (end-of-test check)."""
        return (
            self.window.empty
            and not self.transfer.has_anticipated
            and self.rendezvous.n_pending == 0
            and self.rendezvous.n_granted == 0
            and self.rendezvous.n_incoming == 0
            and self.matcher.n_parked == 0
            and self.reliability.quiesced
        )

    def _deadlock_hint(self) -> str | None:
        """Engine-specific diagnosis appended to the kernel's deadlock error.

        A dropped frame is invisible to the engines themselves (both sides
        can be fully quiesced while the application hangs), so the stall
        signal is an outstanding posted receive or unquiesced state.
        """
        if self.stats.transport_failures:
            return (
                f"node{self.node_id}: retry budget exhausted on "
                f"{self.stats.transport_failures} frame(s) — the affected "
                "requests failed with TransportError"
            )
        if self.matcher.n_posted == 0 and self.quiesced():
            return None
        if self.params.reliability == "off":
            return (
                f"node{self.node_id}: reliability='off' — no retransmission "
                "(paper mode); a lost or corrupted frame stalls its stream "
                "forever"
            )
        return (f"node{self.node_id}: reliability='ack' still awaiting "
                "delivery")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NmadEngine node{self.node_id} strategy={self.strategy.describe()} "
            f"rails={len(self.node.nics)}>"
        )

"""The NewMadeleine engine: the three layers assembled on one node.

Instantiate one :class:`NmadEngine` per cluster node; engines communicate
exclusively through simulated frames (no shared Python state), exactly like
separate processes on separate hosts.

The native interface is deliberately small, mirroring the operations
MAD-MPI maps onto (paper §3.4): :meth:`NmadEngine.isend`,
:meth:`NmadEngine.irecv`, and the request handles' completion events for
wait/test.  The incremental pack interface of the former Madeleine library
lives in :mod:`repro.core.interface`.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

from repro.core.collect import CollectLayer
from repro.core.data import SegmentData
from repro.core.flowcontrol import FlowControlLayer
from repro.core.matching import Incoming, Matcher
from repro.core.packet import (
    CancelItem, HeaderSpec, PacketWrap, RdvReqItem, SegItem,
)
from repro.core.reliability import ReliabilityLayer
from repro.core.rendezvous import RendezvousManager
from repro.core.requests import ANY, RecvRequest, SendRequest
from repro.core.rttstat import RttEstimator
from repro.core.sessions import SessionLayer
from repro.core.strategy import Strategy, create
from repro.core.transfer import TransferLayer
from repro.core.window import OptimizationWindow
from repro.errors import (
    DeadlineExceededError, MpiError, PeerDeadError, SimulationError,
)
from repro.netsim.node import Node
from repro.netsim.profiles import NicProfile
from repro.sim import Event, Tracer
from repro.sim.core import Watchdog

__all__ = ["EngineParams", "EngineStats", "NmadEngine"]


@dataclass(frozen=True)
class EngineParams:
    """Engine cost model and protocol constants.

    The two scheduler costs realize the overhead sources of paper §5.1: an
    extra header per physical packet (``hdr``), and "extra operations on
    the critical path to inspect the 'ready list'" — ``pull_cost_us`` once
    per synthesized packet plus ``per_mtu_cost_us`` per MTU of data pushed
    through the optimizer's data path (calibrated per driver, which is why
    the large-message bandwidth deficit differs between MX and Quadrics in
    Figure 2).
    """

    hdr: HeaderSpec = field(default_factory=HeaderSpec)
    pull_cost_us: float = 0.25
    demux_packet_cost_us: float = 0.30
    demux_item_cost_us: float = 0.05
    per_mtu_cost_us: float = 0.10
    #: When a NIC is refilled from an *anticipated* (pre-synthesized) packet
    #: the optimization function already ran off the critical path; only a
    #: hand-over cost remains (paper 3.2, second dispatch policy).
    anticipated_pull_cost_us: float = 0.05
    #: Dispatch policy (paper 3.2): "on_idle" = synthesize when a NIC asks;
    #: "anticipate" = while all NICs are busy keep one ready-to-send packet
    #: prepared and re-feed it instantly; "backlog" = anticipate only once
    #: the window holds at least ``backlog_flush_threshold`` wraps.
    dispatch_policy: str = "on_idle"
    backlog_flush_threshold: int = 8
    per_mtu_cost_by_tech: tuple[tuple[str, float], ...] = (
        ("mx", 0.12),
        ("elan", 0.36),
    )
    rdv_chunk_bytes: int = 512 * 1024
    eager_copy_on_recv: bool = True
    #: Transport reliability (see :mod:`repro.core.reliability`).  The
    #: paper's engine targets reliable system-area networks and performs no
    #: retransmission, so ``"off"`` is the default and keeps every benchmark
    #: number unchanged; ``"ack"`` turns on the sliding-window
    #: ack/retransmit protocol with rail failover.
    reliability: str = "off"
    #: Initial retransmit timeout, doubled (``rel_backoff``) per retry.
    #: The string ``"auto"`` (requires ``reliability="ack"``) replaces the
    #: static constant with a measured one: per-peer Jacobson SRTT/RTTVAR
    #: estimation (see :mod:`repro.core.rttstat`) derives the RTO as
    #: ``rel_rto_headroom * (srtt + 4*rttvar)`` clamped into
    #: ``[rel_rto_floor_us, rel_rto_ceiling_us]``.
    rel_timeout_us: float | str = 200.0
    rel_backoff: float = 2.0
    #: Clamp bounds and queueing headroom for the ``"auto"`` RTO.  The
    #: ceiling doubles as the conservative pre-measurement RTO.
    rel_rto_floor_us: float = 50.0
    rel_rto_ceiling_us: float = 10_000.0
    rel_rto_headroom: float = 2.0
    #: Opt-in tail hedging (requires ``rel_timeout_us="auto"`` and >= 2
    #: rails): ``"tail"`` re-sends a frame on the *second-best* rail once
    #: it has been outstanding past a p99-ish quantile of that rail's
    #: observed RTT, while the original stays in flight — duplicate
    #: suppression absorbs whichever copy loses.  ``"off"`` (default)
    #: never hedges.
    rel_hedge: str = "off"
    #: Retransmissions per frame before the send fails with TransportError.
    rel_retry_budget: int = 8
    #: Reverse-silence window before a standalone ack frame is emitted.
    rel_ack_delay_us: float = 25.0
    #: Consecutive retransmit-timeouts that quarantine a rail (when another
    #: healthy rail exists).
    rel_quarantine_threshold: int = 3
    #: Half-open recovery: delay before a quarantined rail is re-probed.
    #: ``0`` derives 32x ``rel_timeout_us``; ``float("inf")`` disables
    #: probing (a quarantined rail then stays out for good, the pre-probe
    #: behaviour).  The delay doubles per re-quarantine of the same rail.
    rel_probe_after_us: float = 0.0
    #: Overload protection (see :mod:`repro.core.flowcontrol`).  The paper's
    #: engine assumes well-behaved peers and unbounded buffering, so
    #: ``"off"`` is the default and keeps every benchmark figure
    #: bit-identical; ``"credit"`` turns on receive-side credit flow control
    #: for eager traffic (rendezvous traffic is self-paced by its grant).
    flow_control: str = "off"
    #: Per-peer eager credit budget: payload bytes and wrap count a sender
    #: may have outstanding (unconsumed by the receiving application).
    credit_bytes: int = 256 * 1024
    credit_wraps: int = 256
    #: Reverse-silence window before a standalone credit frame carries a
    #: pending grant (grants otherwise piggyback on any reverse frame).
    credit_grant_delay_us: float = 25.0
    #: Base delay before a NACKed (receiver-refused) segment is resent;
    #: doubles per consecutive refusal from the same peer.
    nack_delay_us: float = 50.0
    #: Bounded collect layer: caps on the optimization window (0 = the
    #: paper's unbounded window).  When full, ``window_policy`` decides:
    #: ``"block"`` defers the submission FIFO until the window drains,
    #: ``"fail"`` raises :class:`~repro.errors.WindowFullError`.
    max_window_wraps: int = 0
    max_window_bytes: int = 0
    window_policy: str = "block"
    #: Receiver memory budget: cap on buffered unexpected eager payload
    #: bytes in the matcher (0 = unbounded).  Requires ``"credit"`` mode —
    #: overflow takes the NACK-and-resend path, which needs the credit
    #: machinery.
    max_unexpected_bytes: int = 0
    #: Progress watchdog period in virtual microseconds (0 = off).  While
    #: the engine has outstanding work, a progress token is sampled every
    #: interval; two consecutive unchanged samples raise
    #: :class:`~repro.errors.ProgressStallError` with a per-peer dump.
    watchdog_interval_us: float = 0.0
    #: Failure detection and session epochs (see
    #: :mod:`repro.core.sessions`).  The paper's engine assumes every peer
    #: stays alive, so ``"off"`` is the default and keeps every benchmark
    #: figure bit-identical; ``"epoch"`` stamps a session header on every
    #: frame, runs a hello/welcome handshake per peer, and confirms peers
    #: dead after ``hb_timeout_us`` of silence.
    sessions: str = "off"
    #: Heartbeat/monitor period: how often a watched peer's silence is
    #: re-examined and (when the line is otherwise idle) probed.
    hb_interval_us: float = 50.0
    #: Silence before a peer is confirmed dead; at half of this the peer
    #: becomes *suspected* (counted, traced, not yet acted on).
    hb_timeout_us: float = 500.0

    def __post_init__(self) -> None:
        if min(self.pull_cost_us, self.per_mtu_cost_us,
               self.demux_packet_cost_us, self.demux_item_cost_us,
               self.anticipated_pull_cost_us) < 0:
            raise ValueError("negative scheduler cost")
        if self.dispatch_policy not in ("on_idle", "anticipate", "backlog"):
            raise ValueError(
                f"unknown dispatch policy {self.dispatch_policy!r}; "
                "expected on_idle | anticipate | backlog"
            )
        if self.backlog_flush_threshold < 1:
            raise ValueError("backlog_flush_threshold must be >= 1")
        if self.rdv_chunk_bytes <= 0:
            raise ValueError("rendezvous chunk must be positive")
        if self.reliability not in ("off", "ack"):
            raise ValueError(
                f"unknown reliability mode {self.reliability!r}; "
                "expected off | ack"
            )
        if isinstance(self.rel_timeout_us, str):
            if self.rel_timeout_us != "auto":
                raise ValueError(
                    f"unknown rel_timeout_us {self.rel_timeout_us!r}; "
                    "expected a positive number or 'auto'"
                )
            if self.reliability != "ack":
                raise ValueError(
                    "rel_timeout_us='auto' needs reliability='ack': the "
                    "RTT estimator samples the ack machinery"
                )
        elif self.rel_timeout_us <= 0:
            raise ValueError("retransmit timeout must be positive")
        if self.rel_rto_floor_us <= 0:
            raise ValueError("RTO floor must be positive")
        if self.rel_rto_ceiling_us < self.rel_rto_floor_us:
            raise ValueError("RTO ceiling must be >= floor")
        if self.rel_rto_headroom < 1.0:
            raise ValueError("RTO headroom must be >= 1")
        if self.rel_hedge not in ("off", "tail"):
            raise ValueError(
                f"unknown rel_hedge mode {self.rel_hedge!r}; "
                "expected off | tail"
            )
        if self.rel_hedge == "tail" and self.rel_timeout_us != "auto":
            raise ValueError(
                "rel_hedge='tail' needs rel_timeout_us='auto': the hedge "
                "delay is a quantile of the measured RTT"
            )
        if self.rel_backoff < 1.0:
            raise ValueError("retransmit backoff must be >= 1")
        if self.rel_retry_budget < 1:
            raise ValueError("retry budget must be >= 1")
        if self.rel_ack_delay_us < 0:
            raise ValueError("negative ack delay")
        if self.rel_quarantine_threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        if not self.rel_probe_after_us >= 0:  # rejects negatives and NaN
            raise ValueError("rail probe delay must be >= 0")
        if self.flow_control not in ("off", "credit"):
            raise ValueError(
                f"unknown flow control mode {self.flow_control!r}; "
                "expected off | credit"
            )
        if self.credit_bytes < 1 or self.credit_wraps < 1:
            raise ValueError("credit budgets must be positive")
        if self.credit_grant_delay_us < 0:
            raise ValueError("negative credit grant delay")
        if self.nack_delay_us < 0:
            raise ValueError("negative nack delay")
        if self.max_window_wraps < 0 or self.max_window_bytes < 0:
            raise ValueError("negative window cap")
        if self.window_policy not in ("block", "fail"):
            raise ValueError(
                f"unknown window policy {self.window_policy!r}; "
                "expected block | fail"
            )
        if self.max_unexpected_bytes < 0:
            raise ValueError("negative unexpected-bytes budget")
        if self.max_unexpected_bytes and self.flow_control != "credit":
            raise ValueError(
                "max_unexpected_bytes needs flow_control='credit': a "
                "refused message is only recoverable through the "
                "NACK-and-resend path"
            )
        if self.watchdog_interval_us < 0:
            raise ValueError("negative watchdog interval")
        if self.sessions not in ("off", "epoch"):
            raise ValueError(
                f"unknown sessions mode {self.sessions!r}; "
                "expected off | epoch"
            )
        if self.hb_interval_us <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.hb_timeout_us < 2 * self.hb_interval_us:
            raise ValueError(
                "hb_timeout_us must be at least 2*hb_interval_us: a "
                "timeout shorter than two monitor ticks declares a peer "
                "dead before a single probe could round-trip"
            )

    @property
    def rel_adaptive(self) -> bool:
        """True when the retransmit timeout is measured, not configured."""
        return self.rel_timeout_us == "auto"

    def per_mtu_cost(self, profile: NicProfile) -> float:
        """Data-path inspection cost per MTU for this driver."""
        for tech, cost in self.per_mtu_cost_by_tech:
            if tech == profile.tech:
                return cost
        return self.per_mtu_cost_us


@dataclass
class EngineStats:
    """Counters the tests, benches and ablations read."""

    phys_packets: int = 0
    items_sent: int = 0
    aggregated_packets: int = 0    # physical packets carrying >= 2 segments
    aggregated_segments: int = 0   # segments travelling in such packets
    anticipated_hits: int = 0      # idle NICs refilled from a prepared packet
    eager_bytes: int = 0
    rdv_bytes: int = 0
    wire_bytes: int = 0
    recv_copies: int = 0
    recv_copy_bytes: int = 0
    # Reliability-layer counters (all zero in "off" mode).
    retransmits: int = 0
    duplicates_suppressed: int = 0
    failovers: int = 0
    rails_quarantined: int = 0
    rails_reprobed: int = 0        # half-open probes that lifted a quarantine
    acks_sent: int = 0
    corrupt_discards: int = 0
    transport_failures: int = 0
    # Flow-control counters (all zero in "off" mode).
    credit_stalls: int = 0         # destination transitions to credit-blocked
    window_full_events: int = 0    # submissions deferred or refused at the cap
    unexpected_overflows: int = 0  # eager arrivals refused by the matcher
    credits_granted: int = 0       # grants advertising newly released credit
    nacks_sent: int = 0            # refused segments bounced to their sender
    nack_resends: int = 0          # bounced segments re-entered the window
    # Session-layer counters (all zero in "off" mode).
    peers_suspected: int = 0       # peers that crossed half the hb timeout
    peers_dead: int = 0            # peers confirmed dead by the detector
    epochs_started: int = 0        # sessions established (first contact too)
    stale_frames_fenced: int = 0   # frames discarded for a stale incarnation
    heartbeats_sent: int = 0       # idle-path probes and probe replies
    # Partition-tolerance counters (all zero in "off" mode).
    peers_recovered: int = 0       # suspects that resumed contact (no teardown)
    frames_parked: int = 0         # outbound frames held while a peer was suspect
    # Adaptive-timing counters (all zero outside rel_timeout_us="auto",
    # except deadlines_expired which any deadline_us request can bump).
    rtt_samples: int = 0           # acks that fed the estimator (Karn-eligible)
    rto_backoffs: int = 0          # retransmits that doubled an adaptive RTO
    hedges_sent: int = 0           # tail re-sends on the second-best rail
    hedges_won: int = 0            # hedged frames whose ack beat the original
    deadlines_expired: int = 0     # requests failed by their deadline_us


class NmadEngine:
    """One node's NewMadeleine instance."""

    def __init__(
        self,
        node: Node,
        strategy: str | Strategy = "aggregation",
        params: EngineParams | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if not node.nics:
            raise MpiError(f"{node.name}: engine needs at least one NIC")
        self.node = node
        self.sim = node.sim
        self.node_id = node.node_id
        self.params = params if params is not None else EngineParams()
        self.tracer = tracer if tracer is not None else node.tracer
        self.strategy: Strategy = (
            create(strategy) if isinstance(strategy, str) else strategy
        )
        self.stats = EngineStats()
        credit_on = self.params.flow_control == "credit"
        # Wraps above the largest rendezvous threshold never travel eagerly
        # (any rail would announce them), so credit gating exempts them —
        # and a maximal eager segment must fit the budget, or it could
        # never be sent at all.
        exempt_floor = max(n.profile.rdv_threshold for n in node.nics)
        if credit_on and self.params.credit_bytes < exempt_floor:
            raise MpiError(
                f"{node.name}: credit_bytes={self.params.credit_bytes} is "
                f"smaller than the largest rendezvous threshold "
                f"({exempt_floor}B); a maximal eager segment could never "
                "be sent"
            )
        self.window = OptimizationWindow(
            n_rails=len(node.nics),
            exempt_floor=exempt_floor if credit_on else 0,
        )
        self.matcher = Matcher(self._on_match, tracer=self.tracer,
                               name=f"node{self.node_id}.matcher",
                               dedup=(self.params.reliability != "off"),
                               max_unexpected_bytes=
                                   self.params.max_unexpected_bytes,
                               on_refuse=self._on_refuse)
        self.rendezvous = RendezvousManager(self)
        self.collect = CollectLayer(self)
        # True once this engine's node crashed: every timer closure and
        # idle callback of the dead incarnation checks it and goes silent.
        self.halted = False
        # Adaptive timing (rel_timeout_us="auto"): one estimator shared by
        # the reliability RTO, the session failure detector, and the
        # flow-control pacing timers.  None in static mode — the layers
        # check for it, so static-mode behaviour is provably untouched.
        self.rtt: RttEstimator | None = None
        if self.params.rel_adaptive:
            self.rtt = RttEstimator(
                floor_us=self.params.rel_rto_floor_us,
                ceiling_us=self.params.rel_rto_ceiling_us,
                headroom=self.params.rel_rto_headroom,
            )
        # The session layer must exist before the reliability layer (which
        # caches it as its transmit gate) and the transfer layer (which
        # routes the receive funnel through it in "epoch" mode).
        self.sessions = SessionLayer(self)
        self.reliability = ReliabilityLayer(self)
        self.flowcontrol = FlowControlLayer(self)
        self.transfer = TransferLayer(self)
        if self.params.sessions == "epoch":
            node.add_crash_hook(self.halt)
        self.watchdog: Watchdog | None = None
        if self.params.watchdog_interval_us > 0:
            self.watchdog = Watchdog(
                self.sim, self.params.watchdog_interval_us,
                progress=self._progress_token,
                active=self._watchdog_active,
                diagnose=self._stall_report,
                name=f"node{self.node_id}.watchdog",
            )
        self.sim.add_deadlock_hint(self._deadlock_hint)

    # -- strategy management (paper abstract: dynamically extensible) -----
    def set_strategy(self, strategy: str | Strategy, **params: Any) -> None:
        """Swap the optimization function at runtime."""
        self.strategy = (
            create(strategy, **params) if isinstance(strategy, str) else strategy
        )
        self.transfer.kick()

    # -- native send/recv API ------------------------------------------------
    def isend(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        tag: int = 0,
        flow: int = 0,
        priority: int = 0,
        rail: int | None = None,
        allow_reorder: bool = True,
        depends_on: int | None = None,
        deadline_us: float | None = None,
    ) -> SendRequest:
        """Nonblocking send; returns a handle whose ``done`` event fires
        when the data has fully left this node.

        ``deadline_us`` bounds the virtual time the request may stay
        pending: on expiry a send whose data has not left the node is
        retracted exactly like :meth:`cancel` and fails with
        :class:`~repro.errors.DeadlineExceededError`; once the data is
        mid-flight the deadline lapses (too late, like MPI_Cancel on a
        matched send).
        """
        if self.sessions.is_dead(dest):
            raise PeerDeadError(
                f"node{self.node_id}: isend to node {dest}, a peer "
                "confirmed dead (revoke or shrink the communicator)"
            )
        wrap = self.collect.submit(
            dest, data, flow=flow, tag=tag, priority=priority, rail=rail,
            allow_reorder=allow_reorder, depends_on=depends_on,
        )
        assert wrap.completion is not None
        req = SendRequest(wrap, wrap.completion)
        if deadline_us is not None:
            self._arm_deadline(req, deadline_us)
        return req

    def irecv(
        self,
        src: int = ANY,
        tag: int = ANY,
        flow: int = 0,
        nbytes: int | None = None,
        deadline_us: float | None = None,
    ) -> RecvRequest:
        """Nonblocking receive; ``nbytes`` bounds acceptable message size.

        ``deadline_us`` bounds the virtual time the receive may stay
        unmatched: on expiry it is unposted and fails with
        :class:`~repro.errors.DeadlineExceededError`; a receive already
        matched (data landing) completes normally.
        """
        if src != ANY and self.sessions.is_dead(src):
            raise PeerDeadError(
                f"node{self.node_id}: irecv from node {src}, a peer "
                "confirmed dead (revoke or shrink the communicator)"
            )
        req = RecvRequest(
            src=src, flow=flow, tag=tag, capacity=nbytes,
            done=self.sim.event(name=f"recv:{src}/{flow}/{tag}"),
            posted_at=self.sim.now,
        )
        self.matcher.post(req)
        if src != ANY:
            # A sourced receive is a liveness interest: watch the peer so
            # its death fails this request instead of hanging it forever.
            self.sessions.note_interest(src)
        if deadline_us is not None:
            self._arm_deadline(req, deadline_us)
        self.poke_watchdog()
        return req

    # -- per-request deadlines -----------------------------------------------
    def _arm_deadline(
        self, req: SendRequest | RecvRequest, deadline_us: float
    ) -> None:
        if deadline_us <= 0:
            raise MpiError(
                f"node{self.node_id}: deadline_us must be positive, "
                f"got {deadline_us}"
            )
        self.sim.schedule(deadline_us,
                          lambda: self._deadline_fire(req, deadline_us))

    def _deadline_fire(
        self, req: SendRequest | RecvRequest, deadline_us: float
    ) -> None:
        # A completed request (either way) or a halted engine makes the
        # timer a no-op — deadlines never fail anything retroactively.
        if self.halted or req.done.triggered:
            return
        if isinstance(req, RecvRequest):
            if not self.matcher.unpost(req, now=self.sim.now):
                return  # already matched: the data is landing, let it
            err = DeadlineExceededError(
                f"node{self.node_id}: receive (src={req.src} "
                f"flow={req.flow} tag={req.tag}) unmatched after its "
                f"{deadline_us:g}us deadline"
            )
            self.stats.deadlines_expired += 1
            req.done.fail(err)
            req.done.defuse()
            self.tracer.emit(self.sim.now, f"node{self.node_id}.engine",
                             "deadline_expired", side="recv", tag=req.tag)
            return
        err = DeadlineExceededError(
            f"node{self.node_id}: send {req.wrap!r} still pending after "
            f"its {deadline_us:g}us deadline"
        )
        if self._retract_send(req.wrap, err, trace="deadline_expired"):
            self.stats.deadlines_expired += 1

    def cancel(self, request: SendRequest) -> bool:
        """Cancel a send that has not been scheduled yet.

        A unique capability of the decoupled design: until a strategy
        commits a wrap to a physical packet *that a NIC accepted*, the data
        has not left the node, so cancellation can still succeed.  That
        covers a wrap sitting in the optimization window and a wrap held in
        an anticipated (pre-synthesized, paper §3.2) packet — the latter is
        unwound back into the window first.  Returns ``True`` in both cases
        (the request's completion then *fails* with :class:`MpiError` so
        waiters are not left hanging), ``False`` if the data already left
        or is mid-flight (rendezvous announced) — too late, like MPI_Cancel
        on a matched send.

        Because the wrap already consumed a sequence number in its
        (dest, flow) stream, a tiny tombstone record travels in its place
        so the receiver's in-order machinery never stalls on the hole.
        """
        wrap = request.wrap
        return self._retract_send(
            wrap, MpiError(f"send cancelled: {wrap!r}"), trace="cancel")

    def _retract_send(
        self, wrap: PacketWrap, err: MpiError, trace: str
    ) -> bool:
        """Pull an unscheduled wrap back out of the engine and fail it.

        The shared back-out machinery of :meth:`cancel` and the
        per-request deadline path: a deferred submission is simply
        dropped; a wrap in the optimization window (or inside an
        anticipated packet, unwound first) is taken out and replaced by a
        tombstone for its consumed sequence number.  Returns ``False`` —
        and fails nothing — when the data already left the node.
        """
        from repro.errors import StrategyError

        if self.collect.cancel_deferred(wrap):
            # Never admitted: no sequence number consumed, no tombstone due.
            if wrap.completion is not None and not wrap.completion.triggered:
                wrap.completion.fail(err)
                wrap.completion.defuse()
            self.tracer.emit(self.sim.now, f"node{self.node_id}.collect",
                             trace, wrap=wrap.wrap_id)
            return True
        try:
            self.window.take(wrap)
        except StrategyError:
            if not self.transfer.uncommit_anticipated(wrap):
                return False
            # The wrap (and any packet-mates) are back in the window; the
            # tombstone submission below re-kicks scheduling for the rest.
            self.window.take(wrap)
        if wrap.completion is not None and not wrap.completion.triggered:
            wrap.completion.fail(err)
            wrap.completion.defuse()
        tombstone = CancelItem(src=self.node_id, flow=wrap.flow,
                               tag=wrap.tag, seq=wrap.seq)
        self.collect.submit_control(dest=wrap.dest, item=tombstone)
        self.tracer.emit(self.sim.now, f"node{self.node_id}.collect",
                         trace, wrap=wrap.wrap_id)
        return True

    # -- blocking helpers for simulator processes -----------------------------
    def send(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        **kwargs: Any,
    ) -> Generator[Event, None, SendRequest]:
        """Process-style blocking send: ``yield from engine.send(...)``."""
        req = self.isend(dest, data, **kwargs)
        yield req.done
        return req

    def recv(
        self, src: int = ANY, tag: int = ANY, **kwargs: Any
    ) -> Generator[Event, None, RecvRequest]:
        """Process-style blocking receive; returns the completed request."""
        req = self.irecv(src=src, tag=tag, **kwargs)
        yield req.done
        return req

    # -- match dispatch -----------------------------------------------------------
    def _on_match(self, inc: Incoming, req: RecvRequest) -> None:
        if self.flowcontrol.active and isinstance(inc.item, SegItem):
            # The eager bytes vacate the receive buffer on the match — every
            # admitted segment funnels through here exactly once (whether it
            # matched a posted receive or waited unexpected), so the credit
            # releases exactly once, truncation failures included.
            self.flowcontrol.release(inc.src, inc.item.data.nbytes)
        if req.capacity is not None and inc.nbytes > req.capacity:
            err = MpiError(
                f"node{self.node_id}: truncation — {inc.nbytes}B message "
                f"(src={inc.src} flow={inc.flow} tag={inc.tag}) into a "
                f"{req.capacity}B receive"
            )
            # Defused like cancel() and TransferLayer._plan_failed: the
            # non-raising failed/error API must stay usable — an application
            # polling via test() would otherwise crash at run() end with the
            # unobserved-failure re-raise despite having handled the error.
            req.done.fail(err)
            req.done.defuse()
            return
        if isinstance(inc.item, RdvReqItem):
            self.rendezvous.grant(inc.item, req)
            return
        item = inc.item
        assert isinstance(item, SegItem)
        if self.params.eager_copy_on_recv and item.data.nbytes > 0:
            # Eager data lands in a driver buffer and is copied out to the
            # user buffer; the request completes after the copy, and copies
            # serialize on the host memory engine.
            delay = self.node.serialize_copy(
                self.node.memory.copy_time(item.data.nbytes))
            self.stats.recv_copies += 1
            self.stats.recv_copy_bytes += item.data.nbytes
            self.sim.schedule(
                delay,
                lambda: req.finish(item.data, src=inc.src, tag=inc.tag),
            )
        else:
            req.finish(item.data, src=inc.src, tag=inc.tag)

    def _on_refuse(self, inc: Incoming) -> None:
        """The matcher's unexpected-bytes budget refused an eager arrival."""
        self.stats.unexpected_overflows += 1
        self.flowcontrol.on_local_refuse(inc)

    # -- crash / drain lifecycle ---------------------------------------------
    def halt(self) -> None:
        """Silence this engine: its node crashed (fail-stop).

        Registered as a node crash hook in ``sessions="epoch"`` mode.  A
        dead process must not tick into its successor's incarnation, so
        every virtual-time timer of this engine — retransmit and delayed-ack
        timers, credit grant and NACK-resend timers, session monitors, the
        progress watchdog — is invalidated through its generation counter.
        No completion callbacks run: from the dead node's perspective the
        world simply stops, exactly like a real crash.
        """
        if self.halted:
            return
        self.halted = True
        if self.watchdog is not None:
            self.watchdog.disarm()
        self.sessions.halt()
        self.reliability.halt()
        self.flowcontrol.halt()
        self.tracer.emit(self.sim.now, f"node{self.node_id}.engine", "halt")

    def quiesce(
        self, poll_us: float = 5.0, timeout_us: float = 1_000_000.0
    ) -> Generator[Event, None, None]:
        """Process-style drain: block until the engine holds no deferred
        work (``yield from engine.quiesce()``).

        The clean-teardown counterpart of crash recovery: an application
        that learned of a peer's death (:class:`PeerDeadError`,
        ``Comm.shrink``) drains its engine before carrying on, so no
        half-sent aggregate or pending grant leaks into the next phase.
        Raises :class:`~repro.errors.SimulationError` after ``timeout_us``.
        """
        deadline = self.sim.now + timeout_us
        while not self.quiesced():
            if self.sim.now >= deadline:
                raise SimulationError(
                    f"node{self.node_id}: quiesce() still not drained "
                    f"after {timeout_us:g}us"
                )
            yield self.sim.timeout(poll_us)

    # -- progress watchdog ---------------------------------------------------
    def poke_watchdog(self) -> None:
        """(Re)arm the watchdog on new work; no-op when it is disabled."""
        wd = self.watchdog
        if wd is not None:
            wd.arm()

    def _progress_token(self) -> object:
        """Changes whenever the engine makes any observable forward progress:
        a frame leaves or lands, a message matches, or credit moves."""
        stats = self.stats
        return (
            stats.phys_packets, stats.wire_bytes, stats.recv_copies,
            stats.credits_granted, stats.nack_resends,
            # Session transitions are progress (a declared death *unblocks*
            # waiters); heartbeats_sent deliberately is not — a probe loop
            # towards a wedged peer must not mask the stall.
            stats.peers_dead, stats.epochs_started, stats.stale_frames_fenced,
            # Parking and recovery are progress too: a healing partition
            # must not read as a stall while parked traffic drains.
            stats.peers_recovered, stats.frames_parked,
            self.matcher.delivered, self.matcher.n_posted,
            self.rendezvous.n_pending, self.rendezvous.n_granted,
        )

    def _watchdog_active(self) -> bool:
        """Work is outstanding, so a frozen token means a stall.

        Flow-control transients (a delayed grant advertisement, a scheduled
        NACK resend) are deliberately excluded: they are simulator timers
        that always fire on their own, so they cannot be stall symptoms —
        counting them would trip the watchdog on a healthy receiver whose
        only pending "work" is a coalesced credit grant.  When a resend
        fires it re-arms the watchdog via :meth:`poke_watchdog`.
        """
        return (
            self.matcher.n_posted > 0
            or not self.window.empty
            or self.transfer.has_anticipated
            or self.rendezvous.n_pending > 0
            or self.rendezvous.n_granted > 0
            or self.rendezvous.n_incoming > 0
            or self.matcher.n_parked > 0
            or not self.reliability.quiesced
            or self.collect.n_deferred > 0
            or not self.sessions.quiesced
        )

    def _stall_report(self) -> str:
        """Per-peer credit/window/backlog dump for ProgressStallError."""
        win = self.window
        m = self.matcher
        peers: dict[int, None] = {}
        for d in win.dests():
            peers[d] = None
        for d in self.flowcontrol.known_peers():
            peers[d] = None
        lines = [f"node{self.node_id}: no engine progress "
                 f"(strategy={self.strategy.describe()})"]
        for peer in sorted(peers):
            blocked = " [credit-blocked]" if win.is_blocked(peer) else ""
            session = ""
            if self.sessions.active:
                session = f"; {self.sessions.describe_peer(peer)}"
            lines.append(
                f"  peer {peer}: window backlog={win.backlog(peer)} wraps/"
                f"{win.backlog_bytes(peer)}B{blocked}; "
                f"{self.flowcontrol.describe_peer(peer)}{session}"
            )
        lines.append(
            f"  collect: deferred={self.collect.n_deferred} submissions"
        )
        lines.append(
            f"  matcher: posted={m.n_posted} parked={m.n_parked} "
            f"unexpected={m.n_unexpected} ({m.unexpected_bytes}B buffered, "
            f"{m.refused_total} refused)"
        )
        lines.append(
            f"  rendezvous: pending={self.rendezvous.n_pending} "
            f"granted={self.rendezvous.n_granted} "
            f"incoming={self.rendezvous.n_incoming}"
        )
        return "\n".join(lines)

    # -- introspection ------------------------------------------------------------
    def quiesced(self) -> bool:
        """True when the engine holds no deferred work (end-of-test check)."""
        return (
            self.window.empty
            and not self.transfer.has_anticipated
            and self.rendezvous.n_pending == 0
            and self.rendezvous.n_granted == 0
            and self.rendezvous.n_incoming == 0
            and self.matcher.n_parked == 0
            and self.reliability.quiesced
            and self.flowcontrol.quiesced
            and self.collect.n_deferred == 0
            and self.sessions.quiesced
        )

    def _deadlock_hint(self) -> str | None:
        """Engine-specific diagnosis appended to the kernel's deadlock error.

        A dropped frame is invisible to the engines themselves (both sides
        can be fully quiesced while the application hangs), so the stall
        signal is an outstanding posted receive or unquiesced state.
        """
        if self.halted:
            # A crashed node's engine is not stuck; it is dead.  The live
            # side's own hint (dead peers, sessions off) explains the hang.
            return None
        dead = self.sessions.dead_peers()
        if dead:
            return (
                f"node{self.node_id}: peer(s) {dead} confirmed dead — "
                "requests towards them failed with PeerDeadError; "
                "revoke/shrink the communicator to move on"
            )
        if self.stats.transport_failures:
            return (
                f"node{self.node_id}: retry budget exhausted on "
                f"{self.stats.transport_failures} frame(s) — the affected "
                "requests failed with TransportError"
            )
        if self.matcher.n_posted == 0 and self.quiesced():
            return None
        if self.flowcontrol.active:
            blocked = [p for p in self.flowcontrol.known_peers()
                       if self.window.is_blocked(p)]
            if blocked:
                return (
                    f"node{self.node_id}: credit-blocked towards peer(s) "
                    f"{blocked} — the receiver never released credit "
                    "(application not consuming?)"
                )
        if self.params.reliability == "off":
            return (
                f"node{self.node_id}: reliability='off' — no retransmission "
                "(paper mode); a lost or corrupted frame stalls its stream "
                "forever"
            )
        return (f"node{self.node_id}: reliability='ack' still awaiting "
                "delivery")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NmadEngine node{self.node_id} strategy={self.strategy.describe()} "
            f"rails={len(self.node.nics)}>"
        )

"""Send and receive request handles.

These are the engine-native equivalents of MPI nonblocking requests: the
application keeps the handle, the engine completes it.  MAD-MPI's
``MPI_Isend``/``MPI_Irecv``/``MPI_Wait``/``MPI_Test`` map one-to-one onto
these (paper §3.4: "these four operations being directly mapped to the
equivalent operations of NewMadeleine").
"""

from __future__ import annotations


from repro.core.data import SegmentData
from repro.core.packet import PacketWrap
from repro.errors import MpiError
from repro.sim import Event

__all__ = ["ANY", "SendRequest", "RecvRequest"]

#: Wildcard for source or tag matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY = -1


class SendRequest:
    """Handle on an in-progress send.

    Completion normally means the data left this node; with the
    reliability layer active it means the peer acknowledged delivery.  A
    request may alternatively *fail* (cancellation, or a
    :class:`~repro.errors.TransportError` after the retransmit budget is
    exhausted) — ``failed``/``error`` expose that state without raising,
    while waiting on ``done`` raises the error into the waiter.
    """

    __slots__ = ("wrap", "done")

    def __init__(self, wrap: PacketWrap, done: Event) -> None:
        self.wrap = wrap
        self.done = done

    @property
    def complete(self) -> bool:
        """True once the data has left this node (nonblocking test)."""
        return self.done.triggered

    @property
    def failed(self) -> bool:
        """True when the request ended in an error instead of completing."""
        return self.done.triggered and not self.done.ok

    @property
    def error(self) -> BaseException | None:
        """The failure exception, or ``None`` (nonblocking inspection)."""
        return self.done.exception if self.failed else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("failed" if self.failed
                 else "done" if self.complete else "pending")
        return f"<SendRequest {self.wrap!r} {state}>"


class RecvRequest:
    """Handle on a posted receive.

    ``src``/``tag`` may be :data:`ANY`.  ``capacity`` bounds the acceptable
    message length (``None`` = unbounded); a longer incoming message fails
    the request with a truncation error, like MPI_ERR_TRUNCATE.

    After completion, ``data``, ``actual_src``, ``actual_tag`` and
    ``actual_len`` describe the received message (the MPI_Status analogue).
    """

    __slots__ = (
        "src", "flow", "tag", "capacity", "done",
        "data", "actual_src", "actual_tag", "actual_len", "posted_at",
    )

    def __init__(
        self,
        src: int,
        flow: int,
        tag: int,
        capacity: int | None,
        done: Event,
        posted_at: float = 0.0,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise MpiError(f"negative receive capacity {capacity}")
        self.src = src
        self.flow = flow
        self.tag = tag
        self.capacity = capacity
        self.done = done
        self.posted_at = posted_at
        self.data: SegmentData | None = None
        self.actual_src: int | None = None
        self.actual_tag: int | None = None
        self.actual_len: int | None = None

    @property
    def complete(self) -> bool:
        """True once matched data has fully landed (nonblocking test)."""
        return self.done.triggered

    @property
    def failed(self) -> bool:
        """True when the receive ended in an error (e.g. truncation)."""
        return self.done.triggered and not self.done.ok

    @property
    def error(self) -> BaseException | None:
        """The failure exception, or ``None`` (nonblocking inspection)."""
        return self.done.exception if self.failed else None

    def matches(self, src: int, tag: int) -> bool:
        """Does an incoming (src, tag) satisfy this posted receive?"""
        return (self.src in (ANY, src)) and (self.tag in (ANY, tag))

    def finish(self, data: SegmentData, src: int, tag: int) -> None:
        """Record the message and trigger completion (engine-internal)."""
        self.data = data
        self.actual_src = src
        self.actual_tag = tag
        self.actual_len = data.nbytes
        self.done.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return (
            f"<RecvRequest src={self.src} flow={self.flow} tag={self.tag} "
            f"{state}>"
        )

"""The optimization window.

Paper §3.1: "While the NICs are busy, NewMadeleine keeps accumulating
packets in its optimization window.  As soon as a NIC becomes idle, the
optimization window is analyzed so as to create a new ready-to-send packet."

The window holds submitted :class:`~repro.core.packet.PacketWrap` objects on
two kinds of lists (paper §3.3): a **common list** whose wraps may leave on
any rail ("for automatized load-balancing among all the NICs, possibly from
heterogeneous technologies"), and per-rail **dedicated lists** for wraps the
application pinned to a specific network.

It also holds the queue of *granted* rendezvous transfers whose bulk chunks
are ready to be streamed (those need no optimization decision — any idle
capable NIC pulls the next chunk).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from repro.core.packet import PacketWrap
from repro.errors import StrategyError

__all__ = ["OptimizationWindow"]


class OptimizationWindow:
    """Accumulates wraps between submission and scheduling."""

    def __init__(self, n_rails: int) -> None:
        if n_rails < 1:
            raise ValueError("window needs at least one rail")
        self.n_rails = n_rails
        self._common: deque[PacketWrap] = deque()
        self._dedicated: list[deque[PacketWrap]] = [deque() for _ in range(n_rails)]
        # Peak-occupancy statistics for the ablation benches.
        self.peak_wraps = 0
        self.total_submitted = 0

    # -- submission -----------------------------------------------------------
    def submit(self, wrap: PacketWrap) -> None:
        """Insert a wrap on its list (dedicated if ``wrap.rail`` is pinned)."""
        if wrap.rail is not None:
            if not 0 <= wrap.rail < self.n_rails:
                raise StrategyError(
                    f"wrap pinned to rail {wrap.rail}, window has "
                    f"{self.n_rails} rails"
                )
            self._dedicated[wrap.rail].append(wrap)
        else:
            self._common.append(wrap)
        self.total_submitted += 1
        occupancy = len(self)
        if occupancy > self.peak_wraps:
            self.peak_wraps = occupancy

    # -- inspection (strategy input, paper §3.2) -------------------------------
    def eligible(self, rail: int) -> Iterator[PacketWrap]:
        """Wraps a NIC on ``rail`` may send, in submission order.

        Dedicated wraps for the rail come first (they can go nowhere else),
        then the common list.
        """
        if not 0 <= rail < self.n_rails:
            raise StrategyError(f"no rail {rail} in window")
        yield from self._dedicated[rail]
        yield from self._common

    def __len__(self) -> int:
        return len(self._common) + sum(len(d) for d in self._dedicated)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def pending_bytes(self, rail: Optional[int] = None) -> int:
        """Total payload bytes waiting (for one rail's view, or globally)."""
        if rail is None:
            wraps: Iterator[PacketWrap] = iter(self._common)
            total = sum(w.length for w in wraps)
            total += sum(w.length for d in self._dedicated for w in d)
            return total
        return sum(w.length for w in self.eligible(rail))

    def backlog(self, dest: Optional[int] = None) -> int:
        """Number of waiting wraps (optionally only towards ``dest``)."""
        if dest is None:
            return len(self)
        return sum(1 for w in self._all() if w.dest == dest)

    def _all(self) -> Iterator[PacketWrap]:
        yield from self._common
        for d in self._dedicated:
            yield from d

    # -- removal (strategy commit) ----------------------------------------------
    def take(self, wrap: PacketWrap) -> None:
        """Remove a wrap the strategy committed to a physical packet.

        Raises :class:`StrategyError` if the wrap is not in the window —
        strategies may only send what actually exists.
        """
        target = self._dedicated[wrap.rail] if wrap.rail is not None else self._common
        try:
            target.remove(wrap)
        except ValueError:
            raise StrategyError(
                f"strategy tried to take {wrap!r} which is not in the window"
            ) from None

    def drain_matching(self, pred: Callable[[PacketWrap], bool]) -> list[PacketWrap]:
        """Remove and return every wrap satisfying ``pred`` (error paths)."""
        taken = [w for w in self._all() if pred(w)]
        for w in taken:
            self.take(w)
        return taken

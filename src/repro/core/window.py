"""The optimization window.

Paper §3.1: "While the NICs are busy, NewMadeleine keeps accumulating
packets in its optimization window.  As soon as a NIC becomes idle, the
optimization window is analyzed so as to create a new ready-to-send packet."

The window holds submitted :class:`~repro.core.packet.PacketWrap` objects on
two kinds of lists (paper §3.3): a **common list** whose wraps may leave on
any rail ("for automatized load-balancing among all the NICs, possibly from
heterogeneous technologies"), and per-rail **dedicated lists** for wraps the
application pinned to a specific network.

Every operation on the strategy pull path is O(1) or O(answer size): the
lists are insertion-ordered dicts keyed by ``wrap_id`` so :meth:`take` is a
hash delete instead of a linear scan, and byte/wrap totals — global, per
rail, per destination — are maintained incrementally on submit/take rather
than recomputed.  The paper's pitch (§5.1) is that the scheduler adds only a
tiny constant cost per NIC refill; with linear accounting that constant
would silently grow with backlog depth, i.e. exactly when the window is
doing its job.  A per-destination index lets strategies enumerate the wraps
towards one node without scanning every other node's traffic.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.packet import PacketWrap
from repro.errors import StrategyError

__all__ = ["OptimizationWindow"]


class OptimizationWindow:
    """Accumulates wraps between submission and scheduling."""

    def __init__(self, n_rails: int, exempt_floor: int = 0) -> None:
        if n_rails < 1:
            raise ValueError("window needs at least one rail")
        if exempt_floor < 0:
            raise ValueError("negative exempt floor")
        self.n_rails = n_rails
        # Insertion-ordered storage: wrap_id -> wrap.  Python dicts preserve
        # submission order and delete in O(1), which is what the old
        # deque.remove() take path could not do.
        self._common: dict[int, PacketWrap] = {}
        self._dedicated: list[dict[int, PacketWrap]] = [
            {} for _ in range(n_rails)
        ]
        # Per-destination index over *all* lists: dest -> {wrap_id: wrap}.
        self._by_dest: dict[int, dict[int, PacketWrap]] = {}
        # Incremental counters (kept exactly in sync by _insert/_remove; the
        # property tests compare them against brute-force recomputation).
        self._count = 0
        self._total_bytes = 0
        self._common_bytes = 0
        self._dedicated_bytes = [0] * n_rails
        self._dest_bytes: dict[int, int] = {}
        # Credit-gating state (flow_control="credit"): destinations the
        # flow-control layer blocked, and — only when a nonzero
        # ``exempt_floor`` enables gating — a per-dest count of gate-exempt
        # wraps (control records, and wraps above the floor, which travel by
        # rendezvous and pace themselves through its grant).
        self._exempt_floor = exempt_floor
        self._gated = exempt_floor > 0
        self._blocked_dests: set[int] = set()
        self._dest_exempt: dict[int, int] = {}
        # Peak-occupancy statistics for the ablation benches.
        self.peak_wraps = 0
        self.peak_bytes = 0
        self.total_submitted = 0
        #: Fired after every :meth:`take` — the bounded collect layer hooks
        #: this to admit deferred submissions as soon as space frees up.
        self.on_space: Callable[[], None] | None = None

    # -- submission -----------------------------------------------------------
    def submit(self, wrap: PacketWrap) -> None:
        """Insert a wrap on its list (dedicated if ``wrap.rail`` is pinned)."""
        self._insert(wrap)
        self.total_submitted += 1
        if self._count > self.peak_wraps:
            self.peak_wraps = self._count
        if self._total_bytes > self.peak_bytes:
            self.peak_bytes = self._total_bytes

    def restore(self, wrap: PacketWrap) -> None:
        """Re-insert a wrap that was taken but never left the node.

        Used when an *anticipated* (pre-synthesized but not yet handed to a
        NIC) packet is unwound, e.g. because one of its wraps was cancelled.
        Unlike :meth:`submit` this does not count as a new submission.
        """
        self._insert(wrap)
        if self._count > self.peak_wraps:
            self.peak_wraps = self._count
        if self._total_bytes > self.peak_bytes:
            self.peak_bytes = self._total_bytes

    def _insert(self, wrap: PacketWrap) -> None:
        rail = wrap.rail
        if rail is not None:
            if not 0 <= rail < self.n_rails:
                raise StrategyError(
                    f"wrap pinned to rail {rail}, window has "
                    f"{self.n_rails} rails"
                )
            target = self._dedicated[rail]
        else:
            target = self._common
        wid = wrap.wrap_id
        if wid in target:
            raise StrategyError(f"{wrap!r} is already in the window")
        target[wid] = wrap
        length = wrap.length
        dest = wrap.dest
        self._count += 1
        self._total_bytes += length
        if rail is None:
            self._common_bytes += length
        else:
            self._dedicated_bytes[rail] += length
        by_dest = self._by_dest.get(dest)
        if by_dest is None:
            by_dest = self._by_dest[dest] = {}
            self._dest_bytes[dest] = 0
        by_dest[wid] = wrap
        self._dest_bytes[dest] += length
        if self._gated and self._is_exempt(wrap):
            self._dest_exempt[dest] = self._dest_exempt.get(dest, 0) + 1

    # -- credit gating (flow_control="credit") ---------------------------------
    def _is_exempt(self, wrap: PacketWrap) -> bool:
        """Control records, rendezvous-bound wraps and NACK resends bypass
        credit gating.  A resend must always be electable: it fills the
        sequence hole its refusal opened, and everything behind the hole —
        including the deliveries whose matches release credit — waits on it.
        """
        return (wrap.is_control or wrap.credit_exempt
                or wrap.length > self._exempt_floor)

    def block_dest(self, dest: int) -> None:
        """Stop electing credit-gated wraps towards ``dest``."""
        self._blocked_dests.add(dest)

    def unblock_dest(self, dest: int) -> None:
        self._blocked_dests.discard(dest)

    def is_blocked(self, dest: int) -> bool:
        return dest in self._blocked_dests

    # -- inspection (strategy input, paper §3.2) -------------------------------
    def eligible(self, rail: int) -> Iterator[PacketWrap]:
        """Wraps a NIC on ``rail`` may send, in submission order.

        Dedicated wraps for the rail come first (they can go nowhere else),
        then the common list.  Credit-gated wraps towards a blocked
        destination are withheld; with no destination blocked — always true
        in the default mode — the scan adds a single set check.
        """
        if not 0 <= rail < self.n_rails:
            raise StrategyError(f"no rail {rail} in window")
        blocked = self._blocked_dests
        if not blocked:
            yield from self._dedicated[rail].values()
            yield from self._common.values()
            return
        for wrap in self._dedicated[rail].values():
            if wrap.dest in blocked and not self._is_exempt(wrap):
                continue
            yield wrap
        for wrap in self._common.values():
            if wrap.dest in blocked and not self._is_exempt(wrap):
                continue
            yield wrap

    def eligible_for_dest(self, rail: int, dest: int) -> list[PacketWrap]:
        """Wraps towards ``dest`` a NIC on ``rail`` may send.

        Same ordering contract as :meth:`eligible` (dedicated first, then
        common, each in submission order) but computed from the
        per-destination index in O(wraps towards ``dest``) — a strategy
        synthesizing a point-to-point packet never scans the traffic queued
        for other nodes.  A credit-blocked destination with no exempt wraps
        answers ``[]`` in O(1) from the exempt counter.
        """
        if not 0 <= rail < self.n_rails:
            raise StrategyError(f"no rail {rail} in window")
        by_dest = self._by_dest.get(dest)
        if not by_dest:
            return []
        blocked = dest in self._blocked_dests
        if blocked and not self._dest_exempt.get(dest):
            return []
        pinned: list[PacketWrap] = []
        common: list[PacketWrap] = []
        for wrap in by_dest.values():
            if blocked and not self._is_exempt(wrap):
                continue
            if wrap.rail is None:
                common.append(wrap)
            elif wrap.rail == rail:
                pinned.append(wrap)
        pinned.extend(common)
        return pinned

    def dests(self) -> Iterator[int]:
        """Destinations with at least one waiting wrap."""
        return iter(self._by_dest)

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    def pending_bytes(self, rail: int | None = None) -> int:
        """Total payload bytes waiting (for one rail's view, or globally)."""
        if rail is None:
            return self._total_bytes
        if not 0 <= rail < self.n_rails:
            raise StrategyError(f"no rail {rail} in window")
        return self._common_bytes + self._dedicated_bytes[rail]

    def backlog(self, dest: int | None = None) -> int:
        """Number of waiting wraps (optionally only towards ``dest``)."""
        if dest is None:
            return self._count
        by_dest = self._by_dest.get(dest)
        return len(by_dest) if by_dest is not None else 0

    def backlog_bytes(self, dest: int) -> int:
        """Payload bytes waiting towards ``dest``."""
        return self._dest_bytes.get(dest, 0)

    def _all(self) -> Iterator[PacketWrap]:
        yield from self._common.values()
        for d in self._dedicated:
            yield from d.values()

    # -- removal (strategy commit) ----------------------------------------------
    def take(self, wrap: PacketWrap) -> None:
        """Remove a wrap the strategy committed to a physical packet.

        Raises :class:`StrategyError` if the wrap is not in the window —
        strategies may only send what actually exists.
        """
        rail = wrap.rail
        if rail is not None and not 0 <= rail < self.n_rails:
            raise StrategyError(
                f"strategy tried to take {wrap!r} which is not in the window"
            )
        target = self._dedicated[rail] if rail is not None else self._common
        wid = wrap.wrap_id
        if target.pop(wid, None) is None:
            raise StrategyError(
                f"strategy tried to take {wrap!r} which is not in the window"
            )
        length = wrap.length
        dest = wrap.dest
        self._count -= 1
        self._total_bytes -= length
        if rail is None:
            self._common_bytes -= length
        else:
            self._dedicated_bytes[rail] -= length
        by_dest = self._by_dest[dest]
        del by_dest[wid]
        if by_dest:
            self._dest_bytes[dest] -= length
        else:
            del self._by_dest[dest]
            del self._dest_bytes[dest]
        if self._gated and self._is_exempt(wrap):
            left = self._dest_exempt[dest] - 1
            if left:
                self._dest_exempt[dest] = left
            else:
                del self._dest_exempt[dest]
        if self.on_space is not None:
            self.on_space()

    def drain_matching(self, pred: Callable[[PacketWrap], bool]) -> list[PacketWrap]:
        """Remove and return every wrap satisfying ``pred`` (error paths)."""
        taken = [w for w in self._all() if pred(w)]
        for w in taken:
            self.take(w)
        return taken

"""Receive-side demultiplexing: in-order delivery plus request matching.

The engine may *physically* reorder packets — aggregate across flows, send
out-of-order, split across rails (paper §7) — so the receive side restores
logical order from the metadata the collect layer attached: sender id, flow
tag and sequence number (paper §3.3).  Two mechanisms compose:

1. **Sequence parking**: incoming message descriptors for one ``(src,
   flow)`` stream enter matching strictly in sequence order; early arrivals
   park until the gap fills.  This is what makes physical reordering safe.

2. **MPI-style matching**: in-order descriptors match against posted
   receives (first posted match wins, wildcards allowed) or join the
   unexpected queue until a matching receive is posted.

Descriptors are either eager segments (data is already here) or rendezvous
announcements (data follows after the grant); what happens on a match is
the engine's business, injected as the ``on_match`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.packet import RdvReqItem, SegItem
from repro.core.requests import RecvRequest
from repro.errors import ProtocolError
from repro.sim import Event, Tracer

__all__ = ["Incoming", "Matcher"]


@dataclass
class Incoming:
    """One logical incoming message descriptor, pre-matching."""

    src: int
    flow: int
    tag: int
    seq: int
    nbytes: int
    item: SegItem | RdvReqItem | None
    arrived_at: float = 0.0
    #: Tombstone of a cancelled send: consumes its sequence slot, matches
    #: nothing (see :class:`repro.core.packet.CancelItem`).
    is_skip: bool = False

    @property
    def is_rdv(self) -> bool:
        return isinstance(self.item, RdvReqItem)


class Matcher:
    """Orders, matches, and queues incoming message descriptors."""

    def __init__(
        self,
        on_match: Callable[[Incoming, RecvRequest], None],
        tracer: Tracer | None = None,
        name: str = "matcher",
        dedup: bool = False,
        max_unexpected_bytes: int = 0,
        on_refuse: Callable[[Incoming], None] | None = None,
    ) -> None:
        self._on_match = on_match
        self.tracer = tracer if tracer is not None else Tracer()
        self.name = name
        #: With ``dedup=True`` (set by engines running the reliability
        #: layer) a replayed sequence number is silently discarded instead
        #: of raising: retransmission makes duplicates legitimate, and the
        #: layer's contract is that the application never sees one.
        self.dedup = dedup
        #: Receiver memory budget: cap on buffered unexpected eager payload
        #: bytes (0 = the paper's unbounded queue).  An eager arrival that
        #: finds no posted receive and would overflow is *refused* — handed
        #: to ``on_refuse`` (the engine NACKs it back to its sender) without
        #: advancing the sequence stream, so the delayed resend slots
        #: straight back in.
        self._max_unexpected = max_unexpected_bytes
        self._on_refuse = on_refuse
        self._expected: dict[tuple[int, int], int] = {}
        self._parked: dict[tuple[int, int], dict[int, Incoming]] = {}
        self._posted: list[RecvRequest] = []
        self._unexpected: list[Incoming] = []
        self._watchers: list[tuple[int, int, int, object]] = []
        # Statistics for tests and reports.
        self.delivered = 0
        self.parked_total = 0
        self.unexpected_total = 0
        self.duplicates_dropped = 0
        self.unexpected_bytes = 0
        self.peak_unexpected_bytes = 0
        self.refused_total = 0

    # -- arrivals ------------------------------------------------------------
    def deliver(self, inc: Incoming, now: float = 0.0) -> None:
        """Accept a descriptor from the wire; releases any unblocked parkers."""
        inc.arrived_at = now
        key = (inc.src, inc.flow)
        expected = self._expected.get(key, 0)
        if inc.seq < expected:
            if self.dedup:
                self.duplicates_dropped += 1
                self.tracer.emit(now, self.name, "dup_drop",
                                 src=inc.src, flow=inc.flow, seq=inc.seq)
                return
            raise ProtocolError(
                f"{self.name}: duplicate or replayed seq {inc.seq} from "
                f"src={inc.src} flow={inc.flow} (expected {expected})"
            )
        if inc.seq > expected:
            parked = self._parked.setdefault(key, {})
            if inc.seq in parked:
                if self.dedup:
                    self.duplicates_dropped += 1
                    self.tracer.emit(now, self.name, "dup_drop",
                                     src=inc.src, flow=inc.flow, seq=inc.seq)
                    return
                raise ProtocolError(
                    f"{self.name}: two deliveries for seq {inc.seq} "
                    f"(src={inc.src} flow={inc.flow})"
                )
            parked[inc.seq] = inc
            self.parked_total += 1
            self.tracer.emit(now, self.name, "park",
                             src=inc.src, flow=inc.flow, seq=inc.seq)
            return
        if not self._admit(inc):
            return
        # Drain consecutively-parked descriptors.
        parked = self._parked.get(key)
        while parked:
            nxt = self._expected[key]
            follower = parked.pop(nxt, None)
            if follower is None:
                break
            if not self._admit(follower):
                # Refused (budget full) and bounced to its sender: the
                # descriptor is dropped locally — the delayed resend will
                # redeliver it at this same, still-expected seq — and the
                # drain stops, as nothing later may overtake it.
                break
        if parked is not None and not parked:
            del self._parked[key]

    def _admit(self, inc: Incoming) -> bool:
        """Admit an in-sequence descriptor; ``False`` = refused (bounced)."""
        key = (inc.src, inc.flow)
        if inc.is_skip:
            self._expected[key] = inc.seq + 1
            self.delivered += 1
            self.tracer.emit(inc.arrived_at, self.name, "skip",
                             src=inc.src, flow=inc.flow, seq=inc.seq)
            return True
        # Find the posted match before mutating any state: a refusal must
        # leave the matcher exactly as it was (sequence stream included).
        match_idx = -1
        for idx, req in enumerate(self._posted):
            if req.flow == inc.flow and req.matches(inc.src, inc.tag):
                match_idx = idx
                break
        if match_idx < 0 and self._over_budget(inc):
            self.refused_total += 1
            self.tracer.emit(inc.arrived_at, self.name, "refuse",
                             src=inc.src, flow=inc.flow, tag=inc.tag,
                             seq=inc.seq, buffered=self.unexpected_bytes)
            if self._on_refuse is not None:
                self._on_refuse(inc)
            return False
        self._expected[key] = inc.seq + 1
        self.delivered += 1
        # Watchers fire on *admission*, before matching: a probe reports
        # that a message arrived, never that it is reserved.  If a
        # pre-posted receive consumes the descriptor in the same instant,
        # the prober still wakes with its metadata — the MPI probe/recv
        # race, where another receive may always steal the probed message —
        # instead of waiting forever on a watcher tuple that leaks.
        self._wake_watchers(inc)
        if match_idx >= 0:
            req = self._posted.pop(match_idx)
            self.tracer.emit(inc.arrived_at, self.name, "match",
                             src=inc.src, flow=inc.flow, tag=inc.tag,
                             seq=inc.seq)
            self._on_match(inc, req)
            return True
        self._unexpected.append(inc)
        self.unexpected_total += 1
        if isinstance(inc.item, SegItem):
            self.unexpected_bytes += inc.item.data.nbytes
            if self.unexpected_bytes > self.peak_unexpected_bytes:
                self.peak_unexpected_bytes = self.unexpected_bytes
        self.tracer.emit(inc.arrived_at, self.name, "unexpected",
                         src=inc.src, flow=inc.flow, tag=inc.tag, seq=inc.seq)
        return True

    def _over_budget(self, inc: Incoming) -> bool:
        """Would buffering ``inc`` unexpected overflow the byte budget?

        Rendezvous announcements buffer no payload (the data waits on the
        sender), and an empty buffer always accepts one message regardless
        of its size — the liveness floor that keeps a budget smaller than
        one message from wedging the stream.
        """
        if not self._max_unexpected:
            return False
        item = inc.item
        if not isinstance(item, SegItem) or item.data.nbytes == 0:
            return False
        if not self.unexpected_bytes:
            return False
        return (self.unexpected_bytes + item.data.nbytes
                > self._max_unexpected)

    # -- receive posting ----------------------------------------------------
    def post(self, req: RecvRequest) -> None:
        """Post a receive; matches the oldest waiting descriptor if any."""
        for idx, inc in enumerate(self._unexpected):
            if req.flow == inc.flow and req.matches(inc.src, inc.tag):
                del self._unexpected[idx]
                if isinstance(inc.item, SegItem):
                    self.unexpected_bytes -= inc.item.data.nbytes
                self.tracer.emit(req.posted_at, self.name, "match_unexpected",
                                 src=inc.src, flow=inc.flow, tag=inc.tag)
                self._on_match(inc, req)
                return
        self._posted.append(req)

    def unpost(self, req: RecvRequest, now: float = 0.0) -> bool:
        """Withdraw a still-unmatched posted receive (deadline expiry).

        Returns ``True`` when the request was waiting and is now gone —
        the caller owns failing its completion.  ``False`` means the
        receive already matched (or was never posted): too late to
        withdraw, the data is landing.
        """
        try:
            self._posted.remove(req)
        except ValueError:
            return False
        self.tracer.emit(now, self.name, "unpost",
                         src=req.src, flow=req.flow, tag=req.tag)
        return True

    # -- probing (MPI_Probe / MPI_Iprobe support) ----------------------------
    @staticmethod
    def _probe_matches(inc: Incoming, src: int, flow: int, tag: int) -> bool:
        return (inc.flow == flow and src in (-1, inc.src)
                and tag in (-1, inc.tag))

    def peek(self, src: int, flow: int, tag: int) -> Incoming | None:
        """Oldest unexpected descriptor matching (src, flow, tag), if any.

        The descriptor stays queued — probing never consumes a message.
        """
        for inc in self._unexpected:
            if self._probe_matches(inc, src, flow, tag):
                return inc
        return None

    def watch(self, src: int, flow: int, tag: int, event: Event) -> None:
        """Trigger ``event`` (with the descriptor) when a match arrives.

        Fires immediately if a matching descriptor is already queued,
        otherwise when the next matching descriptor is *admitted* — even if
        a pre-posted receive consumes it in the same instant.  Probing
        reports arrival, not reservation: like MPI_Probe, a concurrent
        receive may consume the probed message before the prober's own
        receive posts, in which case that receive simply waits for the next
        match.
        """
        existing = self.peek(src, flow, tag)
        if existing is not None:
            event.succeed(existing)
            return
        self._watchers.append((src, flow, tag, event))

    def _wake_watchers(self, inc: Incoming) -> None:
        if not self._watchers:
            return
        kept = []
        for src, flow, tag, event in self._watchers:
            if self._probe_matches(inc, src, flow, tag):
                # Probing is non-consuming: every matching prober sees it.
                event.succeed(inc)
            else:
                kept.append((src, flow, tag, event))
        self._watchers = kept

    # -- session-layer hooks --------------------------------------------------
    def reset_peer(self, src: int) -> None:
        """Drop all sequencing and buffered state from ``src``.

        The session layer's epoch fence: the peer's next incarnation
        restarts its sequence streams at zero, so the old expected
        counters, parked early arrivals and unexpected descriptors must
        vanish together — keeping any of them would either wedge the new
        streams (stale expected counter) or ghost-deliver old-epoch data
        into them.  Posted receives are *not* touched: see
        :meth:`fail_src` for the confirmed-death path.
        """
        for key in [k for k in self._expected if k[0] == src]:
            del self._expected[key]
        for key in [k for k in self._parked if k[0] == src]:
            del self._parked[key]
        kept = []
        for inc in self._unexpected:
            if inc.src != src:
                kept.append(inc)
            elif isinstance(inc.item, SegItem):
                self.unexpected_bytes -= inc.item.data.nbytes
        self._unexpected = kept

    def fail_src(self, src: int, exc: BaseException, now: float = 0.0) -> None:
        """Fail every posted receive pinned to a now-dead ``src``.

        Wildcard receives stay posted — another peer may still complete
        them.  Failures are defused (like truncation): death is reported
        through the non-raising failed/error API, wait() re-raises it.
        """
        kept = []
        for req in self._posted:
            if req.src == src:
                req.done.fail(exc)
                req.done.defuse()
                self.tracer.emit(now, self.name, "fail_src",
                                 src=src, flow=req.flow, tag=req.tag)
            else:
                kept.append(req)
        self._posted = kept

    def has_posted_from(self, src: int) -> bool:
        """Any posted receive pinned to ``src`` (liveness interest)?"""
        return any(req.src == src for req in self._posted)

    # -- introspection -------------------------------------------------------
    @property
    def n_posted(self) -> int:
        return len(self._posted)

    @property
    def n_unexpected(self) -> int:
        return len(self._unexpected)

    @property
    def n_parked(self) -> int:
        return sum(len(p) for p in self._parked.values())

    @property
    def n_watchers(self) -> int:
        return len(self._watchers)

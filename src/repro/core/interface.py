"""The Madeleine-style incremental message-building interface.

Paper §3.4: "The first interface is similar to the interface of the former
Madeleine library, it allows to incrementally build messages.  With this
interface, a NewMadeleine message is made of several pieces of data,
located anywhere in user-space.  The message is initiated and finalized
with a synchronization barrier call."

Each :meth:`PackMessage.pack` submits one piece immediately — the engine is
free to schedule, aggregate or reorder it right away; per-flow sequence
numbers keep the receiving side's pieces in pack order.  The
:meth:`PackMessage.end_pack` barrier returns an event that fires when every
piece has left the node.  The unpack side mirrors it.
"""

from __future__ import annotations


from repro.core.data import SegmentData
from repro.core.engine import NmadEngine
from repro.core.requests import RecvRequest, SendRequest
from repro.errors import MpiError
from repro.sim import Event

__all__ = ["PackMessage", "UnpackMessage", "begin_pack", "begin_unpack"]


class PackMessage:
    """Incrementally built outgoing message (a sequence of pieces)."""

    def __init__(self, engine: NmadEngine, dest: int, tag: int = 0,
                 flow: int = 0) -> None:
        self.engine = engine
        self.dest = dest
        self.tag = tag
        self.flow = flow
        self.requests: list[SendRequest] = []
        self._finalized = False

    def pack(
        self,
        data: SegmentData | bytes | bytearray | memoryview | int,
        priority: int = 0,
        rail: int | None = None,
        allow_reorder: bool = True,
    ) -> SendRequest:
        """Append one piece; it is submitted to the engine immediately."""
        if self._finalized:
            raise MpiError("pack() after end_pack()")
        req = self.engine.isend(
            self.dest, data, tag=self.tag, flow=self.flow,
            priority=priority, rail=rail, allow_reorder=allow_reorder,
        )
        self.requests.append(req)
        return req

    def end_pack(self) -> Event:
        """Finalize: an event that fires once every piece has been sent."""
        if self._finalized:
            raise MpiError("end_pack() called twice")
        self._finalized = True
        return self.engine.sim.all_of([r.done for r in self.requests])


class UnpackMessage:
    """Incrementally consumed incoming message."""

    def __init__(self, engine: NmadEngine, src: int, tag: int = 0,
                 flow: int = 0) -> None:
        self.engine = engine
        self.src = src
        self.tag = tag
        self.flow = flow
        self.requests: list[RecvRequest] = []
        self._finalized = False

    def unpack(self, nbytes: int | None = None) -> RecvRequest:
        """Post a receive for the next piece of the message."""
        if self._finalized:
            raise MpiError("unpack() after end_unpack()")
        req = self.engine.irecv(src=self.src, tag=self.tag, flow=self.flow,
                                nbytes=nbytes)
        self.requests.append(req)
        return req

    def end_unpack(self) -> Event:
        """Finalize: an event that fires once every piece has landed."""
        if self._finalized:
            raise MpiError("end_unpack() called twice")
        self._finalized = True
        return self.engine.sim.all_of([r.done for r in self.requests])


def begin_pack(engine: NmadEngine, dest: int, tag: int = 0,
               flow: int = 0) -> PackMessage:
    """Start building an outgoing message (Madeleine ``mad_begin_packing``)."""
    return PackMessage(engine, dest, tag=tag, flow=flow)


def begin_unpack(engine: NmadEngine, src: int, tag: int = 0,
                 flow: int = 0) -> UnpackMessage:
    """Start consuming an incoming message (Madeleine ``mad_begin_unpacking``)."""
    return UnpackMessage(engine, src, tag=tag, flow=flow)

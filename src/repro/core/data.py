"""Segment payload representations.

Tests move *real bytes* end to end (so correctness of aggregation,
reordering, splitting and reassembly is proven on content, not just
lengths), while benchmarks use :class:`VirtualData` — a sized placeholder —
to avoid megabyte-scale Python byte shuffling inside tight sweeps.  Both
implement the same tiny interface, and every code path in the engine works
with either.
"""

from __future__ import annotations


__all__ = ["SegmentData", "Bytes", "VirtualData", "as_data"]


class SegmentData:
    """Interface for a contiguous piece of user data."""

    @property
    def nbytes(self) -> int:
        raise NotImplementedError

    def tobytes(self) -> bytes:
        """Materialize the content (tests); virtual data yields zeros."""
        raise NotImplementedError

    def slice(self, offset: int, length: int) -> SegmentData:
        """A view of ``length`` bytes starting at ``offset`` (for splitting)."""
        raise NotImplementedError

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise ValueError(
                f"slice [{offset}, {offset + length}) out of range "
                f"for {self.nbytes}-byte segment"
            )


class Bytes(SegmentData):
    """Real in-memory data (bytes / bytearray / memoryview)."""

    __slots__ = ("_view",)

    def __init__(self, data: bytes | bytearray | memoryview) -> None:
        self._view = memoryview(data)

    @property
    def nbytes(self) -> int:
        return self._view.nbytes

    def tobytes(self) -> bytes:
        return self._view.tobytes()

    def slice(self, offset: int, length: int) -> Bytes:
        self._check_range(offset, length)
        return Bytes(self._view[offset:offset + length])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bytes {self.nbytes}B>"


class VirtualData(SegmentData):
    """A payload with a size but no materialized content.

    Benchmarks exchange multi-megabyte messages thousands of times; carrying
    placeholder sizes instead of real buffers keeps the simulator fast
    without changing any timing (the NIC charges time on sizes, never on
    content).
    """

    __slots__ = ("_nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative virtual size {nbytes}")
        self._nbytes = nbytes

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def tobytes(self) -> bytes:
        return bytes(self._nbytes)

    def slice(self, offset: int, length: int) -> VirtualData:
        self._check_range(offset, length)
        return VirtualData(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualData {self.nbytes}B>"


def as_data(obj: SegmentData | bytes | bytearray | memoryview | int) -> SegmentData:
    """Coerce user input into a :class:`SegmentData`.

    ``bytes``-likes become :class:`Bytes`; a bare ``int`` is shorthand for
    ``VirtualData(n)`` (benchmark convenience).
    """
    if isinstance(obj, SegmentData):
        return obj
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return Bytes(obj)
    if isinstance(obj, int):
        return VirtualData(obj)
    raise TypeError(
        f"cannot use {type(obj).__name__} as segment data; pass bytes-like, "
        "SegmentData, or an int size"
    )

"""Optional peer failure detection, session epochs and crash recovery.

The paper's engine assumes every peer stays alive: the transfer layer is
"a process scheduler for packets" with no notion of a dead process, and
the opt-in reliability and flow-control layers inherit that — a silently
crashed peer leaves senders retrying into the void until the retry budget
burns, leaks credit, and a restarted peer would happily accept stale
frames from its previous life.  The default ``EngineParams.sessions="off"``
keeps the paper-faithful behaviour (no hook below is ever installed and
every figure stays bit-identical).  This module is the opt-in hardening
layer (``sessions="epoch"``) that gives the engine a ULFM-style notion of
process failure:

* every frame to a peer carries a small **session header**: the sender's
  *incarnation* (restart count of its node) and the sender's current view
  of the receiver's incarnation.  The receiver **fences** (discards and
  counts) any frame whose view of it is stale — that is the barrier no
  duplicate or ghost delivery crosses after a crash/restart;
* first contact (and every restart) runs a tiny
  ``session_hello``/``session_welcome`` **handshake**: data frames are
  buffered per peer until the peer's incarnation is known, then flushed
  in submission order;
* a per-peer **heartbeat failure detector** watches peers the engine has
  business with (outstanding sends, posted receives, rendezvous in
  flight).  Heartbeats are idle-only — reverse traffic counts as
  liveness, like the reliability layer's piggybacked acks — and run on
  virtual-time timers: after ``hb_timeout_us/2`` of silence a peer is
  *suspected*, after ``hb_timeout_us`` it is *confirmed dead* (under
  ``rel_timeout_us="auto"`` the budget tightens per peer to four
  adaptive RTOs, with the configured value as the ceiling);
* a suspected peer is **not** a dead peer: new outbound frames towards a
  suspect are *parked* in the same per-peer FIFO the handshake uses
  (``frames_parked``) while heartbeats keep probing.  When contact
  resumes within the same incarnation the peer is unsuspected and the
  parked traffic flushes in submission order — no epoch bump, no
  teardown (``peers_recovered``).  This is what makes a transient
  network partition shorter than ``hb_timeout_us`` invisible to the
  application: requests just take longer.  Only confirmed death (or a
  new incarnation) runs the teardown;
* death and epoch change share one **atomic teardown**: deferred frames,
  window backlog, reliability windows and their retransmit/ack timers,
  credit ledgers and their grant/resend timers, rendezvous transfers and
  matcher sequence state toward the peer are all dropped in one step
  (no simulated time passes), with every affected request failing
  loudly via :class:`~repro.errors.PeerDeadError`;
* on the node's own crash the engine's :meth:`~NmadEngine.halt` silences
  its timers through the same generation-bump machinery, so a dead
  process never ticks into its successor's incarnation.

State machine per peer::

    unknown --(first tx)--> hello_sent --(welcome/any stamped rx)-->
    established --(hb_timeout silence)--> dead --(higher incarnation
    seen)--> established (new epoch)

An epoch change (same peer, higher incarnation) runs the teardown and
then re-establishes immediately; confirmed death stays terminal until a
frame from a *newer* incarnation revives the peer.
"""

from __future__ import annotations

from collections.abc import Callable

from typing import TYPE_CHECKING

from repro.errors import PeerDeadError
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.nic import Nic

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine

__all__ = ["SessionLayer"]

#: Frame kinds owned by this layer (never reach reliability or demux).
_SESSION_KINDS = frozenset({
    FrameKind.SESSION_HELLO, FrameKind.SESSION_WELCOME, FrameKind.HEARTBEAT,
})

#: ``frame.session[1]`` value meaning "receiver incarnation unknown";
#: only legal on handshake frames.
_UNKNOWN = -1


class _PeerSession:
    """Session and failure-detector state towards one peer."""

    __slots__ = ("peer", "sess_state", "peer_incarnation", "epoch",
                 "last_heard_us", "last_tx_us", "suspect",
                 "mon_armed", "mon_gen", "deferred_tx")

    def __init__(self, peer: int, now: float) -> None:
        self.peer = peer
        #: "unknown" | "hello_sent" | "established" | "dead"
        self.sess_state = "unknown"
        self.peer_incarnation = _UNKNOWN
        self.epoch = 0             # local count of sessions opened with peer
        self.last_heard_us = now
        self.last_tx_us = now
        self.suspect = False
        self.mon_armed = False
        self.mon_gen = 0
        #: Frames awaiting the handshake: (nic, frame, gap, ok, fail).
        self.deferred_tx: list[tuple[
            Nic, Frame, float,
            Callable[[], None] | None,
            Callable[[BaseException], None] | None,
        ]] = []


class SessionLayer:
    """Per-engine session handshakes, epoch fencing and failure detection.

    Sits at the very front of the receive funnel (before the reliability
    layer) and gates the transmit funnel inside
    :meth:`~repro.core.reliability.ReliabilityLayer.send`.  In ``"off"``
    mode neither hook is installed, so default-mode runs are bit- and
    microsecond-identical to the paper engine.
    """

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.params = engine.params
        self.nics = list(engine.node.nics)
        self.mode = engine.params.sessions
        self.active = self.mode == "epoch"
        #: Frozen at construction: a restarted node gets a *new* engine,
        #: whose session layer speaks for the new incarnation.
        self.incarnation = engine.node.incarnation
        self._peers: dict[int, _PeerSession] = {}
        self._name = f"node{engine.node_id}.sessions"

    def _peer(self, peer: int) -> _PeerSession:
        st = self._peers.get(peer)
        if st is None:
            st = _PeerSession(peer, now=self.sim.now)
            self._peers[peer] = st
        return st

    # -- transmit side -------------------------------------------------------
    def stamp(self, frame: Frame) -> None:
        """Attach the session header to an outgoing frame (idempotent)."""
        if not self.active or frame.session is not None:
            return
        st = self._peer(frame.dst_node)
        frame.session = (self.incarnation, st.peer_incarnation)
        frame.wire_size += self.params.hdr.session_header
        st.last_tx_us = self.sim.now

    def defer_tx(
        self,
        nic: Nic,
        frame: Frame,
        cpu_gap_us: float,
        on_delivered: Callable[[], None] | None,
        on_failed: Callable[[BaseException], None] | None,
    ) -> bool:
        """Gate one outgoing frame on the peer's session state.

        Returns ``True`` when the layer consumed the frame (buffered until
        the handshake completes, or failed because the peer is dead) and
        ``False`` when the caller should transmit it now (it has been
        stamped).  Called from the top of ``ReliabilityLayer.send`` so
        *every* engine frame — data, acks excepted (they stamp directly),
        credits, NACKs — is epoch-correct.
        """
        st = self._peer(frame.dst_node)
        if st.sess_state == "established":
            if st.suspect:
                # Graceful degradation: the peer may be on the far side of
                # a transient partition.  Park the frame (FIFO, same queue
                # as the handshake) instead of racing it into a black hole;
                # heartbeats keep probing and a heal flushes it in order.
                st.deferred_tx.append((nic, frame, cpu_gap_us,
                                       on_delivered, on_failed))
                self.engine.stats.frames_parked += 1
                self.engine.tracer.emit(self.sim.now, self._name, "park_tx",
                                        peer=st.peer, frame=frame.frame_id,
                                        parked=len(st.deferred_tx))
                self._arm_monitor(st)
                self.engine.poke_watchdog()
                return True
            self.stamp(frame)
            self._arm_monitor(st)
            return False
        if st.sess_state == "dead":
            if on_failed is not None:
                on_failed(PeerDeadError(
                    f"node{self.engine.node_id}: send to node {st.peer}, "
                    f"a peer confirmed dead at incarnation "
                    f"{st.peer_incarnation}"
                ))
            return True
        # unknown / hello_sent: buffer behind the handshake (FIFO).
        st.deferred_tx.append((nic, frame, cpu_gap_us,
                               on_delivered, on_failed))
        if st.sess_state == "unknown":
            st.sess_state = "hello_sent"
            self._send_session_frame(st, FrameKind.SESSION_HELLO)
        self._arm_monitor(st)
        self.engine.poke_watchdog()
        return True

    def _flush(self, st: _PeerSession) -> None:
        """Handshake done: replay buffered frames in submission order."""
        if not st.deferred_tx:
            return
        deferred, st.deferred_tx = st.deferred_tx, []
        self.engine.tracer.emit(self.sim.now, self._name, "flush",
                                peer=st.peer, frames=len(deferred))
        for nic, frame, gap, ok, fail in deferred:
            self.engine.reliability.send(nic, frame, cpu_gap_us=gap,
                                         on_delivered=ok, on_failed=fail)

    def _send_session_frame(self, st: _PeerSession, kind: str,
                            payload: str | None = None) -> None:
        """Emit a handshake/heartbeat frame directly (never retransmitted:
        the monitor re-solicits, so losing one only costs an interval)."""
        rail = self.engine.reliability.choose_rail(st.peer, prefer=0)
        frame = Frame(
            src_node=self.engine.node_id, dst_node=st.peer, kind=kind,
            wire_size=self.params.hdr.global_header, payload=payload,
        )
        self.stamp(frame)
        if kind == FrameKind.HEARTBEAT:
            self.engine.stats.heartbeats_sent += 1
        self.engine.tracer.emit(self.sim.now, self._name, kind,
                                peer=st.peer, rail=rail, payload=payload)
        self.nics[rail].post_send(frame)

    # -- receive side --------------------------------------------------------
    def on_frame(self, rail: int, frame: Frame) -> None:
        """Every engine-NIC arrival funnels through here first."""
        if frame.corrupted:
            # Same surface as the reliability layer: a failed checksum is
            # a loss, whatever the frame claimed to be.
            self.engine.stats.corrupt_discards += 1
            self.engine.tracer.emit(self.sim.now, self._name, "rx_corrupt",
                                    frame=frame.frame_id, rail=rail)
            return
        if frame.session is None:
            # A peer running sessions="off": tolerate, pass straight down.
            self.engine.reliability.on_frame(rail, frame)
            return
        s_inc, d_inc = frame.session
        st = self._peer(frame.src_node)
        if frame.kind in _SESSION_KINDS:
            self._on_session_frame(st, frame, s_inc, d_inc)
            return
        if d_inc != self.incarnation:
            # Addressed to a previous life of this node: a retransmit or
            # straggler from before our restart.  Fencing it is what keeps
            # the old epoch's sequence/credit state from leaking into ours.
            self._fence(st, frame)
            return
        if st.sess_state == "dead":
            if s_inc <= st.peer_incarnation:
                self._fence(st, frame)
                return
            self._epoch_change(st, s_inc)     # the peer came back
        elif s_inc < st.peer_incarnation:
            self._fence(st, frame)
            return
        elif s_inc > st.peer_incarnation and st.peer_incarnation != _UNKNOWN:
            self._epoch_change(st, s_inc)     # the peer restarted under us
        elif st.sess_state != "established":
            self._establish(st, s_inc)        # implicit learn from data
        self._note_liveness(st)
        self.engine.reliability.on_frame(rail, frame)

    def _on_session_frame(self, st: _PeerSession, frame: Frame,
                          s_inc: int, d_inc: int) -> None:
        if s_inc < st.peer_incarnation or (
                st.sess_state == "dead" and s_inc <= st.peer_incarnation):
            self._fence(st, frame)
            return
        if (frame.kind != FrameKind.SESSION_HELLO
                and d_inc != self.incarnation):
            # A welcome/heartbeat aimed at a previous life of this node;
            # only a hello may carry a stale (or unknown) view of us,
            # because discovering our incarnation is its whole job.
            self._fence(st, frame)
            return
        if s_inc > st.peer_incarnation and st.peer_incarnation != _UNKNOWN:
            self._epoch_change(st, s_inc)
        elif st.sess_state != "established":
            self._establish(st, s_inc)
        self._note_liveness(st)
        if frame.kind == FrameKind.SESSION_HELLO:
            self._send_session_frame(st, FrameKind.SESSION_WELCOME)
        elif frame.kind == FrameKind.HEARTBEAT and frame.payload == "ping":
            # Pong keeps one-way streams alive; pongs solicit no reply.
            self._send_session_frame(st, FrameKind.HEARTBEAT, payload="pong")

    def _fence(self, st: _PeerSession, frame: Frame) -> None:
        self.engine.stats.stale_frames_fenced += 1
        self.engine.tracer.emit(self.sim.now, self._name, "fence",
                                peer=st.peer, fkind=frame.kind,
                                frame=frame.frame_id, session=frame.session)

    def _note_liveness(self, st: _PeerSession) -> None:
        st.last_heard_us = self.sim.now
        if st.suspect:
            # Contact resumed within the same incarnation: the suspicion
            # was transient.  No epoch bump, no teardown — just release
            # whatever parking accumulated, in submission order.
            st.suspect = False
            self.engine.stats.peers_recovered += 1
            self.engine.tracer.emit(self.sim.now, self._name, "unsuspect",
                                    peer=st.peer,
                                    parked=len(st.deferred_tx))
            if st.sess_state == "established":
                self._flush(st)

    # -- session establishment / epoch change --------------------------------
    def _establish(self, st: _PeerSession, s_inc: int) -> None:
        new_epoch = s_inc != st.peer_incarnation
        st.peer_incarnation = s_inc
        st.sess_state = "established"
        st.suspect = False
        if new_epoch:
            st.epoch += 1
            self.engine.stats.epochs_started += 1
            self.engine.tracer.emit(self.sim.now, self._name, "establish",
                                    peer=st.peer, incarnation=s_inc,
                                    epoch=st.epoch)
        self._flush(st)

    def _epoch_change(self, st: _PeerSession, s_inc: int) -> None:
        """The peer restarted: atomically drop its old life, open the new.

        Unlike confirmed death, an epoch change does *not* fail posted
        receives from the peer — the new incarnation's re-sent data
        legitimately matches them.  Old-epoch unexpected/parked state is
        dropped, which is what prevents a delivery from each epoch.
        """
        exc = PeerDeadError(
            f"node{self.engine.node_id}: node {st.peer} restarted "
            f"(incarnation {st.peer_incarnation} -> {s_inc}); in-flight "
            "requests towards its old incarnation failed"
        )
        self.engine.tracer.emit(self.sim.now, self._name, "epoch_change",
                                peer=st.peer, old=st.peer_incarnation,
                                new=s_inc)
        self._teardown_peer(st, exc)
        self._establish(st, s_inc)

    def _declare_dead(self, st: _PeerSession) -> None:
        st.sess_state = "dead"
        st.mon_armed = False
        st.mon_gen += 1
        self.engine.stats.peers_dead += 1
        exc = PeerDeadError(
            f"node{self.engine.node_id}: node {st.peer} declared dead after "
            f"{self.sim.now - st.last_heard_us:g}us of silence "
            f"(hb_timeout_us={self._hb_timeout_us(st.peer):g})"
        )
        self.engine.tracer.emit(self.sim.now, self._name, "peer_dead",
                                peer=st.peer,
                                silence=self.sim.now - st.last_heard_us)
        self._teardown_peer(st, exc)
        # Death, unlike an epoch change, dashes all hope of delivery:
        # receives awaiting the peer fail too, so waiters surface the
        # error instead of hanging until their own detector fires.
        self.engine.matcher.fail_src(st.peer, exc, now=self.sim.now)

    def _teardown_peer(self, st: _PeerSession, exc: PeerDeadError) -> None:
        """Atomically drop every bit of engine state bound to the peer.

        Runs with no simulated time passing, so no frame or timer can
        interleave between the steps: deferred handshake frames, the
        anticipated packet, window backlog, collect-deferred submissions,
        reliability windows (and their retransmit/ack timers), rendezvous
        transfers, credit ledgers (and their grant/resend timers), and
        the matcher's per-peer sequence state go in one step.
        """
        engine = self.engine
        peer = st.peer
        deferred, st.deferred_tx = st.deferred_tx, []
        for _nic, _frame, _gap, _ok, fail in deferred:
            if fail is not None:
                fail(exc)
        # Dissolve an anticipated packet first: it restores wraps into the
        # window (drained just below) and refunds credit (reset just after).
        engine.transfer.discard_anticipated_for(peer)
        for wrap in engine.window.drain_matching(lambda w: w.dest == peer):
            if wrap.completion is not None and not wrap.completion.triggered:
                wrap.completion.fail(exc)
                wrap.completion.defuse()
        engine.collect.reset_dest(peer, exc)
        engine.reliability.reset_peer(peer, exc)
        engine.rendezvous.fail_peer(peer, exc)
        engine.flowcontrol.reset_peer(peer)
        engine.matcher.reset_peer(peer)
        self.engine.tracer.emit(self.sim.now, self._name, "teardown",
                                peer=peer, deferred=len(deferred))

    # -- failure detector ----------------------------------------------------
    def note_interest(self, peer: int) -> None:
        """The application awaits ``peer`` (a sourced receive was posted):
        watch its liveness even though we may never transmit to it."""
        if not self.active or peer == self.engine.node_id or peer < 0:
            return
        st = self._peer(peer)
        if st.sess_state == "unknown":
            # A pure receiver still needs the handshake: without our hello
            # the peer cannot learn our incarnation, and we cannot tell its
            # silence from its death.
            st.sess_state = "hello_sent"
            self._send_session_frame(st, FrameKind.SESSION_HELLO)
        self._arm_monitor(st)

    def _needs_monitor(self, peer: int) -> bool:
        st = self._peers[peer]
        engine = self.engine
        return bool(
            st.deferred_tx
            or engine.window.backlog(peer)
            or engine.reliability.has_outstanding(peer)
            or engine.rendezvous.involves_peer(peer)
            or engine.collect.has_deferred_to(peer)
            or engine.matcher.has_posted_from(peer)
        )

    def _hb_timeout_us(self, peer: int) -> float:
        """Effective silence budget before declaring ``peer`` dead.

        The static ``hb_timeout_us`` unless the engine runs the adaptive
        timing layer (``rel_timeout_us="auto"``) *and* holds a warm
        estimate for the peer: then the deadline tightens to four
        adaptive RTOs — long enough that a lost heartbeat round does not
        kill a healthy peer, yet scaled to the measured path instead of
        a hand-tuned constant.  Clamped to at least ``4 * hb_interval_us`` so the
        idle-prober gets several shots before the verdict, and never
        above the configured static bound (the operator's ceiling).
        """
        rtt = self.engine.rtt
        if rtt is None or not rtt.warm(peer):
            return self.params.hb_timeout_us
        eff = max(4.0 * rtt.rto_us(peer), 4.0 * self.params.hb_interval_us)
        return min(eff, self.params.hb_timeout_us)

    def _arm_monitor(self, st: _PeerSession) -> None:
        if st.mon_armed or st.sess_state == "dead":
            return
        st.mon_armed = True
        st.mon_gen += 1
        gen = st.mon_gen
        self.sim.schedule(self.params.hb_interval_us,
                          lambda: self._mon_tick(st, gen))

    def _mon_tick(self, st: _PeerSession, gen: int) -> None:
        if gen != st.mon_gen or not st.mon_armed or self.engine.halted:
            return
        if not self._needs_monitor(st.peer):
            # No business with the peer: go dormant so an idle engine's
            # event queue drains (the next send or post re-arms us).
            # Suspicion lapses with the liveness interest — leaving it set
            # would greet the next (possibly much later) send to a healthy
            # peer with a stale park instead of a fresh observation.
            if st.suspect:
                st.suspect = False
                self.engine.tracer.emit(self.sim.now, self._name,
                                        "suspect_dropped", peer=st.peer)
            st.mon_armed = False
            return
        now = self.sim.now
        silence = now - st.last_heard_us
        hb_timeout_us = self._hb_timeout_us(st.peer)
        if silence >= hb_timeout_us:
            self._declare_dead(st)
            return
        if silence >= hb_timeout_us / 2.0 and not st.suspect:
            st.suspect = True
            self.engine.stats.peers_suspected += 1
            self.engine.tracer.emit(now, self._name, "suspect",
                                    peer=st.peer, silence=silence)
        # Idle-only probing: any frame we sent recently already solicits
        # reverse traffic (acks, grants), so a probe would be redundant.
        if now - st.last_tx_us >= self.params.hb_interval_us:
            if st.sess_state == "established":
                self._send_session_frame(st, FrameKind.HEARTBEAT,
                                         payload="ping")
            else:
                self._send_session_frame(st, FrameKind.SESSION_HELLO)
        self.sim.schedule(self.params.hb_interval_us,
                          lambda: self._mon_tick(st, gen))

    # -- lifecycle -----------------------------------------------------------
    def halt(self) -> None:
        """This node crashed: silence every timer, drop buffered frames."""
        for st in self._peers.values():
            st.mon_armed = False
            st.mon_gen += 1
            st.deferred_tx.clear()

    # -- introspection -------------------------------------------------------
    def is_dead(self, peer: int) -> bool:
        st = self._peers.get(peer)
        return st is not None and st.sess_state == "dead"

    def is_suspect(self, peer: int) -> bool:
        """True while the failure detector suspects (but has not yet
        condemned) the peer; outbound traffic is parked meanwhile."""
        st = self._peers.get(peer)
        return st is not None and st.suspect

    def suspect_peers(self) -> list[int]:
        """Currently-suspected peers, in deterministic order."""
        return sorted(p for p, st in self._peers.items() if st.suspect)

    def dead_peers(self) -> list[int]:
        """Peers confirmed dead, in deterministic order."""
        return sorted(p for p, st in self._peers.items()
                      if st.sess_state == "dead")

    @property
    def quiesced(self) -> bool:
        """True when no frame is buffered behind a handshake."""
        if not self.active:
            return True
        return all(not st.deferred_tx for st in self._peers.values())

    @property
    def n_deferred_tx(self) -> int:
        return sum(len(st.deferred_tx) for st in self._peers.values())

    @property
    def n_monitors_armed(self) -> int:
        return sum(1 for st in self._peers.values() if st.mon_armed)

    def describe_peer(self, peer: int) -> str:
        """One-line session diagnostic for the stall report."""
        st = self._peers.get(peer)
        if st is None:
            return "session: untouched"
        flags = ""
        if st.suspect:
            flags += " [suspect]"
        if st.deferred_tx:
            flags += f" [{len(st.deferred_tx)} deferred]"
        return (f"session: {st.sess_state} inc={st.peer_incarnation} "
                f"epoch={st.epoch} heard={st.last_heard_us:g}us{flags}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SessionLayer {self._name} mode={self.mode} "
                f"inc={self.incarnation} peers={len(self._peers)}>")

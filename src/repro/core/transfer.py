"""The transfer layer.

Paper §3.3: "The transfer layer mimics a process scheduler, which when
called by a processor, will select the new ready process to be run.
Indeed, the transfer layer controls the activities of the NICs, and
requests from the upper layer a new optimized packet to be sent, as soon as
a card becomes idle."

Per NIC, the layer registers an idle hook and a receive handler.  On idle
(or on a kick from the collect layer while the card was already idle) it
*pulls*:

1. ask the active strategy for a plan over the optimization window;
2. otherwise stream the next granted rendezvous bulk chunk;
3. otherwise leave the card idle — the next submit will kick it.

The pull path charges the engine's critical-path costs (paper §5.1: the
scheduler's "extra operations on the critical path to inspect the 'ready
list'"): a fixed per-pull cost plus a per-MTU data-path cost, both folded
into the frame's ``cpu_gap``.  When the NIC lacks gather/scatter, building
an aggregate additionally pays a host copy per extra segment (paper §2's
"accumulate packets in order to make use of some gather/scatter
capabilities" — without the capability the accumulation is paid in copies).
"""

from __future__ import annotations

import math
from functools import partial
from typing import TYPE_CHECKING

from repro.core.matching import Incoming
from repro.core.packet import (
    CancelItem,
    PacketWrap,
    PhysPacket,
    RdvAckItem,
    RdvDataItem,
    RdvReqItem,
    SegItem,
    WireItem,
)
from repro.core.strategy import SchedulingContext, SendPlan
from repro.errors import ProtocolError
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.nic import Nic

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine
    from repro.core.rendezvous import RdvSendState

__all__ = ["TransferLayer"]


class TransferLayer:
    """Drives every NIC of one node on behalf of the engine."""

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self.nics = list(engine.node.nics)
        self.sent_wraps: set[int] = set()
        # Flow-control hooks are skipped entirely in the default "off" mode
        # so the hot path stays byte- and microsecond-identical.
        self._fc_active = engine.flowcontrol.active
        self._pull_pending = [False] * len(self.nics)
        # One pull thunk and one reusable SchedulingContext per rail: the
        # pull path runs once per NIC refill (the paper's §5.1 critical-path
        # cost), so it should not rebuild a closure and a context object
        # every time.
        self._pull_fns = [partial(self._pull, rail)
                          for rail in range(len(self.nics))]
        self._contexts: list[SchedulingContext | None] = \
            [None] * len(self.nics)
        # Paper §3.2's second/third dispatch policies: at most one packet is
        # pre-synthesized while every NIC is busy, waiting to be re-fed.
        self._anticipated: tuple[SendPlan, list] | None = None
        # Every arrival funnels through the session layer first in "epoch"
        # mode (epoch fencing, handshake/heartbeat absorption), then the
        # reliability layer (checksum verification, ack processing,
        # duplicate suppression), then the flow-control layer (grant
        # application, credit/nack handling); with every mode "off" that
        # is a straight pass-through to demux_frame.  The front of the
        # funnel is chosen once, here, so the default hot path never even
        # reads the session mode.
        rx_front = (engine.sessions.on_frame if engine.sessions.active
                    else engine.reliability.on_frame)
        for nic in self.nics:
            nic.add_idle_callback(self._on_idle)
            nic.set_receive_handler(
                lambda frame, rail=nic.rail: rx_front(rail, frame)
            )

    @property
    def has_anticipated(self) -> bool:
        """True when a prepared packet is waiting for a NIC (quiesce check)."""
        return self._anticipated is not None

    def uncommit_anticipated(self, wrap: PacketWrap) -> bool:
        """Unwind the anticipated packet if it holds ``wrap``.

        A wrap inside a pre-synthesized packet has been taken from the
        window but has *not* left the node — no NIC accepted it yet — so a
        cancellation can still succeed.  The whole prepared packet is
        dissolved: announcements are retracted from the rendezvous table
        (the peer never saw them) and every wrap returns to the window for
        the next pull to re-plan.  Returns ``True`` if ``wrap`` was held.
        """
        if self._anticipated is None:
            return False
        plan, items = self._anticipated
        held = plan.taken + plan.announced
        if all(w.wrap_id != wrap.wrap_id for w in held):
            return False
        self._anticipated = None
        for item in items:
            if isinstance(item, RdvReqItem):
                self.engine.rendezvous.retract(item.handle)
        for w in held:
            self.engine.window.restore(w)
        if self._fc_active:
            for w in plan.taken:
                if not w.is_control and not w.credit_exempt:
                    self.engine.flowcontrol.refund(plan.dest, w.length)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.transfer",
                                "unanticipate", dest=plan.dest,
                                items=len(items))
        return True

    def discard_anticipated_for(self, dest: int) -> bool:
        """Dissolve the anticipated packet if it targets ``dest``.

        The session layer's peer-teardown path: the prepared packet's wraps
        go back into the window (where the teardown's drain then collects
        and fails them) and their credit is refunded (the ledger is zeroed
        right after) — the same unwind as :meth:`uncommit_anticipated`,
        keyed by destination instead of by wrap.
        """
        if self._anticipated is None:
            return False
        plan, items = self._anticipated
        if plan.dest != dest:
            return False
        self._anticipated = None
        for item in items:
            if isinstance(item, RdvReqItem):
                self.engine.rendezvous.retract(item.handle)
        for w in plan.taken + plan.announced:
            self.engine.window.restore(w)
        if self._fc_active:
            for w in plan.taken:
                if not w.is_control and not w.credit_exempt:
                    self.engine.flowcontrol.refund(dest, w.length)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.transfer",
                                "unanticipate", dest=dest, items=len(items))
        return True

    # -- refill machinery -----------------------------------------------------
    def _rail_ok(self, rail: int) -> bool:
        """May work still be scheduled on this rail (not quarantined)?"""
        return self.engine.reliability.rail_ok(rail)

    def kick(self) -> None:
        """New work exists: schedule a pull on every currently idle NIC."""
        if self.engine.halted:
            return
        any_idle = False
        schedule = self.engine.sim.schedule
        for nic in self.nics:
            if not self._rail_ok(nic.rail):
                continue
            if nic.idle and not self._pull_pending[nic.rail]:
                self._pull_pending[nic.rail] = True
                schedule(0.0, self._pull_fns[nic.rail])
                any_idle = True
        if not any_idle:
            self._maybe_prepare()

    def _on_idle(self, nic: Nic) -> None:
        self._pull(nic.rail)

    def _anticipation_rail(self) -> int:
        """Rail whose threshold a prepared aggregate must respect.

        A prepared packet may be handed to *any* NIC later, so it is sized
        against the most restrictive (smallest) rendezvous threshold.
        """
        rails = [r for r in range(len(self.nics)) if self._rail_ok(r)]
        if not rails:
            rails = list(range(len(self.nics)))
        return min(rails, key=lambda r: self.nics[r].profile.rdv_threshold)

    def _context(self, rail: int) -> SchedulingContext:
        # All context fields except the clock are fixed per rail for the
        # lifetime of the engine (sent_wraps is the live set object), so the
        # context is built once per rail and only ``now`` is refreshed.
        ctx = self._contexts[rail]
        if ctx is None:
            ctx = SchedulingContext(
                window=self.engine.window,
                rail=rail,
                nic_profile=self.nics[rail].profile,
                hdr=self.engine.params.hdr,
                now=self.engine.sim.now,
                src_node=self.engine.node_id,
                sent_wraps=self.sent_wraps,
                flowcontrol=(self.engine.flowcontrol
                             if self._fc_active else None),
            )
            self._contexts[rail] = ctx
        else:
            ctx.now = self.engine.sim.now
        return ctx

    def _maybe_prepare(self) -> None:
        """Pre-synthesize one ready-to-send packet (anticipation policies)."""
        params = self.engine.params
        if params.dispatch_policy == "on_idle":
            return
        if self._anticipated is not None:
            return
        if any(nic.idle and self._rail_ok(nic.rail) for nic in self.nics):
            return  # an idle NIC will pull directly
        if (params.dispatch_policy == "backlog"
                and len(self.engine.window) < params.backlog_flush_threshold):
            return
        rail = self._anticipation_rail()
        ctx = self._context(rail)
        plan = self.engine.strategy.select(ctx)
        if plan is None:
            return
        plan.validate(ctx)
        items = self._materialize(plan, rail)
        self._anticipated = (plan, items)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.transfer",
                                "anticipate", dest=plan.dest,
                                items=len(items))

    def _pull(self, rail: int) -> None:
        self._pull_pending[rail] = False
        if self.engine.halted:
            return  # a pull scheduled just before the crash landed
        nic = self.nics[rail]
        if not nic.idle or not self._rail_ok(rail):
            return
        params = self.engine.params
        if self._anticipated is not None:
            # "Immediately re-feed it once it becomes idle" (paper §3.2).
            plan, items = self._anticipated
            self._anticipated = None
            for item in items:
                if isinstance(item, RdvReqItem):
                    self.engine.rendezvous.fix_origin(item.handle, rail)
            self.engine.stats.anticipated_hits += 1
            self._post_packet(nic, plan, items,
                              pull_cost=params.anticipated_pull_cost_us)
            return
        ctx = self._context(rail)
        plan = self.engine.strategy.select(ctx)
        if plan is not None:
            plan.validate(ctx)
            items = self._materialize(plan, rail)
            self._post_packet(nic, plan, items, pull_cost=params.pull_cost_us)
            return
        multirail = getattr(self.engine.strategy, "multirail_bulk", False)
        bulk = self.engine.rendezvous.next_chunk(rail, multirail)
        if bulk is not None:
            state, item = bulk
            self._send_bulk(nic, state, item)
            return
        # Nothing elected: a bandwidth-favoring strategy may be holding the
        # window on purpose — honour its deadline with a future re-pull.
        deadline = self.engine.strategy.hold_until(ctx)
        if deadline is not None and not self._pull_pending[rail]:
            self._pull_pending[rail] = True
            delay = max(0.0, deadline - self.engine.sim.now)
            self.engine.sim.schedule(delay, self._pull_fns[rail])

    # -- sending --------------------------------------------------------------
    def _materialize(self, plan: SendPlan, rail: int) -> list[WireItem]:
        """Commit a plan: remove wraps from the window, build wire items."""
        engine = self.engine
        for wrap in plan.taken + plan.announced:
            engine.window.take(wrap)
        if self._fc_active:
            # Credit is spent at commit time: announced (rendezvous) wraps
            # are exempt — the grant protocol paces them end to end — and
            # NACK resends were charged when their original went out.
            for wrap in plan.taken:
                if not wrap.is_control and not wrap.credit_exempt:
                    engine.flowcontrol.consume(plan.dest, wrap.length)
        items = list(plan.items)
        for wrap in plan.announced:
            items.append(engine.rendezvous.announce(wrap, rail=rail))
        return items

    def _post_packet(self, nic: Nic, plan: SendPlan, items: list,
                     pull_cost: float) -> None:
        engine = self.engine
        params = engine.params
        pkt = PhysPacket(items)
        wire = pkt.wire_size(params.hdr)
        payload = pkt.payload_size()
        gather_cost = 0.0
        n_segments = sum(1 for i in items if isinstance(i, SegItem))
        if n_segments > 1 and not nic.profile.gather_scatter:
            # No hardware gather: the host stages the aggregate with one
            # copy per segment.
            gather_cost = engine.node.memory.pack_time(
                i.data.nbytes for i in items if isinstance(i, SegItem)
            )
        cpu_gap = (
            pull_cost
            + params.per_mtu_cost(nic.profile)
              * math.ceil(max(wire, 1) / nic.profile.mtu_bytes)
            + gather_cost
        )
        frame = Frame(
            src_node=engine.node_id, dst_node=plan.dest, kind=FrameKind.DATA,
            wire_size=wire, payload=pkt, payload_size=payload,
        )
        engine.stats.phys_packets += 1
        engine.stats.items_sent += len(items)
        engine.stats.eager_bytes += payload
        engine.stats.wire_bytes += wire
        if n_segments > 1:
            engine.stats.aggregated_packets += 1
            engine.stats.aggregated_segments += n_segments
        engine.tracer.emit(engine.sim.now, f"node{engine.node_id}.transfer",
                           "send_plan", rail=nic.rail, dest=plan.dest,
                           items=len(items), wire=wire)
        if self._fc_active:
            engine.flowcontrol.stamp(frame)
        engine.reliability.send(
            nic, frame, cpu_gap_us=cpu_gap,
            on_delivered=lambda: self._plan_sent(plan),
            on_failed=lambda exc: self._plan_failed(plan, items, exc),
        )
        # With an anticipation policy active, the NIC just went busy: start
        # preparing the next packet off the critical path right away.
        self._maybe_prepare()

    def _plan_sent(self, plan: SendPlan) -> None:
        for wrap in plan.taken:
            self.sent_wraps.add(wrap.wrap_id)
            if wrap.completion is not None and not wrap.completion.triggered:
                wrap.completion.succeed(wrap)
        for wrap in plan.announced:
            # The announcement left the node; ordering dependencies on this
            # wrap are satisfied (delivery order is restored by the matcher).
            self.sent_wraps.add(wrap.wrap_id)

    def _plan_failed(self, plan: SendPlan, items: list,
                     exc: BaseException) -> None:
        """The reliability layer gave up on this packet's frame."""
        for wrap in plan.taken:
            if wrap.completion is not None and not wrap.completion.triggered:
                wrap.completion.fail(exc)
                wrap.completion.defuse()
        for item in items:
            if isinstance(item, RdvReqItem):
                # The announcement never reached the peer: fail the big send.
                self.engine.rendezvous.abort(item.handle, exc)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.transfer",
                                "plan_failed", dest=plan.dest,
                                items=len(items))

    def _send_bulk(self, nic: Nic, state: RdvSendState,
                   item: RdvDataItem) -> None:
        engine = self.engine
        params = engine.params
        pkt = PhysPacket([item])
        wire = pkt.wire_size(params.hdr)
        cpu_gap = (
            params.pull_cost_us
            + params.per_mtu_cost(nic.profile)
              * math.ceil(wire / nic.profile.mtu_bytes)
        )
        frame = Frame(
            src_node=engine.node_id, dst_node=state.wrap.dest,
            kind=FrameKind.RDV_DATA, wire_size=wire, payload=pkt,
            payload_size=item.data.nbytes,
        )
        engine.stats.phys_packets += 1
        engine.stats.items_sent += 1
        engine.stats.rdv_bytes += item.data.nbytes
        engine.stats.wire_bytes += wire
        engine.tracer.emit(engine.sim.now, f"node{engine.node_id}.transfer",
                           "send_bulk", rail=nic.rail, dest=state.wrap.dest,
                           offset=item.offset, nbytes=item.data.nbytes)
        if self._fc_active:
            engine.flowcontrol.stamp(frame)
        engine.reliability.send(
            nic, frame, cpu_gap_us=cpu_gap,
            on_delivered=lambda: engine.rendezvous.chunk_sent(state, item),
            on_failed=lambda exc: engine.rendezvous.chunk_failed(
                state, item, exc),
        )

    # -- receiving ----------------------------------------------------------------
    def demux_frame(self, rail: int, frame: Frame) -> None:
        pkt = frame.payload
        if not isinstance(pkt, PhysPacket):
            raise ProtocolError(
                f"node{self.engine.node_id}: non-engine frame {frame!r} on "
                "an engine-managed NIC"
            )
        # Decoding the multiplexing header and walking the item list costs
        # host CPU — part of the paper's 5.1 overhead.  Items dispatch in
        # order after a per-packet cost plus a per-item increment.
        params = self.engine.params
        delay = params.demux_packet_cost_us
        for item in pkt.items:
            delay += params.demux_item_cost_us
            self.engine.sim.schedule(
                delay, lambda item=item: self._dispatch_item(item)
            )

    def _dispatch_item(self, item: WireItem) -> None:
        if self.engine.halted:
            return  # demuxed just before the crash; the item dies with us
        now = self.engine.sim.now
        if isinstance(item, SegItem):
            self.engine.matcher.deliver(
                Incoming(src=item.src, flow=item.flow, tag=item.tag,
                         seq=item.seq, nbytes=item.data.nbytes, item=item),
                now=now,
            )
        elif isinstance(item, RdvReqItem):
            self.engine.matcher.deliver(
                Incoming(src=item.src, flow=item.flow, tag=item.tag,
                         seq=item.seq, nbytes=item.nbytes, item=item),
                now=now,
            )
        elif isinstance(item, CancelItem):
            self.engine.matcher.deliver(
                Incoming(src=item.src, flow=item.flow, tag=item.tag,
                         seq=item.seq, nbytes=0, item=None, is_skip=True),
                now=now,
            )
        elif isinstance(item, RdvAckItem):
            self.engine.rendezvous.on_ack(item)
        elif isinstance(item, RdvDataItem):
            self.engine.rendezvous.on_data(item)
        else:
            raise ProtocolError(
                f"node{self.engine.node_id}: unknown wire item "
                f"{type(item).__name__}"
            )

"""Optional overload protection: receive-side credit flow control.

The paper's engine assumes a well-behaved peer: eager traffic is pushed
as fast as the NICs allow and lands in the receiver's unexpected-message
state without bound.  The default ``EngineParams.flow_control="off"``
keeps that paper-faithful behaviour (every hook below degrades to a
guarded no-op and received frames pass straight to the demultiplexer).
This module is the opt-in hardening layer (``flow_control="credit"``)
that bounds both ends of an eager stream:

* each peer holds a **credit budget** for eager traffic towards us
  (``credit_bytes`` payload bytes and ``credit_wraps`` packet wraps);
* the sender **consumes** credit when a strategy commits an eager wrap
  to a physical packet; a destination whose budget is exhausted is
  **blocked** in the optimization window — wraps keep accumulating, but
  no pull elects them, and the per-destination index answers
  ``eligible_for_dest`` for a blocked destination in O(1);
* the receiver **releases** credit when the application consumes a
  message, and advertises releases as cumulative
  ``(released_bytes_total, released_wraps_total)`` grants, piggybacked
  on any reverse frame (``fc_grant``, ``credit_header`` wire bytes) or
  as a small standalone ``credit`` frame after ``credit_grant_delay_us``
  of reverse silence — the same delayed-generation machinery as the
  reliability layer's standalone acks;
* cumulative totals make grants **idempotent**: a duplicated, reordered
  or retransmitted grant applies as a componentwise max, so the layer
  composes with ``reliability="ack"`` without extra state.

Overflow of the receiver's unexpected-message budget
(``max_unexpected_bytes``) takes a **NACK-and-resend-later** path
instead of unbounded buffering: the refused segment bounces back to the
sender in a ``nack`` frame, its credit is released (the grant rides on
the NACK itself), and the sender re-submits the segment after
``nack_delay_us`` — with exponential backoff while the peer keeps
refusing — through normal credit gating, keeping its original sequence
number so the matcher's in-order machinery is undisturbed.  The echoed
payload models the sender-retained resend buffer of a real stack, so
only control-record bytes are charged on the wire.

Rendezvous traffic is credit-exempt: announcements are tiny control
records, and the bulk data only flows after the receiver granted it —
that grant *is* the large-message flow control.  Engine control wraps
(grants, acks, tombstones) are likewise exempt; blocking those would
deadlock the very protocols that release credit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packet import PacketWrap, SegItem
from repro.errors import ProtocolError
from repro.netsim.frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.matching import Incoming
    from repro.core.engine import NmadEngine

__all__ = ["FlowControlLayer"]

#: Cap on the NACK-resend backoff multiplier (2**6): a peer that keeps
#: refusing slows the retry loop down to ``64 * nack_delay_us`` but never
#: stops it — the next successful post on the receiver drains the buffer
#: and the following resend goes through.
_MAX_NACK_BACKOFF = 64


class _PeerCredit:
    """Both directions of the credit state towards one peer.

    All byte/wrap totals are cumulative and monotonic (except for the
    sender-local ``sent_*`` pair, which :meth:`FlowControlLayer.refund`
    may wind back when an anticipated packet is dissolved before any NIC
    accepted it).  Outstanding credit towards the peer is
    ``sent_* - peer_released_*``; the budget the peer still allows is the
    configured budget minus that difference.
    """

    __slots__ = (
        "peer",
        # Transmit half: what we consumed, and what the peer released.
        "sent_bytes_total", "sent_wraps_total",
        "peer_released_bytes", "peer_released_wraps",
        "blocked", "nack_streak",
        # Receive half: what we released, and what we last advertised.
        "released_bytes_total", "released_wraps_total",
        "adv_bytes", "adv_wraps",
        "grant_pending", "grant_gen", "resend_gen",
    )

    def __init__(self, peer: int) -> None:
        self.peer = peer
        self.sent_bytes_total = 0
        self.sent_wraps_total = 0
        self.peer_released_bytes = 0
        self.peer_released_wraps = 0
        self.blocked = False
        self.nack_streak = 0
        self.released_bytes_total = 0
        self.released_wraps_total = 0
        self.adv_bytes = 0
        self.adv_wraps = 0
        self.grant_pending = False
        self.grant_gen = 0
        self.resend_gen = 0


class FlowControlLayer:
    """Per-engine credit accounting, grant generation and NACK handling.

    Sits between the reliability layer and the demultiplexer on the
    receive path (:meth:`accept`), and is consulted by the transfer
    layer on the transmit path (:meth:`consume` / :meth:`stamp`).  In
    ``"off"`` mode :meth:`accept` is a single attribute check in front
    of :meth:`~repro.core.transfer.TransferLayer.demux_frame` and no
    transmit hook is ever invoked, so default-mode runs are bit- and
    microsecond-identical to the paper engine.
    """

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.params = engine.params
        self.nics = list(engine.node.nics)
        self.mode = engine.params.flow_control
        self.active = self.mode == "credit"
        self._credit_bytes = engine.params.credit_bytes
        self._credit_wraps = engine.params.credit_wraps
        self._grant_delay = engine.params.credit_grant_delay_us
        self._peers: dict[int, _PeerCredit] = {}
        self._pending_resends = 0
        self._name = f"node{engine.node_id}.flowcontrol"

    def _peer(self, peer: int) -> _PeerCredit:
        st = self._peers.get(peer)
        if st is None:
            st = _PeerCredit(peer)
            self._peers[peer] = st
        return st

    # -- transmit side: consuming credit ------------------------------------
    def consume(self, dest: int, nbytes: int) -> None:
        """An eager wrap towards ``dest`` was committed to a packet."""
        st = self._peer(dest)
        st.sent_bytes_total += nbytes
        st.sent_wraps_total += 1
        self._update_gate(st)

    def refund(self, dest: int, nbytes: int) -> None:
        """An anticipated packet was dissolved before a NIC accepted it."""
        st = self._peer(dest)
        st.sent_bytes_total -= nbytes
        st.sent_wraps_total -= 1
        self._update_gate(st)

    def planning_budget(self, dest: int) -> tuple[int | None, int | None]:
        """Remaining eager ``(bytes, wraps)`` allowance towards ``dest``.

        ``(None, None)`` in off mode — strategies then plan unconstrained,
        exactly as in the paper.
        """
        if not self.active:
            return (None, None)
        st = self._peers.get(dest)
        if st is None:
            return (self._credit_bytes, self._credit_wraps)
        return (
            max(0, self._credit_bytes
                - (st.sent_bytes_total - st.peer_released_bytes)),
            max(0, self._credit_wraps
                - (st.sent_wraps_total - st.peer_released_wraps)),
        )

    def _update_gate(self, st: _PeerCredit) -> None:
        exhausted = (
            st.sent_bytes_total - st.peer_released_bytes >= self._credit_bytes
            or st.sent_wraps_total - st.peer_released_wraps
            >= self._credit_wraps
        )
        if exhausted and not st.blocked:
            st.blocked = True
            self.engine.window.block_dest(st.peer)
            self.engine.stats.credit_stalls += 1
            self.engine.tracer.emit(
                self.sim.now, self._name, "credit_stall", peer=st.peer,
                outstanding=st.sent_bytes_total - st.peer_released_bytes)
        elif not exhausted and st.blocked:
            st.blocked = False
            self.engine.window.unblock_dest(st.peer)
            self.engine.tracer.emit(self.sim.now, self._name,
                                    "credit_resume", peer=st.peer)
            self.engine.transfer.kick()

    # -- receive path --------------------------------------------------------
    def accept(self, rail: int, frame: Frame) -> None:
        """Every post-reliability arrival funnels through here before demux."""
        if self.active:
            if frame.fc_grant is not None:
                self._apply_grant(frame.src_node, frame.fc_grant,
                                  from_nack=frame.kind == FrameKind.NACK)
            if frame.kind == FrameKind.CREDIT:
                return  # pure control: nothing to demultiplex
            if frame.kind == FrameKind.NACK:
                self._on_nack(frame)
                return
        self.engine.transfer.demux_frame(rail, frame)

    def _apply_grant(self, peer: int, grant: tuple[int, int],
                     from_nack: bool) -> None:
        st = self._peer(peer)
        rb, rw = grant
        changed = False
        if rb > st.peer_released_bytes:
            st.peer_released_bytes = rb
            changed = True
        if rw > st.peer_released_wraps:
            st.peer_released_wraps = rw
            changed = True
        if not changed:
            return  # stale or duplicated grant: cumulative totals, no-op
        if not from_nack:
            # Real forward progress on the peer (not just a refusal bounce):
            # drop the resend backoff back to its base delay.
            st.nack_streak = 0
        self._update_gate(st)
        self.engine.transfer.kick()

    def release(self, peer: int, nbytes: int) -> None:
        """The application consumed an eager message from ``peer``."""
        if not self.active:
            return
        st = self._peer(peer)
        st.released_bytes_total += nbytes
        st.released_wraps_total += 1
        self._schedule_grant(st)

    # -- grant generation (mirrors the reliability layer's delayed acks) -----
    def _advertise(self, st: _PeerCredit) -> tuple[int, int]:
        """Snapshot the cumulative grant for an outgoing frame."""
        if (st.released_bytes_total > st.adv_bytes
                or st.released_wraps_total > st.adv_wraps):
            st.adv_bytes = st.released_bytes_total
            st.adv_wraps = st.released_wraps_total
            self.engine.stats.credits_granted += 1
        self._cancel_grant(st)
        return (st.released_bytes_total, st.released_wraps_total)

    def stamp(self, frame: Frame) -> None:
        """Piggyback the current grant on an outgoing engine frame."""
        st = self._peer(frame.dst_node)
        frame.fc_grant = self._advertise(st)
        frame.wire_size += self.params.hdr.credit_header

    def _grant_delay_us(self, peer: int) -> float:
        """Coalescing delay before a standalone credit grant to ``peer``.

        The configured ``credit_grant_delay_us`` unless the adaptive
        timing layer (``rel_timeout_us="auto"``) holds a warm estimate
        for the peer: then half the smoothed RTT, floored at 1us — waiting longer
        than a plausible reverse frame forfeits the piggyback *and* stalls
        the sender, so a measured fast path releases credit sooner.  The
        configured value stays the ceiling (never slower than static).
        """
        rtt = self.engine.rtt
        if rtt is None or not rtt.warm(peer):
            return self._grant_delay
        srtt = rtt.srtt_us(peer)
        if srtt is None:
            return self._grant_delay
        return min(self._grant_delay, max(1.0, srtt / 2.0))

    def _nack_resend_base_us(self, peer: int) -> float:
        """Base delay before re-submitting a NACKed segment to ``peer``.

        The configured ``nack_delay_us``, or the peer's adaptive RTO when
        that is larger: a NACK means the receiver is out of resources, and
        retrying faster than a round trip can drain anything only earns
        the next NACK (the exponential streak backoff still multiplies).
        """
        rtt = self.engine.rtt
        if rtt is None or not rtt.warm(peer):
            return self.params.nack_delay_us
        return max(self.params.nack_delay_us, rtt.rto_us(peer))

    def _schedule_grant(self, st: _PeerCredit) -> None:
        if st.grant_pending:
            return
        st.grant_pending = True
        st.grant_gen += 1
        gen = st.grant_gen
        self.sim.schedule(self._grant_delay_us(st.peer),
                          lambda: self._grant_fire(st, gen))

    def _grant_fire(self, st: _PeerCredit, gen: int) -> None:
        if gen != st.grant_gen or not st.grant_pending:
            return  # a reverse frame piggybacked the grant in the meantime
        self._send_credit(st)

    def _cancel_grant(self, st: _PeerCredit) -> None:
        st.grant_pending = False
        st.grant_gen += 1

    def _send_credit(self, st: _PeerCredit) -> None:
        hdr = self.params.hdr
        rail = self.engine.reliability.choose_rail(st.peer, prefer=0)
        frame = Frame(
            src_node=self.engine.node_id, dst_node=st.peer,
            kind=FrameKind.CREDIT,
            wire_size=hdr.global_header + hdr.credit_header,
            fc_grant=self._advertise(st),
        )
        self.engine.tracer.emit(self.sim.now, self._name, "credit",
                                peer=st.peer, bytes=st.released_bytes_total,
                                wraps=st.released_wraps_total, rail=rail)
        self.engine.reliability.send(self.nics[rail], frame)

    # -- unexpected-buffer overflow: NACK and resend later -------------------
    def on_local_refuse(self, inc: Incoming) -> None:
        """The matcher refused ``inc`` (unexpected budget full): bounce it.

        The bounce moves no credit: the original transmit charged the
        message once and the eventual match of its resend releases it once.
        Releasing on refusal instead would let the sender spend the handed-
        back credit on *fresh* traffic while the refused message still
        waits out its backoff — widening the very overload the budget is
        throttling — and a credit-blocked resend could deadlock against a
        receiver whose buffered messages all sit behind the sequence hole.
        The resend is therefore gate-exempt (``credit_exempt``) instead.
        """
        item = inc.item
        assert isinstance(item, SegItem)
        st = self._peer(inc.src)
        hdr = self.params.hdr
        rail = self.engine.reliability.choose_rail(inc.src, prefer=0)
        # payload_size stays 0: the echoed segment stands in for the resend
        # buffer a real sender would have retained, so the bounce only
        # charges control-record bytes on the wire.
        frame = Frame(
            src_node=self.engine.node_id, dst_node=inc.src,
            kind=FrameKind.NACK,
            wire_size=hdr.global_header + hdr.seg_header + hdr.credit_header,
            payload=item,
            fc_grant=self._advertise(st),
        )
        self.engine.stats.nacks_sent += 1
        self.engine.tracer.emit(self.sim.now, self._name, "nack",
                                peer=inc.src, seq=item.seq,
                                nbytes=item.data.nbytes, rail=rail)
        self.engine.reliability.send(self.nics[rail], frame)

    def _on_nack(self, frame: Frame) -> None:
        item = frame.payload
        if not isinstance(item, SegItem):
            raise ProtocolError(
                f"node{self.engine.node_id}: NACK frame without an echoed "
                f"segment: {frame!r}"
            )
        peer = frame.src_node
        st = self._peer(peer)
        st.nack_streak += 1
        backoff = min(2 ** (st.nack_streak - 1), _MAX_NACK_BACKOFF)
        delay = self._nack_resend_base_us(peer) * backoff
        self.engine.tracer.emit(self.sim.now, self._name, "nack_rx",
                                peer=peer, seq=item.seq, delay_us=delay)
        self._pending_resends += 1
        gen = st.resend_gen
        self.sim.schedule(delay, lambda: self._resend(peer, item, gen))

    def _resend(self, peer: int, item: SegItem, gen: int) -> None:
        if self.engine.halted:
            return  # halt() already zeroed the pending-resend count
        self._pending_resends -= 1  # nm: allow[NM503] -- the timer itself fired; its pending-count decrement is epoch-independent
        st = self._peer(peer)
        if gen != st.resend_gen:
            # The peer died (or restarted) while this resend waited out its
            # backoff: re-submitting the old-epoch segment would ghost-
            # deliver into the peer's next incarnation.
            return
        self.engine.stats.nack_resends += 1
        # Same (flow, tag, seq) stream position as the refused original, so
        # the receiver's in-order machinery treats the resend as *the*
        # message; a fresh wrap_id keeps the window bookkeeping clean.  The
        # wrap re-enters the window directly (the original submission was
        # already admitted through the bounded collect layer once).
        wrap = PacketWrap(dest=peer, flow=item.flow, tag=item.tag,
                          seq=item.seq, data=item.data,
                          submitted_at=self.sim.now, credit_exempt=True)
        self.engine.window.restore(wrap)
        self.engine.tracer.emit(self.sim.now, self._name, "nack_resend",
                                peer=peer, seq=item.seq)
        self.engine.poke_watchdog()
        self.engine.transfer.kick()

    # -- session-layer hooks --------------------------------------------------
    def reset_peer(self, peer: int) -> None:
        """Zero the credit ledger towards a dead/restarted peer.

        The entry stays in place with its generation counters *bumped*
        rather than being deleted: a recreated entry would restart its
        generations at zero, and a NACK-resend timer armed in the peer's
        previous life could then falsely match and resurrect an old-epoch
        segment.  Grant and resend timers are cancelled through the bumps;
        a credit-blocked window gate is lifted (the new incarnation starts
        with a full budget).
        """
        st = self._peers.get(peer)
        if st is None:
            return
        st.grant_pending = False
        st.grant_gen += 1
        st.resend_gen += 1
        st.sent_bytes_total = 0
        st.sent_wraps_total = 0
        st.peer_released_bytes = 0
        st.peer_released_wraps = 0
        st.nack_streak = 0
        st.released_bytes_total = 0
        st.released_wraps_total = 0
        st.adv_bytes = 0
        st.adv_wraps = 0
        if st.blocked:
            st.blocked = False
            self.engine.window.unblock_dest(peer)
        self.engine.tracer.emit(self.sim.now, self._name, "reset_peer",
                                peer=peer)

    def halt(self) -> None:
        """This node crashed: silence every timer, run no callbacks."""
        for st in self._peers.values():
            st.grant_pending = False
            st.grant_gen += 1
            st.resend_gen += 1
        self._pending_resends = 0

    # -- introspection -------------------------------------------------------
    @property
    def pending_resends(self) -> int:
        """NACK resends still waiting out their backoff delay."""
        return self._pending_resends

    @property
    def quiesced(self) -> bool:
        """True when no grant or NACK resend is still scheduled."""
        if not self.active:
            return True
        if self._pending_resends:
            return False
        return all(not st.grant_pending for st in self._peers.values())

    def known_peers(self) -> list[int]:
        """Peers with any credit state, in deterministic order."""
        return sorted(self._peers)

    def describe_peer(self, peer: int) -> str:
        """One-line credit diagnostic for the stall report."""
        st = self._peers.get(peer)
        if st is None:
            return "credit: untouched"
        out_b = st.sent_bytes_total - st.peer_released_bytes
        out_w = st.sent_wraps_total - st.peer_released_wraps
        return (
            f"credit: outstanding={out_b}B/{out_w}w of "
            f"{self._credit_bytes}B/{self._credit_wraps}w"
            f"{' [blocked]' if st.blocked else ''}, "
            f"released-out={st.released_bytes_total}B/"
            f"{st.released_wraps_total}w"
            f"{' [grant pending]' if st.grant_pending else ''}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowControlLayer {self._name} mode={self.mode} "
                f"peers={len(self._peers)}>")

"""Multirail strategy — the paper's second shipped strategy.

Paper §4: "a multi-rails one which balances the communication flow over the
set of available NICS, possibly by splitting messages in a heterogeneous
manner if necessary", and §7: the architecture "is particularly well suited
to the implementation of greedy load-balancing strategies over multiple
network interface cards".

The load balancing itself is *greedy and emergent*: every idle NIC pulls
work from the common list, so a faster NIC simply comes back for more
sooner.  What this class adds over plain aggregation is bulk splitting —
``multirail_bulk = True`` lets a granted rendezvous transfer stream its
chunks over *any* idle rail, so a 2 MB message leaves over MX and Quadrics
simultaneously and the receiver reassembles by (handle, offset).  Chunk
counts per rail end up proportional to rail bandwidth without any explicit
ratio computation — the heterogeneous split of paper §4.
"""

from __future__ import annotations

from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategy import register

__all__ = ["MultirailStrategy"]


@register
class MultirailStrategy(AggregationStrategy):
    """Aggregation plus greedy bulk splitting across all rails."""

    name = "multirail"

    #: bulk rendezvous chunks may be pulled by any idle rail
    multirail_bulk = True

"""FIFO strategy: direct mapping, no optimization.

One submitted request becomes one physical packet, in submission order —
the behaviour of a classical synchronous communication library (and of the
baselines for non-datatype traffic).  Shipped mainly as the ablation
reference: running the engine with ``fifo`` isolates exactly what the
optimization window buys.
"""

from __future__ import annotations


from repro.core.packet import SegItem
from repro.core.strategy import SchedulingContext, SendPlan, Strategy, register
from repro.core.tactics import deps_satisfied

__all__ = ["FifoStrategy"]


@register
class FifoStrategy(Strategy):
    """Send the oldest sendable wrap, alone; oversized wraps go rendezvous."""

    name = "fifo"

    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        # Lazy head scan: terminates at the first sendable wrap, so the
        # direct-mapping pull stays O(1) unless dependency chains block the
        # list head.
        for wrap in ctx.window.eligible(ctx.rail):
            if not deps_satisfied(wrap, ctx.sent_wraps):
                continue
            if wrap.control_item is not None:
                return SendPlan(dest=wrap.dest, items=[wrap.control_item],
                                taken=[wrap])
            if wrap.length > ctx.rdv_threshold:
                return SendPlan(dest=wrap.dest, items=[], announced=[wrap])
            # Partial credit: a destination not (yet) blocked may still lack
            # the credit for this wrap — skip it and try later traffic.
            # NACK resends are exempt (charged when the original went out).
            if not wrap.credit_exempt:
                max_bytes, max_wraps = ctx.eager_budget(wrap.dest)
                if (max_bytes is not None and max_wraps is not None
                        and (wrap.length > max_bytes or max_wraps < 1)):
                    continue
            item = SegItem(src=ctx.src_node, flow=wrap.flow, tag=wrap.tag,
                           seq=wrap.seq, data=wrap.data)
            return SendPlan(dest=wrap.dest, items=[item], taken=[wrap])
        return None

"""The strategy database shipped with the engine.

Importing this package registers the built-in strategies; user code can add
its own with :func:`repro.core.strategy.register` (the paper's "dynamically
extended" database of optimizing strategies).
"""

from repro.core.strategies.adaptive import AdaptiveStrategy
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.bandwidth import BandwidthStrategy
from repro.core.strategies.fifo import FifoStrategy
from repro.core.strategies.multirail import MultirailStrategy

__all__ = [
    "AdaptiveStrategy",
    "AggregationStrategy",
    "BandwidthStrategy",
    "FifoStrategy",
    "MultirailStrategy",
]

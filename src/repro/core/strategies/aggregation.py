"""Aggregation strategy — the paper's headline optimization.

Paper §4: "an aggregation [strategy] which accumulates communication
requests as long as the cumulated length does not require to switch to the
rendez-vous protocol", and §5.2: the "aggressive optimizer ... is able to
coalesce packets even if they belong to different logical communication
flows (i.e. MPI communicators)".

This strategy synthesizes one physical packet per idle-NIC pull by walking
the eligible window in submission order (optionally priority-reordered) and
taking every wrap towards the chosen destination that keeps the aggregate
under the NIC's rendezvous threshold.  Oversized wraps become rendezvous
announcements that ride in the same physical packet — which is what makes
the §5.3 derived-datatype schedule work (small blocks coalesced "with the
rendez-vous requests of the large blocks").
"""

from __future__ import annotations


from repro.core.packet import SegItem, WireItem
from repro.core.strategy import SchedulingContext, SendPlan, Strategy, register
from repro.core.tactics import (
    first_sendable_dest,
    plan_aggregate,
    reorder_by_priority,
)

__all__ = ["AggregationStrategy"]


@register
class AggregationStrategy(Strategy):
    """Coalesce small requests; announce large ones; one packet per pull.

    Parameters
    ----------
    by_priority:
        Reorder eligible wraps by the application's priority hints before
        aggregating (respecting ``allow_reorder`` pins).  This is the
        "favor an earlier delivery of high priority fragments" behaviour of
        paper §2 (the RPC service-id example).
    scan_past_blockage:
        Keep scanning for aggregable wraps after one did not fit (paper §7:
        reorder "to maximize the number of aggregation operations").
    max_items:
        Optional cap on records per physical packet (models a bounded
        gather/scatter descriptor list on real NICs).
    """

    name = "aggregation"

    def __init__(
        self,
        by_priority: bool = False,
        scan_past_blockage: bool = True,
        max_items: int | None = None,
    ) -> None:
        if max_items is not None and max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        self.by_priority = by_priority
        self.scan_past_blockage = scan_past_blockage
        self.max_items = max_items

    #: bulk rendezvous chunks stay on the rail that announced them
    multirail_bulk = False

    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        if self.by_priority:
            # Priority reordering is a global permutation of the eligible
            # list, so it has to see every wrap.
            candidates = reorder_by_priority(list(ctx.window.eligible(ctx.rail)))
            dest = first_sendable_dest(candidates, ctx.sent_wraps)
        else:
            # Submission order: elect the destination from the list head,
            # then aggregate over the per-destination index only — queued
            # traffic towards other nodes is never scanned.
            dest = first_sendable_dest(
                ctx.window.eligible(ctx.rail), ctx.sent_wraps)
            if dest is None:
                return None
            candidates = ctx.window.eligible_for_dest(ctx.rail, dest)
        if dest is None:
            return None
        # Remaining credit towards the elected destination (None, None when
        # flow control is off): the aggregate stays within the allowance so
        # a partially-credited destination is never overdrawn.
        max_eager_bytes, max_eager_items = ctx.eager_budget(dest)
        choice = plan_aggregate(
            candidates,
            dest=dest,
            rdv_threshold=ctx.rdv_threshold,
            sent=ctx.sent_wraps,
            max_items=self.max_items,
            scan_past_blockage=self.scan_past_blockage,
            max_eager_bytes=max_eager_bytes,
            max_eager_items=max_eager_items,
        )
        if choice.empty:
            return None
        items: list[WireItem] = []
        for wrap in choice.eager:
            if wrap.control_item is not None:
                items.append(wrap.control_item)
            else:
                items.append(SegItem(src=ctx.src_node, flow=wrap.flow,
                                     tag=wrap.tag, seq=wrap.seq,
                                     data=wrap.data))
        return SendPlan(dest=dest, items=items, taken=choice.eager,
                        announced=choice.announce)

    def describe(self) -> str:
        opts = []
        if self.by_priority:
            opts.append("by_priority")
        if not self.scan_past_blockage:
            opts.append("no_scan")
        if self.max_items is not None:
            opts.append(f"max_items={self.max_items}")
        return f"{self.name}({', '.join(opts)})" if opts else self.name

"""Bandwidth-favoring strategy: hold the window to grow aggregates.

Paper §2: "The preferred optimization strategy may differ from favoring the
latency, and instead favoring the bandwidth may be a better bet for
applications using a remote storage system."

This strategy deliberately leaves an idle NIC unfed while the pending
aggregate towards the head destination is still small *and* young: more
requests get to coalesce into each physical packet (fewer per-packet costs,
better achieved bandwidth) at the price of bounded extra latency.  Dispatch
happens as soon as either trigger fires:

* **fill**: the aggregate reaches ``min_fill_bytes`` (default: half the
  rendezvous threshold), or
* **age**: the oldest pending wrap has waited ``hold_us`` microseconds.

Rendezvous announcements and control records never wait — holding a grant
would stall the peer.
"""

from __future__ import annotations

from typing import Any


from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategy import SchedulingContext, SendPlan, register
from repro.core.tactics import deps_satisfied, first_sendable_dest

__all__ = ["BandwidthStrategy"]


@register
class BandwidthStrategy(AggregationStrategy):
    """Aggregation with a dispatch deadline instead of instant dispatch."""

    name = "bandwidth"

    def __init__(self, hold_us: float = 5.0,
                 min_fill_bytes: int | None = None,
                 **agg_params: Any) -> None:
        super().__init__(**agg_params)
        if hold_us < 0:
            raise ValueError(f"negative hold time {hold_us}")
        if min_fill_bytes is not None and min_fill_bytes < 1:
            raise ValueError(f"bad fill threshold {min_fill_bytes}")
        self.hold_us = hold_us
        self.min_fill_bytes = min_fill_bytes
        # Observability for tests/benches.
        self.holds = 0

    def _fill_target(self, ctx: SchedulingContext) -> int:
        if self.min_fill_bytes is not None:
            return self.min_fill_bytes
        return ctx.rdv_threshold // 2

    def _should_hold(self, ctx: SchedulingContext) -> bool:
        # Head destination of the eligible list (deps-satisfied wraps only),
        # then examine that destination's pending set via the window's
        # per-dest index — no scan over other destinations' traffic.
        dest = first_sendable_dest(ctx.window.eligible(ctx.rail),
                                   ctx.sent_wraps)
        if dest is None:
            return False
        mine = [w for w in ctx.window.eligible_for_dest(ctx.rail, dest)
                if deps_satisfied(w, ctx.sent_wraps)]
        if not mine:
            return False
        if any(w.is_control or w.length > ctx.rdv_threshold for w in mine):
            return False  # grants / announcements must not wait
        pending = sum(w.length for w in mine)
        if pending >= self._fill_target(ctx):
            return False
        oldest = min(w.submitted_at for w in mine)
        return (ctx.now - oldest) < self.hold_us

    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        if self._should_hold(ctx):
            self.holds += 1
            return None
        return super().select(ctx)

    def hold_until(self, ctx: SchedulingContext) -> float | None:
        oldest = min(
            (w.submitted_at for w in ctx.window.eligible(ctx.rail)
             if deps_satisfied(w, ctx.sent_wraps)),
            default=None,
        )
        if oldest is None:
            return None
        return oldest + self.hold_us

    def describe(self) -> str:
        fill = self.min_fill_bytes if self.min_fill_bytes is not None \
            else "rdv/2"
        return f"{self.name}(hold={self.hold_us}us, fill={fill})"

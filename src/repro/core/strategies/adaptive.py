"""Adaptive strategy (extension beyond the paper's two shipped strategies).

Paper §3.2 closes with three dispatch policies the engine could use and
leaves choosing between optimization functions as future work ("dynamically
[selectable] in the future").  This strategy is a small concrete step in
that direction: it watches the backlog and uses the cheap direct path when
the window holds a single request (nothing to optimize — don't pay the
aggregation scan), switching to full aggregation as soon as a real backlog
builds up.
"""

from __future__ import annotations

from typing import Any

from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.fifo import FifoStrategy
from repro.core.strategy import SchedulingContext, SendPlan, Strategy, register

__all__ = ["AdaptiveStrategy"]


@register
class AdaptiveStrategy(Strategy):
    """Direct mapping under light load, aggregation under backlog."""

    name = "adaptive"

    def __init__(self, backlog_watermark: int = 2,
                 **agg_params: Any) -> None:
        if backlog_watermark < 1:
            raise ValueError(
                f"backlog_watermark must be >= 1, got {backlog_watermark}"
            )
        self.backlog_watermark = backlog_watermark
        self._fifo = FifoStrategy()
        self._agg = AggregationStrategy(**agg_params)
        # Exposed for tests/reports: how often each mode ran.
        self.fifo_pulls = 0
        self.agg_pulls = 0

    @property
    def multirail_bulk(self) -> bool:
        return False

    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        # backlog() reads the window's incrementally-maintained wrap count,
        # so the mode decision itself costs O(1) per pull.
        if ctx.window.backlog() < self.backlog_watermark:
            self.fifo_pulls += 1
            return self._fifo.select(ctx)
        self.agg_pulls += 1
        return self._agg.select(ctx)

    def describe(self) -> str:
        return f"{self.name}(watermark={self.backlog_watermark})"

"""The collect layer.

Paper §3.3: "The collect layer is in charge of registering the pieces of
data submitted by the various communication flows of the application as
well as the meta-data necessary in their identification by the receiving
side (tag number, sender id, sequence number).  Once encapsulated, ... the
collected pieces of data are inserted onto a dedicated list for a specific
network technology selected by the application or (by default) on the
common list for automatized load-balancing."

Concretely: :meth:`CollectLayer.submit` wraps user data into a
:class:`~repro.core.packet.PacketWrap` with a fresh per-``(dest, flow)``
sequence number, drops it into the optimization window (dedicated or common
list) and kicks the transfer layer so an idle NIC picks it up immediately —
requests only *accumulate* while the cards are busy (paper §3.1).

The paper's window is unbounded.  The opt-in overload protection
(``EngineParams.max_window_wraps`` / ``max_window_bytes``) bounds it here,
at the submission boundary: a submission that would overflow is either
**deferred** on a FIFO queue until :meth:`~repro.core.window.OptimizationWindow.take`
frees space (``window_policy="block"`` — backpressure without losing the
nonblocking ``isend`` API: the caller still gets a request whose completion
fires late) or refused with :class:`~repro.errors.WindowFullError`
(``"fail"``).  Deferred wraps receive their sequence number at *admission*,
not submission, so the fail-fast policy leaves no holes in a ``(dest,
flow)`` stream, and the FIFO order makes admission order equal submission
order for the wraps that do get in.  Engine control wraps bypass the caps:
they are the grants and acks that drain the window.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING

from repro.core.data import SegmentData, as_data
from repro.core.packet import PacketWrap, WireItem
from repro.core.data import VirtualData
from repro.errors import NetworkError, WindowFullError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine

__all__ = ["CollectLayer", "CONTROL_FLOW"]

#: Flow id reserved for engine control traffic (never enters the matcher).
CONTROL_FLOW = -1

#: Priority assigned to control wraps so grants overtake queued data.
CONTROL_PRIORITY = 1_000_000


class CollectLayer:
    """Registers application data pieces and encapsulates their metadata."""

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self._seq: defaultdict[tuple[int, int], int] = defaultdict(int)
        self._max_wraps = engine.params.max_window_wraps
        self._max_bytes = engine.params.max_window_bytes
        self._bounded = bool(self._max_wraps or self._max_bytes)
        self._fail_fast = engine.params.window_policy == "fail"
        self._deferred: deque[PacketWrap] = deque()
        if self._bounded:
            engine.window.on_space = self._drain_deferred

    def submit(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        flow: int = 0,
        tag: int = 0,
        priority: int = 0,
        rail: int | None = None,
        allow_reorder: bool = True,
        depends_on: int | None = None,
    ) -> PacketWrap:
        """Encapsulate one data piece and enter it into the window."""
        if dest == self.engine.node_id:
            raise NetworkError(
                f"node{self.engine.node_id}: self-send not supported "
                "(loopback is not a network)"
            )
        if flow == CONTROL_FLOW:
            raise NetworkError(f"flow {CONTROL_FLOW} is reserved for control")
        seg = as_data(data)
        # FIFO fairness: once anything is deferred, every later submission
        # queues behind it even if it would fit — no small-message overtaking
        # of a waiting large one.
        over = self._bounded and (bool(self._deferred)
                                  or not self._fits(seg.nbytes))
        if over:
            self.engine.stats.window_full_events += 1
            if self._fail_fast:
                raise WindowFullError(
                    f"node{self.engine.node_id}: optimization window full "
                    f"({len(self.engine.window)} wraps, "
                    f"{self.engine.window.pending_bytes()}B pending, "
                    f"{len(self._deferred)} deferred) under "
                    f"window_policy='fail'"
                )
        # seq=0 is a placeholder: the real per-(dest, flow) sequence number
        # is assigned at admission so a failed submission leaves no hole.
        wrap = PacketWrap(
            dest=dest, flow=flow, tag=tag, seq=0, data=seg,
            priority=priority, allow_reorder=allow_reorder,
            depends_on=depends_on, rail=rail,
            submitted_at=self.engine.sim.now,
            completion=self.engine.sim.event(name=f"send:{dest}/{flow}/{tag}"),
        )
        if over:
            self._deferred.append(wrap)
            self.engine.tracer.emit(self.engine.sim.now,
                                    f"node{self.engine.node_id}.collect",
                                    "defer", dest=dest, flow=flow, tag=tag,
                                    nbytes=seg.nbytes,
                                    queued=len(self._deferred))
            self.engine.poke_watchdog()
            return wrap
        self._admit(wrap)
        return wrap

    def _fits(self, nbytes: int) -> bool:
        """Would one more wrap of ``nbytes`` respect the window caps?

        The byte cap only refuses a *nonempty* window: a single wrap larger
        than ``max_window_bytes`` must still be admissible (alone) or it
        could never be sent.
        """
        window = self.engine.window
        if self._max_wraps and len(window) >= self._max_wraps:
            return False
        return not (self._max_bytes and len(window)
                    and window.pending_bytes() + nbytes > self._max_bytes)

    def _admit(self, wrap: PacketWrap) -> None:
        key = (wrap.dest, wrap.flow)
        wrap.seq = self._seq[key]
        self._seq[key] += 1
        self.engine.window.submit(wrap)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.collect",
                                "submit", dest=wrap.dest, flow=wrap.flow,
                                tag=wrap.tag, seq=wrap.seq,
                                nbytes=wrap.length)
        self.engine.poke_watchdog()
        self.engine.transfer.kick()

    def _drain_deferred(self) -> None:
        """Window space freed: admit deferred submissions, oldest first."""
        while self._deferred and self._fits(self._deferred[0].length):
            self._admit(self._deferred.popleft())

    def cancel_deferred(self, wrap: PacketWrap) -> bool:
        """Remove a still-deferred wrap from the waiter queue.

        A deferred wrap never drew a sequence number, so — unlike a wrap
        cancelled out of the window — no tombstone needs to travel.
        """
        for i, waiting in enumerate(self._deferred):
            if waiting.wrap_id == wrap.wrap_id:
                del self._deferred[i]
                return True
        return False

    @property
    def n_deferred(self) -> int:
        """Submissions waiting for window space (quiesce/diagnostics)."""
        return len(self._deferred)

    # -- session-layer hooks --------------------------------------------------
    def reset_dest(self, dest: int, exc: BaseException) -> None:
        """Drop sequencing and deferred submissions towards a dead peer.

        Restarting the per-``(dest, flow)`` counters is what lets the next
        incarnation's streams begin at seq 0 — the matcher on the other
        side reset symmetrically.  Deferred (never-admitted) submissions
        fail with ``exc``; they never drew a sequence number, so no
        tombstones are owed.
        """
        for key in [k for k in self._seq if k[0] == dest]:
            del self._seq[key]
        kept: deque[PacketWrap] = deque()
        for wrap in self._deferred:
            if wrap.dest != dest:
                kept.append(wrap)
            elif wrap.completion is not None and not wrap.completion.triggered:
                wrap.completion.fail(exc)
                wrap.completion.defuse()
        self._deferred = kept

    def has_deferred_to(self, dest: int) -> bool:
        """Any deferred submission towards ``dest`` (liveness interest)?"""
        return any(w.dest == dest for w in self._deferred)

    def submit_control(
        self, dest: int, item: WireItem, priority: int = CONTROL_PRIORITY
    ) -> PacketWrap:
        """Queue an engine control record (e.g. a rendezvous grant).

        Control wraps carry no payload bytes, never consume a sequence
        number (they bypass the matcher) and travel at maximum priority so
        grants are never stuck behind queued data.  They also bypass the
        window caps: blocking the records that drain the window would
        deadlock it.
        """
        wrap = PacketWrap(
            dest=dest, flow=CONTROL_FLOW, tag=0, seq=0,
            data=VirtualData(0), priority=priority,
            is_control=True, control_item=item,
            submitted_at=self.engine.sim.now,
            completion=self.engine.sim.event(name=f"ctrl:{dest}"),
        )
        self.engine.window.submit(wrap)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.collect",
                                "submit_control", dest=dest,
                                item=type(item).__name__)
        self.engine.poke_watchdog()
        self.engine.transfer.kick()
        return wrap

    def next_seq(self, dest: int, flow: int) -> int:
        """The sequence number the next submit to ``(dest, flow)`` will get.

        Counts only *admitted* submissions; with a bounded window, deferred
        wraps have not drawn their number yet.
        """
        return self._seq[(dest, flow)]

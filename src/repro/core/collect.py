"""The collect layer.

Paper §3.3: "The collect layer is in charge of registering the pieces of
data submitted by the various communication flows of the application as
well as the meta-data necessary in their identification by the receiving
side (tag number, sender id, sequence number).  Once encapsulated, ... the
collected pieces of data are inserted onto a dedicated list for a specific
network technology selected by the application or (by default) on the
common list for automatized load-balancing."

Concretely: :meth:`CollectLayer.submit` wraps user data into a
:class:`~repro.core.packet.PacketWrap` with a fresh per-``(dest, flow)``
sequence number, drops it into the optimization window (dedicated or common
list) and kicks the transfer layer so an idle NIC picks it up immediately —
requests only *accumulate* while the cards are busy (paper §3.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.core.data import SegmentData, as_data
from repro.core.packet import PacketWrap, WireItem
from repro.core.data import VirtualData
from repro.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine

__all__ = ["CollectLayer", "CONTROL_FLOW"]

#: Flow id reserved for engine control traffic (never enters the matcher).
CONTROL_FLOW = -1

#: Priority assigned to control wraps so grants overtake queued data.
CONTROL_PRIORITY = 1_000_000


class CollectLayer:
    """Registers application data pieces and encapsulates their metadata."""

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self._seq: defaultdict[tuple[int, int], int] = defaultdict(int)

    def submit(
        self,
        dest: int,
        data: SegmentData | bytes | bytearray | memoryview | int,
        flow: int = 0,
        tag: int = 0,
        priority: int = 0,
        rail: int | None = None,
        allow_reorder: bool = True,
        depends_on: int | None = None,
    ) -> PacketWrap:
        """Encapsulate one data piece and enter it into the window."""
        if dest == self.engine.node_id:
            raise NetworkError(
                f"node{self.engine.node_id}: self-send not supported "
                "(loopback is not a network)"
            )
        if flow == CONTROL_FLOW:
            raise NetworkError(f"flow {CONTROL_FLOW} is reserved for control")
        seg = as_data(data)
        key = (dest, flow)
        seq = self._seq[key]
        self._seq[key] += 1
        wrap = PacketWrap(
            dest=dest, flow=flow, tag=tag, seq=seq, data=seg,
            priority=priority, allow_reorder=allow_reorder,
            depends_on=depends_on, rail=rail,
            submitted_at=self.engine.sim.now,
            completion=self.engine.sim.event(name=f"send:{dest}/{flow}/{tag}"),
        )
        self.engine.window.submit(wrap)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.collect",
                                "submit", dest=dest, flow=flow, tag=tag,
                                seq=seq, nbytes=seg.nbytes)
        self.engine.transfer.kick()
        return wrap

    def submit_control(
        self, dest: int, item: WireItem, priority: int = CONTROL_PRIORITY
    ) -> PacketWrap:
        """Queue an engine control record (e.g. a rendezvous grant).

        Control wraps carry no payload bytes, never consume a sequence
        number (they bypass the matcher) and travel at maximum priority so
        grants are never stuck behind queued data.
        """
        wrap = PacketWrap(
            dest=dest, flow=CONTROL_FLOW, tag=0, seq=0,
            data=VirtualData(0), priority=priority,
            is_control=True, control_item=item,
            submitted_at=self.engine.sim.now,
            completion=self.engine.sim.event(name=f"ctrl:{dest}"),
        )
        self.engine.window.submit(wrap)
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.collect",
                                "submit_control", dest=dest,
                                item=type(item).__name__)
        self.engine.transfer.kick()
        return wrap

    def next_seq(self, dest: int, flow: int) -> int:
        """The sequence number the next submit to ``(dest, flow)`` will get."""
        return self._seq[(dest, flow)]

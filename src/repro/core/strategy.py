"""Strategy interface, scheduling context, and the extensible registry.

Paper §3.2 proposes "a (dynamically in the future) selectable optimization
function ... selected among an extensible and programmable set of
strategies", and §4 notes that "developing a new strategy only requires to
write a few methods such as an initialisation method, and a request method
which returns the next communication request".  This module is that
contract:

* :class:`Strategy` — subclass, implement :meth:`Strategy.select`.
* :func:`register` — add the class to the strategy database under its
  ``name`` (the "dynamically extended" database from the abstract).
* :func:`create` — instantiate by name with keyword parameters.

``select`` receives a :class:`SchedulingContext` — the full panel of inputs
§3.2 enumerates: the window contents (count, characteristics of each
packet), the nominal/functional characteristics of the underlying network
(the NIC profile), application hints (priority, reorder, dependency
attributes on the wraps), and the current time.  It returns a
:class:`SendPlan` or ``None`` ("nothing useful to send on this NIC now").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.packet import HeaderSpec, PacketWrap, WireItem
from repro.core.window import OptimizationWindow
from repro.errors import StrategyError
from repro.netsim.profiles import NicProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.flowcontrol import FlowControlLayer

__all__ = [
    "SchedulingContext",
    "SendPlan",
    "Strategy",
    "register",
    "create",
    "available_strategies",
    "unregister",
]


@dataclass
class SchedulingContext:
    """Everything a strategy may consult when electing the next request."""

    window: OptimizationWindow
    rail: int
    nic_profile: NicProfile
    hdr: HeaderSpec
    now: float
    src_node: int = -1
    sent_wraps: set[int] = field(default_factory=set)
    #: Credit accounting when ``flow_control="credit"`` is active; ``None``
    #: in the default mode, where strategies plan unconstrained.
    flowcontrol: FlowControlLayer | None = None

    @property
    def rdv_threshold(self) -> int:
        """The eager/rendezvous switch point of this NIC's driver."""
        return self.nic_profile.rdv_threshold

    def eager_budget(self, dest: int) -> tuple[int | None, int | None]:
        """Remaining eager credit ``(bytes, wraps)`` towards ``dest``.

        ``(None, None)`` when flow control is off.  A credit-aware strategy
        caps its aggregate below both numbers; strategies that ignore the
        budget may transiently overdraw by at most one aggregate — the
        flow-control layer then blocks the destination until credit
        returns, so the overdraft is self-correcting.
        """
        if self.flowcontrol is None:
            return (None, None)
        return self.flowcontrol.planning_budget(dest)


@dataclass
class SendPlan:
    """A synthesized physical packet, ready for the transfer layer.

    ``taken`` wraps leave the window and complete when the frame is sent;
    ``announced`` wraps leave the window into the rendezvous-pending table
    (their RdvReq items are part of ``items``).
    """

    dest: int
    items: list[WireItem]
    taken: list[PacketWrap] = field(default_factory=list)
    announced: list[PacketWrap] = field(default_factory=list)

    def validate(self, ctx: SchedulingContext) -> None:
        """Enforce the strategy contracts the engine relies on."""
        if not self.items and not self.announced:
            raise StrategyError("plan with no wire items and no announcements")
        for wrap in self.taken + self.announced:
            if wrap.dest != self.dest:
                raise StrategyError(
                    f"plan mixes destinations: {wrap!r} vs dest={self.dest}"
                )
        eager_payload = sum(w.length for w in self.taken)
        if eager_payload > ctx.rdv_threshold and len(self.taken) > 1:
            raise StrategyError(
                f"aggregate of {eager_payload}B exceeds the rendezvous "
                f"threshold ({ctx.rdv_threshold}B); aggregation must stop "
                "below the switch point (paper section 4)"
            )


class Strategy(ABC):
    """Base class for optimization strategies.

    Subclasses set ``name`` and implement :meth:`select`.  Instances may
    keep tuning parameters but must not keep per-call mutable scheduling
    state (the engine may call them for several NICs interleaved).
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def select(self, ctx: SchedulingContext) -> SendPlan | None:
        """Elect the next request for an idle NIC, or None."""

    def hold_until(self, ctx: SchedulingContext) -> float | None:
        """When to retry after ``select`` returned None despite pending work.

        Latency-favoring strategies never hold (return ``None``); a
        bandwidth-favoring strategy may deliberately leave an idle NIC
        unfed for a bounded time to let more requests accumulate (paper §2:
        "instead favoring the bandwidth may be a better bet").  The
        transfer layer re-pulls at the returned absolute time.
        """
        return None

    def describe(self) -> str:
        """Human-readable parameterization (for reports and examples)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Strategy {self.describe()}>"


_REGISTRY: dict[str, type[Strategy]] = {}


def register(cls: type[Strategy]) -> type[Strategy]:
    """Class decorator: add a strategy to the database.

    Re-registering a name is an error (catch typos and accidental
    shadowing); use :func:`unregister` first to replace deliberately.
    """
    if not issubclass(cls, Strategy):
        raise StrategyError(f"{cls!r} is not a Strategy subclass")
    if not cls.name:
        raise StrategyError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY:
        raise StrategyError(f"strategy {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def unregister(name: str) -> None:
    """Remove a strategy from the database (no-op if absent)."""
    _REGISTRY.pop(name, None)


def create(name: str, **params: Any) -> Strategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None
    return cls(**params)


def available_strategies() -> list[str]:
    """Sorted names currently in the database."""
    return sorted(_REGISTRY)

"""Rendezvous protocol: announce → grant → zero-copy bulk streaming.

Messages above a NIC's rendezvous threshold cannot travel eagerly (the
receiver could not buffer them); instead the sender announces them with a
tiny :class:`~repro.core.packet.RdvReqItem` that carries full matching
metadata.  The announcement flows through the ordinary matcher, so it can
be **aggregated with small segments in the same physical packet** — the
heart of the paper's derived-datatype result (§5.3: small blocks coalesce
"with the rendez-vous requests of the large blocks, hence the large blocks
are directly received at their final destination, and the whole transfer is
made with a zero-copy technique").

Once the receiver has a matching posted receive it returns a grant
(:class:`RdvAckItem`, itself an aggregable high-priority control record).
The granted transfer then streams as :class:`RdvDataItem` chunks pulled by
idle NICs; with a multirail strategy *any* rail may pull the next chunk,
which is how a message splits heterogeneously across networks (§4, §7).
Bulk chunks land at their final destination with no memory copy.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.data import Bytes, SegmentData, VirtualData
from repro.core.packet import PacketWrap, RdvAckItem, RdvDataItem, RdvReqItem
from repro.core.requests import RecvRequest
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import NmadEngine

__all__ = ["RendezvousManager", "RdvSendState", "RdvRecvState"]


class RdvSendState:
    """Sender-side bookkeeping for one announced transfer."""

    __slots__ = ("wrap", "handle", "origin_rail", "granted",
                 "next_offset", "bytes_sent")

    def __init__(self, wrap: PacketWrap, handle: int, origin_rail: int) -> None:
        self.wrap = wrap
        self.handle = handle
        self.origin_rail = origin_rail
        self.granted = False
        self.next_offset = 0      # bytes carved into chunks so far
        self.bytes_sent = 0       # bytes whose frames completed transmission

    @property
    def total(self) -> int:
        return self.wrap.length

    @property
    def fully_carved(self) -> bool:
        return self.next_offset >= self.total


class RdvRecvState:
    """Receiver-side bookkeeping for one granted transfer."""

    __slots__ = ("req", "src", "handle", "total", "received", "pieces", "tag",
                 "_offsets")

    def __init__(
        self, req: RecvRequest, src: int, handle: int, total: int, tag: int = -1
    ) -> None:
        self.req = req
        self.src = src
        self.handle = handle
        self.total = total
        self.tag = tag
        self.received = 0
        self.pieces: list[tuple[int, SegmentData]] = []
        self._offsets: dict[int, int] = {}  # offset -> chunk length landed

    def land(self, offset: int, data: SegmentData) -> bool:
        """Record one chunk; returns ``False`` for an exact duplicate.

        Duplicates arise only under the reliability layer (a chunk whose
        acknowledgement was lost is retransmitted); landing is idempotent
        per offset so reassembly stays byte-exact.
        """
        if offset < 0 or offset + data.nbytes > self.total:
            raise ProtocolError(
                f"rendezvous chunk [{offset}, {offset + data.nbytes}) outside "
                f"transfer of {self.total}B (src={self.src} "
                f"handle={self.handle})"
            )
        if self._offsets.get(offset) == data.nbytes:
            return False  # exact retransmit duplicate
        self._offsets[offset] = data.nbytes
        self.pieces.append((offset, data))
        self.received += data.nbytes
        if self.received > self.total:
            raise ProtocolError(
                f"rendezvous transfer overran: {self.received}B > "
                f"{self.total}B (src={self.src} handle={self.handle})"
            )
        return True

    @property
    def complete(self) -> bool:
        return self.received == self.total

    def assemble(self) -> SegmentData:
        """Reconstruct the full message from the landed chunks."""
        if not self.complete:
            raise ProtocolError("assembling an incomplete rendezvous transfer")
        if any(isinstance(d, VirtualData) for _, d in self.pieces):
            return VirtualData(self.total)
        buf = bytearray(self.total)
        covered = 0
        for offset, data in self.pieces:
            buf[offset:offset + data.nbytes] = data.tobytes()
            covered += data.nbytes
        if covered != self.total:  # overlaps would have tripped land()
            raise ProtocolError("rendezvous chunks do not tile the transfer")
        return Bytes(bytes(buf))


class RendezvousManager:
    """Both halves of the rendezvous state machine for one engine."""

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self._handles = itertools.count(1)
        self._pending: dict[int, RdvSendState] = {}
        self._granted: list[RdvSendState] = []
        self._incoming: dict[tuple[int, int], RdvRecvState] = {}
        # Statistics.
        self.handshakes = 0
        self.bulk_bytes_sent = 0

    # -- sender side --------------------------------------------------------
    def announce(self, wrap: PacketWrap, rail: int) -> RdvReqItem:
        """Turn an oversized wrap into an announcement record."""
        handle = next(self._handles)
        state = RdvSendState(wrap, handle, origin_rail=rail)
        self._pending[handle] = state
        self.handshakes += 1
        return RdvReqItem(
            src=self.engine.node_id, flow=wrap.flow, tag=wrap.tag,
            seq=wrap.seq, handle=handle, nbytes=wrap.length,
        )

    def retract(self, handle: int) -> PacketWrap | None:
        """Undo an announcement whose packet never left the node.

        Only valid while the announcement sits in an *anticipated*
        (pre-synthesized, not yet handed to a NIC) packet: the peer has
        seen nothing, so the transfer simply ceases to exist.  Returns the
        wrap, or ``None`` if the handle is unknown/already granted.
        """
        state = self._pending.pop(handle, None)
        if state is None:
            return None
        self.handshakes -= 1
        return state.wrap

    def fix_origin(self, handle: int, rail: int) -> None:
        """Record the rail an *anticipated* announcement actually left on.

        Prepared packets are synthesized before a NIC is chosen (paper §3.2
        anticipation), so their announcements carry a provisional rail; the
        transfer layer patches it at hand-over time so non-multirail bulk
        streaming stays on the announcing rail.
        """
        state = self._pending.get(handle)
        if state is not None:
            state.origin_rail = rail

    def on_ack(self, ack: RdvAckItem) -> None:
        """Receiver granted: move the transfer to the streaming queue."""
        state = self._pending.pop(ack.handle, None)
        if state is None:
            if self.engine.params.reliability != "off":
                # A grant replayed across rails after failover; the first
                # copy already moved the transfer to streaming.
                return
            raise ProtocolError(
                f"node{self.engine.node_id}: rendezvous ACK for unknown "
                f"handle {ack.handle} (from node {ack.src})"
            )
        state.granted = True
        self._granted.append(state)
        self.engine.transfer.kick()

    def abort(self, handle: int, exc: BaseException) -> None:
        """Fail an announced-or-granted transfer (reliability error path)."""
        state = self._pending.pop(handle, None)
        if state is None:
            for s in self._granted:
                if s.handle == handle:
                    state = s
                    self._granted.remove(s)
                    break
        if state is None:
            return
        completion = state.wrap.completion
        if completion is not None and not completion.triggered:
            completion.fail(exc)
            completion.defuse()
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.rendezvous",
                                "abort", handle=handle)

    def reroute_rail(self, rail: int, new_rail: int) -> None:
        """Re-home granted transfers whose origin rail was quarantined.

        Chunks not yet carved then stream from ``new_rail`` (or any rail,
        under a multirail strategy); chunks already in flight are
        retransmitted by the reliability layer itself.
        """
        for state in self._granted:
            if state.origin_rail == rail:
                state.origin_rail = new_rail

    def next_chunk(
        self, rail: int, multirail: bool
    ) -> tuple[RdvSendState, RdvDataItem] | None:
        """Carve the next bulk chunk an idle NIC on ``rail`` may stream."""
        for state in self._granted:
            if not multirail and state.origin_rail != rail:
                continue
            if state.wrap.rail is not None and state.wrap.rail != rail:
                continue  # application pinned this transfer to one rail
            chunk = min(self.engine.params.rdv_chunk_bytes,
                        state.total - state.next_offset)
            item = RdvDataItem(
                src=self.engine.node_id, handle=state.handle,
                offset=state.next_offset, total=state.total,
                data=state.wrap.data.slice(state.next_offset, chunk),
            )
            state.next_offset += chunk
            if state.fully_carved:
                self._granted.remove(state)
            return state, item
        return None

    def has_bulk(self, rail: int, multirail: bool) -> bool:
        """Is there a granted transfer this rail may stream from?"""
        return any(
            (multirail or s.origin_rail == rail)
            and (s.wrap.rail is None or s.wrap.rail == rail)
            for s in self._granted
        )

    def chunk_sent(self, state: RdvSendState, item: RdvDataItem) -> None:
        """A bulk chunk's frame finished transmission (or was acked)."""
        state.bytes_sent += item.data.nbytes
        self.bulk_bytes_sent += item.data.nbytes
        if state.bytes_sent == state.total:
            completion = state.wrap.completion
            if completion is not None and not completion.triggered:
                completion.succeed(state.wrap)

    def chunk_failed(self, state: RdvSendState, item: RdvDataItem,
                     exc: BaseException) -> None:
        """A bulk chunk exhausted its retransmit budget: fail the send."""
        if state in self._granted:
            self._granted.remove(state)
        completion = state.wrap.completion
        if completion is not None and not completion.triggered:
            completion.fail(exc)
            completion.defuse()
        self.engine.tracer.emit(self.engine.sim.now,
                                f"node{self.engine.node_id}.rendezvous",
                                "chunk_failed", handle=state.handle,
                                offset=item.offset)

    # -- receiver side -----------------------------------------------------------
    def grant(self, req_item: RdvReqItem, recv_req: RecvRequest) -> None:
        """A matching receive exists: set up landing and send the grant."""
        key = (req_item.src, req_item.handle)
        if key in self._incoming:
            if self.engine.params.reliability != "off":
                return  # replayed announcement already granted
            raise ProtocolError(
                f"node{self.engine.node_id}: duplicate rendezvous grant for "
                f"{key}"
            )
        self._incoming[key] = RdvRecvState(
            recv_req, src=req_item.src, handle=req_item.handle,
            total=req_item.nbytes, tag=req_item.tag,
        )
        ack = RdvAckItem(src=self.engine.node_id, handle=req_item.handle)
        self.engine.collect.submit_control(dest=req_item.src, item=ack)

    def on_data(self, item: RdvDataItem) -> None:
        """A bulk chunk landed (zero-copy — no memory charge)."""
        key = (item.src, item.handle)
        state = self._incoming.get(key)
        if state is None:
            if self.engine.params.reliability != "off":
                # Retransmitted chunk of an already-assembled transfer.
                self.engine.stats.duplicates_suppressed += 1
                return
            raise ProtocolError(
                f"node{self.engine.node_id}: bulk data for unknown "
                f"rendezvous {key}"
            )
        if not state.land(item.offset, item.data):
            self.engine.stats.duplicates_suppressed += 1
            return
        if state.complete:
            del self._incoming[key]
            state.req.finish(state.assemble(), src=item.src, tag=state.tag)

    # -- session-layer hooks --------------------------------------------------
    def fail_peer(self, peer: int, exc: BaseException) -> None:
        """Fail every transfer — either half — bound to a dead peer.

        Announced and granted sends towards ``peer`` abort (their
        completions fail with ``exc``); half-landed incoming transfers
        from ``peer`` fail their receive.  A re-sent message from the
        peer's next incarnation starts a fresh handshake with a fresh
        handle, so partial reassembly state must never survive an epoch.
        """
        for handle in [h for h, s in self._pending.items()
                       if s.wrap.dest == peer]:
            self.abort(handle, exc)
        for state in [s for s in self._granted if s.wrap.dest == peer]:
            self.abort(state.handle, exc)
        for key in [k for k in self._incoming if k[0] == peer]:
            state = self._incoming.pop(key)
            if not state.req.done.triggered:
                state.req.done.fail(exc)
                state.req.done.defuse()
            self.engine.tracer.emit(self.engine.sim.now,
                                    f"node{self.engine.node_id}.rendezvous",
                                    "fail_incoming", handle=state.handle,
                                    src=peer, received=state.received)

    def involves_peer(self, peer: int) -> bool:
        """Any live transfer with ``peer`` (liveness interest)?"""
        return (
            any(s.wrap.dest == peer for s in self._pending.values())
            or any(s.wrap.dest == peer for s in self._granted)
            or any(k[0] == peer for k in self._incoming)
        )

    # -- introspection -------------------------------------------------------
    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_granted(self) -> int:
        return len(self._granted)

    @property
    def n_incoming(self) -> int:
        return len(self._incoming)

"""Elementary optimizing operations ("tactics").

Paper §3.2: "Each tactic applies some elementary optimizing operations
selected from the panel of usual operations toward some particular
optimizing goal."  Strategies compose these pure functions; keeping them
free of engine state makes them individually property-testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.packet import PacketWrap

__all__ = [
    "deps_satisfied",
    "first_sendable_dest",
    "reorder_by_priority",
    "plan_aggregate",
    "AggregateChoice",
]


def deps_satisfied(
    wrap: PacketWrap, sent: set[int], in_plan: Iterable[PacketWrap] = ()
) -> bool:
    """True if ``wrap``'s dependency (if any) was sent or precedes it in plan.

    A wrap may declare ``depends_on`` (paper §3.2's "dependency attributes",
    e.g. an RPC service id that must leave before its arguments).  The
    dependency is satisfied once that wrap has physically left, or if it is
    scheduled earlier inside the packet currently being synthesized.
    """
    if wrap.depends_on is None:
        return True
    if wrap.depends_on in sent:
        return True
    return any(w.wrap_id == wrap.depends_on for w in in_plan)


def first_sendable_dest(
    wraps: Iterable[PacketWrap], sent: set[int]
) -> int | None:
    """Destination of the oldest wrap whose dependencies are satisfied.

    Physical packets are point-to-point, so a plan targets one node; the
    fair choice is the head of the submission order.
    """
    for wrap in wraps:
        if deps_satisfied(wrap, sent):
            return wrap.dest
    return None


def reorder_by_priority(wraps: Sequence[PacketWrap]) -> list[PacketWrap]:
    """Stable priority ordering that never overtakes a pinned wrap.

    Wraps with ``allow_reorder=False`` act as barriers: the relative order
    of a barrier with *any* earlier wrap is preserved, and nothing crosses
    it.  Within each run between barriers, wraps sort by descending
    priority, ties keeping submission order (stable sort).
    """
    out: list[PacketWrap] = []
    run: list[PacketWrap] = []
    for wrap in wraps:
        if wrap.allow_reorder:
            run.append(wrap)
        else:
            run.sort(key=lambda w: -w.priority)
            out.extend(run)
            run = []
            out.append(wrap)
    run.sort(key=lambda w: -w.priority)
    out.extend(run)
    return out


class AggregateChoice:
    """Result of :func:`plan_aggregate`: which wraps go where."""

    __slots__ = ("eager", "announce")

    def __init__(self) -> None:
        self.eager: list[PacketWrap] = []     # sent as data segments now
        self.announce: list[PacketWrap] = []  # sent as rendezvous requests

    @property
    def empty(self) -> bool:
        return not self.eager and not self.announce

    def all_wraps(self) -> list[PacketWrap]:
        return self.eager + self.announce


def plan_aggregate(
    candidates: Sequence[PacketWrap],
    dest: int,
    rdv_threshold: int,
    sent: set[int],
    max_items: int | None = None,
    scan_past_blockage: bool = True,
    max_eager_bytes: int | None = None,
    max_eager_items: int | None = None,
) -> AggregateChoice:
    """Choose wraps to coalesce into one physical packet towards ``dest``.

    This is the paper's aggregation tactic: "accumulates communication
    requests as long as the cumulated length does not require to switch to
    the rendez-vous protocol" (§4).  Wraps longer than ``rdv_threshold``
    become rendezvous *announcements* — tiny control records that ride along
    with the aggregated small segments (the §5.3 datatype optimization
    coalesces small blocks "with the rendez-vous requests of the large
    blocks").

    With ``scan_past_blockage`` the tactic keeps scanning after a wrap that
    does not fit, picking up later small wraps or announcements when
    reordering is permitted — "reordered (to maximize the number of
    aggregation operations)" (§7).  Scanning stops at the first
    non-reorderable blocked wrap to honour ordering pins.

    ``max_eager_bytes`` / ``max_eager_items`` are the credit flow-control
    allowance (:meth:`~repro.core.strategy.SchedulingContext.eager_budget`):
    eager data is additionally capped below the remaining credit towards
    ``dest``.  Engine control records are credit-exempt (they carry the
    grants that replenish the budget), and a wrap the allowance excludes
    behaves exactly like one that does not fit the rendezvous budget.
    """
    if rdv_threshold <= 0:
        raise ValueError(f"bad rendezvous threshold {rdv_threshold}")
    choice = AggregateChoice()
    budget = rdv_threshold
    if max_eager_bytes is not None and max_eager_bytes < budget:
        budget = max_eager_bytes
    used = 0
    n_credit = 0  # eager wraps that will consume a credit (non-control)
    blocked = False
    for wrap in candidates:
        if wrap.dest != dest:
            continue
        if not deps_satisfied(wrap, sent, in_plan=choice.all_wraps()):
            # Unsendable; it also blocks later wraps unless scanning is on.
            if not scan_past_blockage:
                break
            blocked = True
            continue
        if blocked and not wrap.allow_reorder:
            # This wrap refuses to overtake the blocked one: stop here.
            break
        if wrap.length > rdv_threshold:
            choice.announce.append(wrap)
        elif wrap.is_control or wrap.credit_exempt:
            # Control records carry the replenishing grants; NACK resends
            # fill the sequence hole everything behind them waits on.
            choice.eager.append(wrap)
        elif (used + wrap.length <= budget
              and (max_eager_items is None or n_credit < max_eager_items)):
            choice.eager.append(wrap)
            used += wrap.length
            n_credit += 1
        elif not scan_past_blockage:
            break
        else:
            blocked = True
        if max_items is not None and len(choice.all_wraps()) >= max_items:
            break
    return choice

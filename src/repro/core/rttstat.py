"""Per-peer round-trip-time estimation for the adaptive timing layer.

The reliability, session, and flow-control layers all run on virtual-time
deadlines.  Through PR 9 those were *static* knobs (``rel_timeout_us``,
``hb_timeout_us``, grant/NACK delays), which forces the operator to
hand-budget for path conditions the transport could simply measure — the
documented fat-tree failure mode: the retry clock starts at transmit
completion and cannot see switch-port queueing, so a static RTO sized for
a flat mesh spuriously quarantines healthy rails on a switched fabric.

:class:`RttEstimator` is the measurement core: Jacobson-style EWMA of
smoothed RTT and RTT variance (RFC 6298 constants, ``alpha=1/8``,
``beta=1/4``) with the retransmission-ambiguity rule due to Karn applied
by the *caller* (the reliability layer only feeds samples from frames
that were transmitted exactly once and never hedged, so an ack can always
be attributed to one transmission).  Samples are kept at two
granularities:

* per ``(peer, rail)`` — rails can have wildly different media (MX vs
  Quadrics) and fault exposure; the hedging decision ("has the original
  rail blown past its own tail?") needs the per-rail view;
* per peer (every eligible sample, any rail) — the retransmit timeout,
  session deadlines, and grant/NACK pacing act on the peer's channel,
  which spans rails; mixing rails inflates the variance term, which only
  makes the derived timeout more conservative, never trigger-happy.

The derived retransmit timeout is ``headroom * (srtt + 4 * rttvar)``
clamped into ``[floor, ceiling]``; until a peer has accumulated
:data:`RTO_MIN_SAMPLES` measurements it is the ceiling (RFC 6298's
"conservative until measured" stance, hardened: trusting the very first
sample is how a pre-congestion 20us RTT turns into a 116us RTO right as
a megabyte burst builds millisecond switch queues — the estimator then
starves, because every spurious retransmit is Karn-ambiguous, and the
healthy rail gets quarantined.  In virtual time a large early RTO costs
nothing but simulated microseconds).  The hedge
delay is a p99-ish tail estimate ``srtt + HEDGE_DEVS * rttvar``, not
floored (it must fire *before* the RTO to be useful), and is only
offered once a rail has :data:`HEDGE_MIN_SAMPLES` samples — hedging on a
cold estimate would just double-send everything.

Pure bookkeeping: no simulator access, no wall clock, no randomness —
the module is trivially deterministic and the Hypothesis suite in
``tests/test_rttstat.py`` pins the convergence envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RttEstimator", "RttState", "ALPHA", "BETA", "RTO_DEVS",
           "HEDGE_DEVS", "HEDGE_MIN_SAMPLES", "RTO_MIN_SAMPLES"]

#: EWMA gains (RFC 6298): srtt tracks slowly, rttvar tracks faster.
ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
#: Deviation multiplier in the RTO formula (``srtt + 4 * rttvar``).
RTO_DEVS = 4.0
#: Deviation multiplier for the hedge (tail) delay — deliberately tighter
#: than the RTO: a hedge is cheap (duplicate suppression absorbs it), a
#: retransmit pollutes the loss accounting.
HEDGE_DEVS = 3.0
#: Samples a rail must accumulate before hedging is offered on it.
HEDGE_MIN_SAMPLES = 8
#: Samples a peer must accumulate before the measured RTO (and the other
#: adaptive deadlines derived from it) is trusted over the ceiling.
RTO_MIN_SAMPLES = 8


@dataclass(slots=True)
class RttState:
    """One EWMA track: smoothed RTT, variance, and the sample count."""

    srtt_us: float
    rttvar_us: float
    samples: int

    def update(self, rtt_us: float) -> None:
        if self.samples == 0:
            # RFC 6298 initialization: first measurement seeds both terms.
            self.srtt_us = rtt_us
            self.rttvar_us = rtt_us / 2.0
        else:
            self.rttvar_us += BETA * (abs(self.srtt_us - rtt_us)
                                      - self.rttvar_us)
            self.srtt_us += ALPHA * (rtt_us - self.srtt_us)
        self.samples += 1


class RttEstimator:
    """Measured path timing for one engine: per-peer and per-rail tracks.

    ``floor_us``/``ceiling_us`` clamp every derived timeout; ``headroom``
    multiplies the Jacobson RTO to absorb fabric queueing that the sample
    stream has not seen yet (a freshly-congested switch port delays
    *future* frames, not the ones that produced the current estimate).
    """

    __slots__ = ("floor_us", "ceiling_us", "headroom", "_peers", "_rails")

    def __init__(self, floor_us: float, ceiling_us: float,
                 headroom: float) -> None:
        if floor_us <= 0:
            raise ValueError("RTO floor must be positive")
        if ceiling_us < floor_us:
            raise ValueError("RTO ceiling must be >= floor")
        if headroom < 1.0:
            raise ValueError("RTO headroom must be >= 1")
        self.floor_us = floor_us
        self.ceiling_us = ceiling_us
        self.headroom = headroom
        self._peers: dict[int, RttState] = {}
        self._rails: dict[tuple[int, int], RttState] = {}

    # -- sampling ----------------------------------------------------------
    def sample(self, peer: int, rail: int, rtt_us: float) -> None:
        """Feed one eligible ack measurement (caller enforces Karn's rule:
        never a retransmitted or hedged frame)."""
        if rtt_us < 0:
            raise ValueError(f"negative RTT sample {rtt_us}")
        peer_state = self._peers.get(peer)
        if peer_state is None:
            peer_state = self._peers[peer] = RttState(0.0, 0.0, 0)
        peer_state.update(rtt_us)
        key = (peer, rail)
        rail_state = self._rails.get(key)
        if rail_state is None:
            rail_state = self._rails[key] = RttState(0.0, 0.0, 0)
        rail_state.update(rtt_us)

    # -- derived timeouts --------------------------------------------------
    def _clamp(self, value_us: float) -> float:
        return min(self.ceiling_us, max(self.floor_us, value_us))

    def warm(self, peer: int) -> bool:
        """True once the peer's estimate is trustworthy — the gate every
        adaptive consumer (RTO, session deadlines, NACK pacing) shares."""
        st = self._peers.get(peer)
        return st is not None and st.samples >= RTO_MIN_SAMPLES

    def rto_us(self, peer: int) -> float:
        """Retransmit timeout for the peer's channel (any rail).

        ``headroom * (srtt + 4 * rttvar)`` clamped to the configured
        bounds; the ceiling until the peer is :meth:`warm` — a couple of
        pre-congestion samples must not arm a hair-trigger retry clock.
        """
        st = self._peers.get(peer)
        if st is None or st.samples < RTO_MIN_SAMPLES:
            return self.ceiling_us
        return self._clamp(
            self.headroom * (st.srtt_us + RTO_DEVS * st.rttvar_us))

    def global_rto_us(self) -> float:
        """Most conservative per-peer RTO (peer-agnostic derivations such
        as the half-open probe window use it); the ceiling while cold."""
        rtos = [self.rto_us(peer) for peer, st in self._peers.items()
                if st.samples]
        return max(rtos) if rtos else self.ceiling_us

    def hedge_delay_us(self, peer: int, rail: int) -> float | None:
        """Tail threshold after which a hedge on another rail is worthwhile;
        ``None`` while the rail's estimate is too cold to trust.

        Deliberately *not* floored like the RTO: the floor exists to stop
        a trigger-happy retransmit clock, but a hedge is not a retransmit
        — it must beat the RTO to be useful, so a warm fast rail hedges at
        its measured tail (``srtt + 3 * rttvar``), capped at the ceiling.
        """
        st = self._rails.get((peer, rail))
        if st is None or st.samples < HEDGE_MIN_SAMPLES:
            return None
        return min(self.ceiling_us, st.srtt_us + HEDGE_DEVS * st.rttvar_us)

    # -- introspection -----------------------------------------------------
    def srtt_us(self, peer: int) -> float | None:
        st = self._peers.get(peer)
        return st.srtt_us if st is not None and st.samples else None

    def rttvar_us(self, peer: int) -> float | None:
        st = self._peers.get(peer)
        return st.rttvar_us if st is not None and st.samples else None

    def samples(self, peer: int) -> int:
        st = self._peers.get(peer)
        return st.samples if st is not None else 0

    def snapshot(self) -> dict[int, dict[str, float | int]]:
        """Per-peer estimate dump for ``repro report`` (stable key order)."""
        out: dict[int, dict[str, float | int]] = {}
        for peer in sorted(self._peers):
            st = self._peers[peer]
            if not st.samples:
                continue
            out[peer] = {
                "srtt_us": st.srtt_us,
                "rttvar_us": st.rttvar_us,
                "rto_us": self.rto_us(peer),
                "samples": st.samples,
            }
        return out

    def forget_peer(self, peer: int) -> None:
        """Drop a peer's history (teardown / epoch change): the next
        incarnation's path may be nothing like the old one's."""
        self._peers.pop(peer, None)
        for key in [k for k in self._rails if k[0] == peer]:
            del self._rails[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RttEstimator peers={len(self._peers)} "
                f"clamp=[{self.floor_us:g},{self.ceiling_us:g}]us "
                f"headroom={self.headroom:g}>")

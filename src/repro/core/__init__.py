"""The NewMadeleine communication scheduling engine (the paper's contribution)."""

import repro.core.strategies  # noqa: F401  (registers the built-in strategies)
from repro.core.data import Bytes, SegmentData, VirtualData, as_data
from repro.core.engine import EngineParams, EngineStats, NmadEngine
from repro.core.flowcontrol import FlowControlLayer
from repro.core.interface import (
    PackMessage,
    UnpackMessage,
    begin_pack,
    begin_unpack,
)
from repro.core.packet import (
    CancelItem,
    HeaderSpec,
    PacketWrap,
    PhysPacket,
    RdvAckItem,
    RdvDataItem,
    RdvReqItem,
    SegItem,
    WireItem,
)
from repro.core.protocols import NicLike, StrategyLike, TacticLike
from repro.core.reliability import ReliabilityLayer
from repro.core.requests import ANY, RecvRequest, SendRequest
from repro.core.sessions import SessionLayer
from repro.core.strategies import (
    AdaptiveStrategy,
    AggregationStrategy,
    BandwidthStrategy,
    FifoStrategy,
    MultirailStrategy,
)
from repro.core.strategy import (
    SchedulingContext,
    SendPlan,
    Strategy,
    available_strategies,
    create,
    register,
    unregister,
)
from repro.core.window import OptimizationWindow

__all__ = [
    "ANY",
    "CancelItem",
    "AdaptiveStrategy",
    "AggregationStrategy",
    "BandwidthStrategy",
    "Bytes",
    "EngineParams",
    "EngineStats",
    "FifoStrategy",
    "FlowControlLayer",
    "HeaderSpec",
    "MultirailStrategy",
    "NicLike",
    "NmadEngine",
    "OptimizationWindow",
    "PackMessage",
    "PacketWrap",
    "PhysPacket",
    "RdvAckItem",
    "RdvDataItem",
    "RdvReqItem",
    "RecvRequest",
    "ReliabilityLayer",
    "SchedulingContext",
    "SegItem",
    "SegmentData",
    "SendPlan",
    "SendRequest",
    "SessionLayer",
    "Strategy",
    "StrategyLike",
    "TacticLike",
    "UnpackMessage",
    "VirtualData",
    "WireItem",
    "as_data",
    "available_strategies",
    "begin_pack",
    "begin_unpack",
    "create",
    "register",
    "unregister",
]

"""Shared machinery for the baseline MPI models.

The baselines are *executable models of documented behaviour*, run over the
exact same simulated NICs as the engine.  The behaviours come from the
paper itself:

* **Direct mapping** (§2, §6): "carefully designed to directly map basic
  point-to-point requests onto the underlying low-level interfaces" — each
  ``isend`` immediately becomes one NIC command; there is no optimization
  window, no coalescing across requests, "no message reordering or
  multiplexing" (§6 on MPICH2-Nemesis).

* **Efficient pipelining** (§5.2): "the MPICH-MX and MPICH-QUADRICS
  implementations are able to pipeline the transfer of a series of messages
  in a very efficient manner" — queued frames stream back-to-back paying
  only the NIC's inter-frame gap.

* **Eager/rendezvous switch**: small messages travel eagerly (one receive-
  side copy out of the driver buffer); large contiguous messages handshake
  and then stream zero-copy.

* **Datatype pack** (§5.3, reference [5]): "MPICH copies all the data
  fragments into a new contiguous buffer and sends the obtained buffer in
  an unique transaction ... Data are received in a temporary memory area
  before being dispatched to their final destination."  The model charges
  the sender the full pack, ships the packed stream, and charges the
  receiver the full unpack — both proportional to size.  A subclass knob
  (``dt_pipeline_chunk``) turns this into the chunked, overlapped variant
  we attribute to OpenMPI (the paper: "in the absence of related
  documentation, we guess that OpenMPI has the same behaviour" — but
  measures it distinctly faster than MPICH, which chunk overlap explains).

The same request/communicator/datatype objects as MAD-MPI are used, so the
benchmark harness drives every backend through one interface.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.data import SegmentData, VirtualData, as_data
from repro.core.matching import Incoming, Matcher
from repro.core.packet import RdvReqItem, SegItem
from repro.core.requests import ANY, RecvRequest
from repro.errors import MpiError, ProtocolError
from repro.madmpi.comm import Communicator
from repro.madmpi.datatype import Datatype
from repro.madmpi.request import MpiRequest
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.node import Node
from repro.sim import Tracer

__all__ = ["BaselineParams", "BaselineMpi"]

BufferLike = SegmentData | bytes | bytearray | memoryview | int


@dataclass(frozen=True)
class BaselineParams:
    """Tuning constants of one baseline implementation."""

    name: str
    sw_overhead_us: float        # per-message software cost, each side
    header_bytes: int            # per-message wire header
    eager_threshold: int         # eager/rendezvous switch point
    rdv_chunk_bytes: int = 512 * 1024
    dt_pipeline_chunk: int | None = None  # None = pack-all-then-send

    def __post_init__(self) -> None:
        if self.sw_overhead_us < 0 or self.header_bytes < 0:
            raise ValueError(f"negative constant in {self.name!r}")
        if self.eager_threshold <= 0 or self.rdv_chunk_bytes <= 0:
            raise ValueError(f"bad threshold in {self.name!r}")
        if self.dt_pipeline_chunk is not None and self.dt_pipeline_chunk <= 0:
            raise ValueError(f"bad pipeline chunk in {self.name!r}")


# ---------------------------------------------------------------------------
# wire payloads (the baselines' private frame format)
# ---------------------------------------------------------------------------

@dataclass
class _Eager:
    src: int
    flow: int
    tag: int
    seq: int
    data: SegmentData
    unpack_blocks: list[int] | None = None  # packed datatype stream


@dataclass
class _RdvReq:
    src: int
    flow: int
    tag: int
    seq: int
    handle: int
    nbytes: int
    unpack_blocks: list[int] | None = None


@dataclass
class _RdvAck:
    src: int
    handle: int


@dataclass
class _RdvData:
    src: int
    handle: int
    offset: int
    total: int
    data: SegmentData


class _RdvSend:
    """Sender-side state of one rendezvous transfer."""

    __slots__ = ("dest", "data", "total", "next_offset", "bytes_done",
                 "request", "per_chunk_pack_us", "chunk_size")

    def __init__(self, dest: int, data: SegmentData, request: MpiRequest,
                 per_chunk_pack_us: float = 0.0) -> None:
        self.dest = dest
        self.data = data
        self.total = data.nbytes
        self.next_offset = 0
        self.bytes_done = 0
        self.request = request
        self.per_chunk_pack_us = per_chunk_pack_us


class _RdvRecv:
    """Receiver-side state of one rendezvous transfer."""

    __slots__ = ("req", "total", "received", "pieces", "tag", "src",
                 "unpack_blocks", "unpack_free_at")

    def __init__(self, req: RecvRequest, total: int, tag: int, src: int,
                 unpack_blocks: list[int] | None) -> None:
        self.req = req
        self.total = total
        self.received = 0
        self.pieces: list[tuple[int, SegmentData]] = []
        self.tag = tag
        self.src = src
        self.unpack_blocks = unpack_blocks
        self.unpack_free_at = 0.0


class BaselineMpi:
    """One rank of a baseline MPI implementation (rail 0 only).

    Subclasses provide ``params`` via the constructor; the class itself is
    fully functional and is what the tests exercise directly.
    """

    backend_name = "baseline"

    def __init__(self, node: Node, params: BaselineParams,
                 world: Communicator, tracer: Tracer | None = None) -> None:
        self.node = node
        self.sim = node.sim
        self.params = params
        self.world = world
        self.rank = world.rank_of(node.node_id)
        self.tracer = tracer if tracer is not None else node.tracer
        self.nic = node.nic(0)
        self.nic.set_receive_handler(self._on_frame)
        self._seq: defaultdict[tuple[int, int], int] = defaultdict(int)
        self._handles = itertools.count(1)
        self._rdv_pending: dict[int, _RdvSend] = {}
        self._rdv_incoming: dict[tuple[int, int], _RdvRecv] = {}
        self.matcher = Matcher(self._on_match, tracer=self.tracer,
                               name=f"{params.name}.node{node.node_id}.matcher")
        # Statistics mirroring EngineStats where meaningful.
        self.frames_sent = 0
        self.rdv_handshakes = 0

    # ------------------------------------------------------------------ send
    def isend(
        self,
        data: BufferLike,
        dest: int,
        tag: int = 0,
        comm: Communicator | None = None,
        datatype: Datatype | None = None,
        priority: int = 0,  # accepted for interface parity; ignored
    ) -> MpiRequest:
        """Nonblocking send: immediately mapped onto NIC commands."""
        comm = comm if comm is not None else self.world
        dest_node = comm.node_of(dest)
        if dest_node == self.node.node_id:
            raise MpiError(f"{self.params.name}: self-send not supported")
        if datatype is not None:
            return self._isend_typed(data, dest_node, tag, comm, datatype)
        seg = as_data(data)
        return self._isend_stream(seg, dest_node, tag, comm.id,
                                  unpack_blocks=None, pack_delay_us=0.0)

    def _isend_stream(
        self,
        seg: SegmentData,
        dest_node: int,
        tag: int,
        flow: int,
        unpack_blocks: list[int] | None,
        pack_delay_us: float,
        pipeline_chunk: int | None = None,
    ) -> MpiRequest:
        """Send a contiguous byte stream (raw message or packed datatype)."""
        seq = self._seq[(dest_node, flow)]
        self._seq[(dest_node, flow)] += 1
        req = MpiRequest(self.sim.event(), kind="send")
        if seg.nbytes <= self.params.eager_threshold:
            msg = _Eager(src=self.node.node_id, flow=flow, tag=tag, seq=seq,
                         data=seg, unpack_blocks=unpack_blocks)
            wire = self.params.header_bytes + seg.nbytes
            frame = Frame(src_node=self.node.node_id, dst_node=dest_node,
                          kind=FrameKind.DATA, wire_size=wire, payload=msg,
                          payload_size=seg.nbytes)
            if pack_delay_us > 0:
                self.sim.schedule(
                    pack_delay_us, lambda: self._post(frame, req))
            else:
                self._post(frame, req)
            return req
        # Rendezvous path.
        handle = next(self._handles)
        per_chunk_pack = 0.0
        if pipeline_chunk is not None:
            # Chunked pack/send overlap: the pack cost is paid per chunk on
            # the critical path of injecting that chunk.
            n_chunks = -(-seg.nbytes // pipeline_chunk)
            per_chunk_pack = pack_delay_us / max(n_chunks, 1)
            pack_delay_us = 0.0  # nothing is packed up front
        state = _RdvSend(dest_node, seg, req, per_chunk_pack_us=per_chunk_pack)
        if pipeline_chunk is not None:
            state_chunk = pipeline_chunk
        else:
            state_chunk = self.params.rdv_chunk_bytes
        # Stash the chunk size on the state via closure in _stream_granted.
        self._rdv_pending[handle] = state
        self.rdv_handshakes += 1
        msg = _RdvReq(src=self.node.node_id, flow=flow, tag=tag, seq=seq,
                      handle=handle, nbytes=seg.nbytes,
                      unpack_blocks=unpack_blocks)
        frame = Frame(src_node=self.node.node_id, dst_node=dest_node,
                      kind=FrameKind.RDV_REQ,
                      wire_size=self.params.header_bytes + 24, payload=msg,
                      payload_size=0)
        state.chunk_size = state_chunk  # type: ignore[attr-defined]
        if pack_delay_us > 0:
            self.sim.schedule(pack_delay_us, lambda: self._post(frame, None))
        else:
            self._post(frame, None)
        return req

    def _isend_typed(self, data: BufferLike, dest_node: int, tag: int,
                     comm: Communicator, datatype: Datatype) -> MpiRequest:
        """Derived datatype: pack into a contiguous stream, then send it."""
        blocks = datatype.flatten()
        if not blocks:
            raise MpiError("cannot send an empty datatype")
        lengths = [l for _, l in blocks]
        total = sum(lengths)
        pack_delay = self.node.memory.pack_time(lengths)
        # The packed stream is a fresh contiguous buffer; content-accurate
        # packing is only needed when the caller gave real bytes.
        seg = as_data(data)
        if isinstance(seg, VirtualData):
            packed: SegmentData = VirtualData(total)
        else:
            from repro.core.data import Bytes
            packed = Bytes(datatype.pack(seg.tobytes()))
        return self._isend_stream(
            packed, dest_node, tag, comm.id, unpack_blocks=lengths,
            pack_delay_us=pack_delay,
            pipeline_chunk=self.params.dt_pipeline_chunk,
        )

    def _post(self, frame: Frame, req: MpiRequest | None) -> None:
        self.frames_sent += 1
        done = self.nic.post_send(frame, cpu_gap_us=self.params.sw_overhead_us)
        if req is not None:
            done.add_callback(lambda _e: req.done.succeed(req)
                              if not req.done.triggered else None)

    # -------------------------------------------------------------- receive
    def irecv(
        self,
        source: int = ANY,
        tag: int = ANY,
        comm: Communicator | None = None,
        nbytes: int | None = None,
        datatype: Datatype | None = None,
    ) -> MpiRequest:
        """Post a receive.  Typed receives land packed and pay the unpack."""
        comm = comm if comm is not None else self.world
        src_node = ANY if source == ANY else comm.node_of(source)
        capacity = nbytes
        if datatype is not None:
            capacity = datatype.size
        sub = RecvRequest(src=src_node, flow=comm.id, tag=tag,
                          capacity=capacity, done=self.sim.event(),
                          posted_at=self.sim.now)
        req = MpiRequest(self.sim.event(), kind="recv", datatype=datatype)

        def _finish(evt):
            if not evt.ok:
                evt.defuse()
                exc = evt.exception
                assert exc is not None
                req.done.fail(exc)
                return
            assert sub.actual_src is not None
            req.data = sub.data
            if datatype is not None and sub.data is not None:
                req.block_data = self._split_blocks(sub.data, datatype)
            req.set_status(source=comm.rank_of(sub.actual_src),
                           tag=sub.actual_tag, count=sub.actual_len)
            req.done.succeed(req)

        sub.done.add_callback(_finish)
        self.matcher.post(sub)
        return req

    @staticmethod
    def _split_blocks(data: SegmentData, datatype: Datatype) -> list[SegmentData]:
        """Cut the packed stream back into datatype blocks (post-unpack view)."""
        out: list[SegmentData] = []
        cursor = 0
        for _, length in datatype.flatten():
            out.append(data.slice(cursor, length))
            cursor += length
        return out

    # -- probing (same semantics as MAD-MPI) --------------------------------
    def iprobe(self, source: int = ANY, tag: int = ANY,
               comm: Communicator | None = None):
        """Nonblocking probe: (source_rank, tag, nbytes) or None."""
        comm = comm if comm is not None else self.world
        src_node = ANY if source == ANY else comm.node_of(source)
        inc = self.matcher.peek(src_node, comm.id, tag)
        if inc is None:
            return None
        return comm.rank_of(inc.src), inc.tag, inc.nbytes

    def probe(self, source: int = ANY, tag: int = ANY,
              comm: Communicator | None = None):
        """Blocking probe (process style)."""
        comm = comm if comm is not None else self.world
        src_node = ANY if source == ANY else comm.node_of(source)
        event = self.sim.event(name=f"probe:{source}/{tag}")
        self.matcher.watch(src_node, comm.id, tag, event)
        inc = yield event
        return comm.rank_of(inc.src), inc.tag, inc.nbytes

    def sendrecv(self, send_data: BufferLike, dest: int, source: int = ANY,
                 sendtag: int = 0, recvtag: int = ANY,
                 comm: Communicator | None = None,
                 nbytes: int | None = None):
        """MPI_Sendrecv: simultaneous, deadlock-free exchange."""
        rreq = self.irecv(source=source, tag=recvtag, comm=comm,
                          nbytes=nbytes)
        sreq = self.isend(send_data, dest, tag=sendtag, comm=comm)
        yield self.sim.all_of([rreq.done, sreq.done])
        return rreq

    def wait_any(self, requests: Sequence[MpiRequest]):
        """Wait for the first completed request; returns (index, request)."""
        if not requests:
            raise MpiError("wait_any on an empty request list")
        yield self.sim.any_of([r.done for r in requests])
        for idx, req in enumerate(requests):
            if req.complete:
                return idx, req
        raise MpiError("wait_any woke without a complete request")

    # -- completion (same helpers as MAD-MPI) ------------------------------
    def wait(self, request: MpiRequest):
        yield request.done
        return request

    def wait_all(self, requests: Sequence[MpiRequest]):
        yield self.sim.all_of([r.done for r in requests])
        return list(requests)

    @staticmethod
    def test(request: MpiRequest) -> bool:
        return request.complete

    def send(self, data: BufferLike, dest: int, tag: int = 0,
             comm: Communicator | None = None,
             datatype: Datatype | None = None):
        req = self.isend(data, dest, tag=tag, comm=comm, datatype=datatype)
        yield req.done
        return req

    def recv(self, source: int = ANY, tag: int = ANY,
             comm: Communicator | None = None,
             nbytes: int | None = None,
             datatype: Datatype | None = None):
        req = self.irecv(source=source, tag=tag, comm=comm, nbytes=nbytes,
                         datatype=datatype)
        yield req.done
        return req

    # ----------------------------------------------------------- frame path
    def _on_frame(self, frame: Frame) -> None:
        msg = frame.payload
        now = self.sim.now
        if isinstance(msg, _Eager):
            item = SegItem(src=msg.src, flow=msg.flow, tag=msg.tag,
                           seq=msg.seq, data=msg.data)
            inc = Incoming(src=msg.src, flow=msg.flow, tag=msg.tag,
                           seq=msg.seq, nbytes=msg.data.nbytes, item=item)
            inc.unpack_blocks = msg.unpack_blocks  # type: ignore[attr-defined]
            self.matcher.deliver(inc, now=now)
        elif isinstance(msg, _RdvReq):
            item = RdvReqItem(src=msg.src, flow=msg.flow, tag=msg.tag,
                              seq=msg.seq, handle=msg.handle,
                              nbytes=msg.nbytes)
            inc = Incoming(src=msg.src, flow=msg.flow, tag=msg.tag,
                           seq=msg.seq, nbytes=msg.nbytes, item=item)
            inc.unpack_blocks = msg.unpack_blocks  # type: ignore[attr-defined]
            self.matcher.deliver(inc, now=now)
        elif isinstance(msg, _RdvAck):
            self._stream_granted(msg)
        elif isinstance(msg, _RdvData):
            self._on_bulk(msg)
        else:
            raise ProtocolError(
                f"{self.params.name}: unknown baseline frame payload "
                f"{type(msg).__name__}"
            )

    def _on_match(self, inc: Incoming, sub: RecvRequest) -> None:
        if sub.capacity is not None and inc.nbytes > sub.capacity:
            sub.done.fail(MpiError(
                f"{self.params.name}: truncation — {inc.nbytes}B into "
                f"{sub.capacity}B receive"
            ))
            return
        unpack_blocks = getattr(inc, "unpack_blocks", None)
        if isinstance(inc.item, RdvReqItem):
            key = (inc.item.src, inc.item.handle)
            self._rdv_incoming[key] = _RdvRecv(
                sub, total=inc.item.nbytes, tag=inc.tag, src=inc.src,
                unpack_blocks=unpack_blocks)
            ack = _RdvAck(src=self.node.node_id, handle=inc.item.handle)
            frame = Frame(src_node=self.node.node_id, dst_node=inc.item.src,
                          kind=FrameKind.RDV_ACK,
                          wire_size=self.params.header_bytes + 16,
                          payload=ack, payload_size=0)
            self._post(frame, None)
            return
        item = inc.item
        assert isinstance(item, SegItem)
        # Eager data: one copy out of the driver buffer, plus the datatype
        # dispatch (unpack) when the stream was packed; copies serialize on
        # the host memory engine.
        copy_cost = 0.0
        if item.data.nbytes > 0:
            copy_cost += self.node.memory.copy_time(item.data.nbytes)
        if unpack_blocks:
            copy_cost += self.node.memory.unpack_time(unpack_blocks)
        delay = self.params.sw_overhead_us
        if copy_cost > 0:
            delay += self.node.serialize_copy(copy_cost)
        self.sim.schedule(
            delay, lambda: sub.finish(item.data, src=inc.src, tag=inc.tag))

    # -- rendezvous streaming ------------------------------------------------
    def _stream_granted(self, ack: _RdvAck) -> None:
        state = self._rdv_pending.pop(ack.handle, None)
        if state is None:
            raise ProtocolError(
                f"{self.params.name}: ACK for unknown handle {ack.handle}"
            )
        chunk_size = getattr(state, "chunk_size", self.params.rdv_chunk_bytes)
        self._send_next_chunk(state, ack.handle, chunk_size)

    def _send_next_chunk(self, state: _RdvSend, handle: int,
                         chunk_size: int) -> None:
        offset = state.next_offset
        n = min(chunk_size, state.total - offset)
        state.next_offset += n
        msg = _RdvData(src=self.node.node_id, handle=handle, offset=offset,
                       total=state.total, data=state.data.slice(offset, n))
        frame = Frame(src_node=self.node.node_id, dst_node=state.dest,
                      kind=FrameKind.RDV_DATA,
                      wire_size=self.params.header_bytes + 16 + n,
                      payload=msg, payload_size=n)

        def _after_pack():
            self.frames_sent += 1
            done = self.nic.post_send(frame,
                                      cpu_gap_us=self.params.sw_overhead_us)
            done.add_callback(lambda _e: _chunk_done())

        def _chunk_done():
            state.bytes_done += n
            if state.next_offset < state.total:
                self._send_next_chunk(state, handle, chunk_size)
            elif state.bytes_done == state.total:
                state.request.done.succeed(state.request)

        if state.per_chunk_pack_us > 0:
            # Chunked datatype pipeline: pack this chunk before injecting it
            # (the previous chunk is on the wire meanwhile — the overlap).
            self.sim.schedule(state.per_chunk_pack_us, _after_pack)
        else:
            _after_pack()

    def _on_bulk(self, msg: _RdvData) -> None:
        key = (msg.src, msg.handle)
        state = self._rdv_incoming.get(key)
        if state is None:
            raise ProtocolError(
                f"{self.params.name}: bulk for unknown rendezvous {key}"
            )
        state.pieces.append((msg.offset, msg.data))
        state.received += msg.data.nbytes
        if state.received > state.total:
            raise ProtocolError(f"{self.params.name}: rendezvous overrun")
        now = self.sim.now
        if state.unpack_blocks is not None:
            # The packed stream lands in a temporary area; dispatching it to
            # the typed buffer is a serial copy chargeable per chunk on the
            # node's (shared) memory engine.
            fraction = msg.data.nbytes / state.total
            cost = self.node.memory.unpack_time(state.unpack_blocks) * fraction
            state.unpack_free_at = now + self.node.serialize_copy(cost)
        if state.received == state.total:
            del self._rdv_incoming[key]
            finish_at = max(now, state.unpack_free_at)
            data = self._assemble(state)

            def _finish():
                state.req.finish(data, src=state.src, tag=state.tag)

            if finish_at > now:
                self.sim.schedule(finish_at - now, _finish)
            else:
                _finish()

    @staticmethod
    def _assemble(state: _RdvRecv) -> SegmentData:
        if any(isinstance(d, VirtualData) for _, d in state.pieces):
            return VirtualData(state.total)
        from repro.core.data import Bytes
        buf = bytearray(state.total)
        for offset, data in state.pieces:
            buf[offset:offset + data.nbytes] = data.tobytes()
        return Bytes(bytes(buf))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.params.name} rank={self.rank} node={self.node.node_id}>"

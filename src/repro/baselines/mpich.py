"""The MPICH comparator (MPICH-MX / MPICH-Quadrics in the paper's figures).

Behavioural model (see :mod:`repro.baselines.base` for the sources):
direct request→NIC mapping, very efficient pipelining of message series,
eager/rendezvous switch, and the pack→single-transaction→temporary-buffer→
dispatch derived-datatype path of paper §5.3 / reference [5].
"""

from __future__ import annotations


from repro.baselines.base import BaselineMpi, BaselineParams
from repro.madmpi.comm import Communicator
from repro.netsim.node import Node
from repro.netsim.units import KB
from repro.sim import Tracer

__all__ = ["MpichMpi", "MPICH_MX", "MPICH_QUADRICS"]

#: MPICH 1.x-era MX channel: lean per-message software path.
MPICH_MX = BaselineParams(
    name="MPICH-MX",
    sw_overhead_us=0.25,
    header_bytes=8,
    eager_threshold=32 * KB,
)

#: MPICH over the Quadrics Elan driver.
MPICH_QUADRICS = BaselineParams(
    name="MPICH-Quadrics",
    sw_overhead_us=0.30,
    header_bytes=8,
    eager_threshold=16 * KB,
)


class MpichMpi(BaselineMpi):
    """MPICH model; pass the params matching the network under test."""

    backend_name = "MPICH"

    def __init__(self, node: Node, world: Communicator,
                 params: BaselineParams | None = None,
                 tracer: Tracer | None = None) -> None:
        if params is None:
            params = MPICH_MX if node.nic(0).profile.tech == "mx" \
                else MPICH_QUADRICS
        super().__init__(node, params, world, tracer=tracer)

"""Baseline MPI models (the paper's comparators) over the same NIC substrate."""

from repro.baselines.base import BaselineMpi, BaselineParams
from repro.baselines.mpich import MPICH_MX, MPICH_QUADRICS, MpichMpi
from repro.baselines.openmpi import OPENMPI_MX, OpenMpi

__all__ = [
    "BaselineMpi",
    "BaselineParams",
    "MPICH_MX",
    "MPICH_QUADRICS",
    "MpichMpi",
    "OPENMPI_MX",
    "OpenMpi",
]

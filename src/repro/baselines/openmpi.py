"""The OpenMPI 1.1 comparator (OpenMPI-MX in the paper's figures).

Same protocol family as MPICH (the paper: "in the absence of related
documentation, we guess that OpenMPI has the same behaviour") but with a
heavier per-message software path — Figure 2(a) shows OpenMPI-MX above
MPICH-MX at small sizes — and a chunk-pipelined datatype engine that
overlaps packing with injection, which is the mechanism consistent with
Figure 4(a) measuring OpenMPI clearly faster than MPICH on the indexed
datatype yet still ~2x slower than MAD-MPI's zero-copy schedule.
"""

from __future__ import annotations


from repro.baselines.base import BaselineMpi, BaselineParams
from repro.madmpi.comm import Communicator
from repro.netsim.node import Node
from repro.netsim.units import KB
from repro.sim import Tracer

__all__ = ["OpenMpi", "OPENMPI_MX"]

#: OpenMPI 1.1 over MX.
OPENMPI_MX = BaselineParams(
    name="OpenMPI-MX",
    sw_overhead_us=0.55,
    header_bytes=16,
    eager_threshold=32 * KB,
    dt_pipeline_chunk=64 * KB,
)


class OpenMpi(BaselineMpi):
    """OpenMPI 1.1 model."""

    backend_name = "OpenMPI"

    def __init__(self, node: Node, world: Communicator,
                 params: BaselineParams | None = None,
                 tracer: Tracer | None = None) -> None:
        super().__init__(node, params if params is not None else OPENMPI_MX,
                         world, tracer=tracer)

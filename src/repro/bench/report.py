"""Result series and paper-style table rendering.

The benchmark harness prints, for every figure, the same rows the paper
plots: message size against one value per backend, plus the derived gain of
MAD-MPI over each baseline (the numbers quoted in §5.2/§5.3: "up to 70 %
faster", "a gain of about 70 %").  Gain is ``(t_base - t_mad) / t_base``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import ReproError
from repro.netsim.units import format_size

__all__ = ["Series", "gain_percent", "render_table", "render_gains",
           "find_series"]


@dataclass
class Series:
    """One curve of a figure: a backend's value per message size."""

    label: str
    backend: str
    sizes: list[int]
    values: list[float]
    unit: str = "us"

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.values):
            raise ReproError(
                f"series {self.label!r}: {len(self.sizes)} sizes vs "
                f"{len(self.values)} values"
            )

    def to_bandwidth(self) -> Series:
        """Derive MB/s from one-way latencies (the figure (b)/(d) panels)."""
        if self.unit != "us":
            raise ReproError(f"cannot derive bandwidth from {self.unit!r}")
        return Series(
            label=self.label,
            backend=self.backend,
            sizes=list(self.sizes),
            values=[s / v if v > 0 else 0.0
                    for s, v in zip(self.sizes, self.values, strict=True)],
            unit="MB/s",
        )

    def at(self, size: int) -> float:
        """Value at an exact size (error if the sweep lacks it)."""
        try:
            return self.values[self.sizes.index(size)]
        except ValueError:
            raise ReproError(
                f"series {self.label!r} has no size {size}"
            ) from None


def find_series(series: Sequence[Series], backend: str) -> Series:
    """The series of one backend, by backend key."""
    for s in series:
        if s.backend == backend:
            return s
    raise ReproError(
        f"no series for backend {backend!r} "
        f"(have {[s.backend for s in series]})"
    )


def gain_percent(baseline: float, contender: float) -> float:
    """Percent improvement of ``contender`` over ``baseline`` (paper-style)."""
    if baseline <= 0:
        raise ReproError(f"non-positive baseline value {baseline}")
    return 100.0 * (baseline - contender) / baseline


def render_table(title: str, series: Sequence[Series],
                 value_fmt: str = "{:10.2f}") -> str:
    """Render aligned rows: size, then one column per series."""
    if not series:
        raise ReproError("nothing to render")
    sizes = series[0].sizes
    for s in series:
        if s.sizes != sizes:
            raise ReproError(
                f"series {s.label!r} has a different size axis"
            )
    header_cells = [f"{'size':>8}"] + [f"{s.label:>18}" for s in series]
    lines = [title, "  ".join(header_cells)]
    for idx, size in enumerate(sizes):
        cells = [f"{format_size(size):>8}"]
        for s in series:
            cells.append(f"{value_fmt.format(s.values[idx]):>18}")
        lines.append("  ".join(cells))
    lines.append(f"(values in {series[0].unit})")
    return "\n".join(lines)


def render_gains(series: Sequence[Series], contender: str = "madmpi") -> str:
    """Summarize the contender's peak gain over every other series."""
    mine = find_series(series, contender)
    lines = []
    for other in series:
        if other.backend == contender:
            continue
        gains = [gain_percent(b, m)
                 for b, m in zip(other.values, mine.values, strict=True)]
        peak = max(gains)
        peak_size = other.sizes[gains.index(peak)]
        lines.append(
            f"{mine.label} vs {other.label}: peak gain "
            f"{peak:5.1f}% at {format_size(peak_size)} "
            f"(mean {sum(gains) / len(gains):5.1f}%)"
        )
    return "\n".join(lines)

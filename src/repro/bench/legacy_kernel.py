"""The seed repo's single-heap simulation kernel, frozen for comparison.

This is the pre-overhaul discrete-event kernel (PR 2 vintage: one binary
heap, a fresh ``(time, seq, item)`` tuple per occurrence, a fresh
:class:`LegacyEvent` per timeout) kept verbatim so the perf suite can
report a *measured* speedup of the live calendar-queue kernel in
:mod:`repro.sim.core` against it — the same pattern as
:class:`repro.bench.perf.LegacyWindow` for the optimization window.

It is also the ordering oracle: the Hypothesis equivalence property in
``tests/test_sim_wheel.py`` replays random schedules on both kernels and
requires identical dispatch sequences, which pins the timer wheel to the
heap's exact ``(time, seq)`` FIFO semantics.

Not for engine use.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable

from typing import Any

from repro.errors import SimulationError

__all__ = [
    "LegacySimulator",
    "LegacyEvent",
    "LegacyTimeout",
    "LegacyProcess",
    "LegacyInterrupt",
]


class LegacyEvent:
    """One-shot occurrence (frozen copy of the seed ``Event``)."""

    __slots__ = ("sim", "_callbacks", "_ok", "_value", "_exc", "_defused", "name")

    def __init__(self, sim: LegacySimulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[LegacyEvent], None]] | None = []
        self._ok: bool | None = None
        self._value: Any = None
        self._exc: BaseException | None = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError(f"value of pending event {self!r}")
        if self._ok:
            return self._value
        self._defused = True
        assert self._exc is not None
        raise self._exc

    @property
    def exception(self) -> BaseException | None:
        return self._exc

    def succeed(self, value: Any = None) -> LegacyEvent:
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._activate(self)
        return self

    def fail(self, exc: BaseException) -> LegacyEvent:
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exc = exc
        self.sim._activate(self)
        return self

    def defuse(self) -> None:
        self._defused = True

    def add_callback(self, fn: Callable[[LegacyEvent], None]) -> None:
        if self._callbacks is None:
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else f"failed({self._exc!r})")
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class LegacyTimeout(LegacyEvent):
    """Event triggering ``delay`` units after creation (frozen copy)."""

    __slots__ = ("delay",)

    def __init__(
        self, sim: LegacySimulator, delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        self._value = value
        sim._schedule_event(delay, self)


class LegacyInterrupt(SimulationError):
    """Raised inside a process another process interrupted (frozen copy)."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class LegacyProcess(LegacyEvent):
    """Generator coroutine over simulated time (frozen copy)."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(
        self, sim: LegacySimulator, gen: Generator, name: str = ""
    ) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: LegacyEvent | None = None
        init = LegacyEvent(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself at spawn")
        self.sim.schedule(0.0, lambda: self._throw(LegacyInterrupt(cause)))

    def _resume(self, evt: LegacyEvent) -> None:
        if not self.is_alive:
            if not evt._ok:
                evt._defused = True
            return
        if self._waiting_on is not None and evt is not self._waiting_on:
            return
        self._waiting_on = None
        if evt._ok:
            self._step(lambda: self._gen.send(evt._value))
        else:
            evt._defused = True
            exc = evt._exc
            assert exc is not None
            self._step(lambda: self._gen.throw(exc))

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self.fail(exc)
            return
        if not isinstance(target, LegacyEvent):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class LegacyCondition(LegacyEvent):
    """Base for composites over a fixed child set (frozen copy)."""

    __slots__ = ("events", "_n_done")

    def __init__(
        self, sim: LegacySimulator, events: Iterable[LegacyEvent]
    ) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events: tuple[LegacyEvent, ...] = tuple(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            evt.add_callback(self._child_done)

    def _collect(self) -> dict[LegacyEvent, Any]:
        return {e: e._value for e in self.events if e._ok}

    def _child_done(self, evt: LegacyEvent) -> None:
        raise NotImplementedError


class LegacyAllOf(LegacyCondition):
    __slots__ = ()

    def _child_done(self, evt: LegacyEvent) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if not evt._ok:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class LegacyAnyOf(LegacyCondition):
    __slots__ = ()

    def _child_done(self, evt: LegacyEvent) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if evt._ok:
            self.succeed(self._collect())
        else:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)


class LegacySimulator:
    """The seed event loop: one clock plus one binary heap (frozen copy)."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._running = False
        self._n_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._n_processed

    def event(self, name: str = "") -> LegacyEvent:
        return LegacyEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> LegacyTimeout:
        return LegacyTimeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> LegacyProcess:
        return LegacyProcess(self, gen, name=name)

    def all_of(self, events: Iterable[LegacyEvent]) -> LegacyAllOf:
        return LegacyAllOf(self, events)

    def any_of(self, events: Iterable[LegacyEvent]) -> LegacyAnyOf:
        return LegacyAnyOf(self, events)

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, fn))

    def _schedule_event(self, delay: float, event: LegacyEvent) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, event))

    def _activate(self, event: LegacyEvent) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now, seq, event))

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        event_cls = LegacyEvent
        processed = 0
        try:
            while queue:
                t = queue[0][0]
                if until is not None and t > until:
                    self._now = until
                    return until
                t, _, item = pop(queue)
                self._now = t
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                if isinstance(item, event_cls):
                    if item._ok is None:
                        item._ok = True
                    callbacks = item._callbacks
                    item._callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(item)
                    if item._ok is False and not item._defused:
                        assert item._exc is not None
                        raise item._exc
                else:
                    item()
            return self._now
        finally:
            self._n_processed += processed
            self._running = False

    def run_process(self, gen: Generator, name: str = "") -> Any:
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never finished (deadlock: queue "
                "drained while the process was still waiting)"
            )
        return proc.value

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

"""Uniform construction of benchmark backends.

Every backend exposes the same interface (``isend``/``irecv``/``wait``/
``send``/``recv`` generators returning :class:`~repro.madmpi.request.MpiRequest`),
so the ping-pong programs in :mod:`repro.bench.pingpong` are written once
and run against MAD-MPI and both baselines — the structure of the paper's
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.baselines import (
    MPICH_MX,
    MPICH_QUADRICS,
    OPENMPI_MX,
    BaselineParams,
    MpichMpi,
    OpenMpi,
)
from repro.core import EngineParams, NmadEngine
from repro.errors import ReproError
from repro.madmpi import Communicator, MadMpi
from repro.netsim import Cluster, NicProfile, TopologySpec
from repro.sim import Simulator, Tracer

__all__ = ["BackendPair", "make_backend_pair", "BACKENDS", "backend_label"]

#: Known backend keys.
BACKENDS = ("madmpi", "mpich", "openmpi", "madmpi-fifo")

#: OpenMPI constants when running over Quadrics (not shown in the paper's
#: Quadrics figures, but available for completeness).
OPENMPI_QUADRICS = BaselineParams(
    name="OpenMPI-Quadrics",
    sw_overhead_us=0.60,
    header_bytes=16,
    eager_threshold=16 * 1024,
    dt_pipeline_chunk=64 * 1024,
)


@dataclass
class BackendPair:
    """Two connected ranks of one backend, plus their simulation."""

    sim: Simulator
    cluster: Cluster
    world: Communicator
    ranks: list  # [rank0, rank1] endpoints
    backend: str

    @property
    def m0(self):
        return self.ranks[0]

    @property
    def m1(self):
        return self.ranks[1]


def backend_label(backend: str, profile: NicProfile) -> str:
    """The label the paper's figure legends use for this backend/network."""
    net = {"mx": "MX", "elan": "Quadrics"}.get(profile.tech, profile.tech)
    return {
        "madmpi": f"MadMPI/{net}",
        "madmpi-fifo": f"MadMPI-fifo/{net}",
        "mpich": f"MPICH-{net}",
        "openmpi": f"OpenMPI-{net}",
    }.get(backend, f"{backend}/{net}")


def make_backend_pair(
    backend: str,
    rails: Sequence[NicProfile],
    strategy: str = "aggregation",
    engine_params: EngineParams | None = None,
    tracer: Tracer | None = None,
    topology: str | TopologySpec = "mesh",
) -> BackendPair:
    """Build a fresh two-node simulation running ``backend`` on ``rails``.

    ``topology`` defaults to the paper-faithful flat mesh; pass
    ``"fat-tree"``/``"dragonfly"`` (or a built spec) to route the pair's
    traffic through a switched fabric instead.
    """
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=2, rails=tuple(rails), tracer=tracer,
                      topology=topology)
    world = Communicator([0, 1])
    tech = rails[0].tech
    if backend == "madmpi" or backend == "madmpi-fifo":
        strat = "fifo" if backend == "madmpi-fifo" else strategy
        ranks = [
            MadMpi(
                NmadEngine(cluster.node(i), strategy=strat,
                           params=engine_params, tracer=tracer),
                world,
            )
            for i in range(2)
        ]
    elif backend == "mpich":
        params = MPICH_MX if tech == "mx" else MPICH_QUADRICS
        ranks = [MpichMpi(cluster.node(i), world, params=params,
                          tracer=tracer) for i in range(2)]
    elif backend == "openmpi":
        params = OPENMPI_MX if tech == "mx" else OPENMPI_QUADRICS
        ranks = [OpenMpi(cluster.node(i), world, params=params,
                         tracer=tracer) for i in range(2)]
    else:
        raise ReproError(f"unknown backend {backend!r}; known: {BACKENDS}")
    return BackendPair(sim=sim, cluster=cluster, world=world, ranks=ranks,
                       backend=backend)

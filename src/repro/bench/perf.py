"""Host-side performance microbenchmarks (``python -m repro perf``).

Everything else in :mod:`repro.bench` measures *simulated* time — what the
modeled 2006 testbed would do.  This module measures **wall-clock host
cost**: how fast the reproduction's own engine code runs.  The paper's
core claim (§5.1) is that the scheduling engine adds only a tiny constant
cost to each NIC refill, so the reproduction's pull path must not silently
degrade to O(backlog); this suite pins that property to numbers and gives
every future PR a trajectory to compare against (``BENCH_perf.json``).

The benchmarks:

* ``window_ops`` — take/submit/query churn on an :class:`OptimizationWindow`
  held at a deep backlog, compared against a frozen copy of the original
  O(n) deque implementation (kept here as :class:`LegacyWindow` so the
  speedup is measured, not asserted from memory).
* ``event_loop`` — raw :class:`~repro.sim.Simulator` throughput: schedule
  and drain a long cascade of callbacks and timeouts, on both the live
  calendar-queue kernel and the frozen seed heap kernel
  (:mod:`repro.bench.legacy_kernel`).
* ``kernel_storm`` — the large-cluster completion-storm profile: rounds
  of many same-timestamp NIC completions (posted through
  ``schedule_batch``, as the NIC layer does) plus straggler timers.  This
  is the workload the calendar-queue overhaul targets; its
  ``speedup_vs_legacy`` is the headline number CI gates at >= 10x.
* ``pingpong`` — end-to-end MAD-MPI ping-pong wall-clock (host seconds per
  simulated exchange), plus the simulated makespan as a fidelity guard.
* ``random_traffic`` — irregular multi-flow replay wall-clock, the
  closest thing to a real application's host-side profile.
* ``scale`` — seeded random frame traffic over a sparse 256-node netsim
  topology (see :mod:`repro.bench.scale`; the CLI can push it to 1024).

All workloads are deterministic (seeded); only the wall-clock readings
vary between hosts and runs.  :func:`check_bench` compares a fresh run
against the committed ``BENCH_perf.json`` trajectory: only host-neutral
*ratios* (the ``speedup_vs_legacy`` numbers) are gated, with a relative
tolerance, so the gate travels between machines.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from collections import deque
from collections.abc import Callable, Iterator

from repro.core.data import VirtualData
from repro.core.packet import PacketWrap
from repro.core.window import OptimizationWindow
from repro.errors import ReproError, StrategyError

__all__ = [
    "LegacyWindow",
    "bench_window_ops",
    "bench_event_loop",
    "bench_kernel_storm",
    "bench_pingpong",
    "bench_random_traffic",
    "run_suite",
    "render_perf",
    "write_bench",
    "check_bench",
    "STORM_SPEEDUP_FLOOR",
]


class LegacyWindow:
    """The seed repo's O(n) optimization window, frozen for comparison.

    This is the pre-overhaul implementation (deque storage, linear
    ``take``, full-sum ``pending_bytes``/``backlog``), kept verbatim so
    ``bench_window_ops`` can report a measured speedup of the live
    :class:`~repro.core.window.OptimizationWindow` against it.  Not for
    engine use.
    """

    def __init__(self, n_rails: int) -> None:
        if n_rails < 1:
            raise ValueError("window needs at least one rail")
        self.n_rails = n_rails
        self._common: deque = deque()
        self._dedicated: list = [deque() for _ in range(n_rails)]
        self.peak_wraps = 0
        self.total_submitted = 0

    def submit(self, wrap: PacketWrap) -> None:
        if wrap.rail is not None:
            self._dedicated[wrap.rail].append(wrap)
        else:
            self._common.append(wrap)
        self.total_submitted += 1
        occupancy = len(self)
        if occupancy > self.peak_wraps:
            self.peak_wraps = occupancy

    def eligible(self, rail: int) -> Iterator[PacketWrap]:
        yield from self._dedicated[rail]
        yield from self._common

    def __len__(self) -> int:
        return len(self._common) + sum(len(d) for d in self._dedicated)

    def pending_bytes(self, rail: int | None = None) -> int:
        if rail is None:
            total = sum(w.length for w in self._common)
            total += sum(w.length for d in self._dedicated for w in d)
            return total
        return sum(w.length for w in self.eligible(rail))

    def backlog(self, dest: int | None = None) -> int:
        if dest is None:
            return len(self)
        return sum(1 for w in self._all() if w.dest == dest)

    def _all(self) -> Iterator[PacketWrap]:
        yield from self._common
        for d in self._dedicated:
            yield from d

    def take(self, wrap: PacketWrap) -> None:
        target = self._dedicated[wrap.rail] if wrap.rail is not None \
            else self._common
        try:
            target.remove(wrap)
        except ValueError:
            raise StrategyError(f"{wrap!r} not in the window") from None


def _make_wrap(i: int, n_dests: int, seq: int) -> PacketWrap:
    return PacketWrap(dest=i % n_dests, flow=0, tag=0, seq=seq,
                      data=VirtualData(64 + (i % 7) * 128))


def bench_window_ops(
    window_factory: Callable[[int], object],
    backlog: int = 1000,
    rounds: int = 5000,
    n_rails: int = 2,
    n_dests: int = 4,
) -> dict:
    """Sustained take+submit+query churn at a held backlog depth.

    Models the strategy pull path under load: every round removes one wrap
    mid-window (a strategy commit), submits a replacement (application
    traffic keeps arriving) and reads the counters a strategy consults
    (per-rail pending bytes, per-dest backlog).  Returns ops/s.
    """
    import random

    if backlog < 1 or rounds < 1:
        raise ReproError(f"bad bench shape backlog={backlog} rounds={rounds}")
    win = window_factory(n_rails)
    wraps = []
    for i in range(backlog):
        w = _make_wrap(i, n_dests, seq=i)
        win.submit(w)
        wraps.append(w)
    rng = random.Random(0)
    t0 = time.perf_counter()
    for i in range(rounds):
        victim = wraps.pop(rng.randrange(len(wraps)))
        win.take(victim)
        w = _make_wrap(i, n_dests, seq=backlog + i)
        win.submit(w)
        wraps.append(w)
        win.pending_bytes(0)
        win.backlog(dest=i % n_dests)
    wall_s = time.perf_counter() - t0
    return {
        "backlog": backlog,
        "rounds": rounds,
        "wall_s": wall_s,
        "ops_per_s": rounds / wall_s,
    }


def _make_kernel(kernel: str):
    """One simulator of the requested flavour: ``live`` or ``legacy``."""
    if kernel == "live":
        from repro.sim import Simulator

        return Simulator()
    if kernel == "legacy":
        from repro.bench.legacy_kernel import LegacySimulator

        return LegacySimulator()
    raise ReproError(f"unknown kernel {kernel!r} (want 'live' or 'legacy')")


def bench_event_loop(n_events: int = 200_000, kernel: str = "live") -> dict:
    """Raw kernel throughput: a self-refilling callback cascade + timeouts.

    ``kernel`` selects the live calendar-queue kernel or the frozen seed
    heap kernel so the suite reports a measured speedup, not a guess.
    """
    if n_events < 1:
        raise ReproError(f"bad event count {n_events}")
    sim = _make_kernel(kernel)
    remaining = [n_events]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            # Alternate a plain callback with a Timeout event so both run
            # paths of the loop are exercised.
            if remaining[0] % 2:
                sim.schedule(0.1, tick)
            else:
                sim.timeout(0.1).add_callback(lambda _evt: tick())

    tick()
    t0 = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - t0
    processed = sim.events_processed
    return {
        "events": processed,
        "wall_s": wall_s,
        "events_per_s": processed / wall_s,
    }


def bench_kernel_storm(
    rounds: int = 120,
    fanout: int = 1024,
    stragglers: int = 8,
    kernel: str = "live",
    reps: int = 3,
) -> dict:
    """Large-cluster completion-storm kernel profile.

    Every round models one scheduling epoch of a big cluster: ``fanout``
    NIC completions land at the same timestamp (the live kernel posts
    them through :meth:`~repro.sim.Simulator.schedule_batch`, exactly as
    the batched NIC refill/rx paths do — one queue entry, one dispatch),
    plus a few straggler timers spread across the epoch.  The legacy
    kernel pays one heap push and one heap pop per completion, which is
    the per-event cost the calendar-queue overhaul removes; the measured
    ratio is the suite's headline ``speedup_vs_legacy``.
    """
    if rounds < 1 or fanout < 1 or stragglers < 0 or reps < 1:
        raise ReproError(
            f"bad storm shape rounds={rounds} fanout={fanout} "
            f"stragglers={stragglers} reps={reps}"
        )

    def one_rep() -> tuple[int, float]:
        sim = _make_kernel(kernel)
        if kernel == "live":
            batch = sim.schedule_batch
        else:
            def batch(delay: float, fns: list) -> None:
                for fn in fns:
                    sim.schedule(delay, fn)

        count = [0]

        def completion() -> None:
            count[0] += 1

        def round_fn(r: int) -> None:
            batch(1.0, [completion] * fanout)
            for k in range(stragglers):
                sim.schedule(1.0 + (k + 1) * 0.07, completion)
            if r + 1 < rounds:
                sim.schedule(1.0, lambda: round_fn(r + 1))

        sim.schedule(0.0, lambda: round_fn(0))
        gc.collect()  # a pending collection mid-run would skew a ms-scale rep
        t0 = time.perf_counter()
        sim.run()
        return count[0], time.perf_counter() - t0

    # Best-of-``reps``: a single rep is milliseconds long, so one scheduler
    # hiccup can halve the reading; the fastest rep is the honest capacity.
    completions, wall_s = one_rep()
    for _ in range(reps - 1):
        c, w = one_rep()
        if w < wall_s:
            completions, wall_s = c, w
    return {
        "rounds": rounds,
        "fanout": fanout,
        "stragglers": stragglers,
        "completions": completions,
        "wall_s": wall_s,
        "events_per_s": completions / wall_s,
    }


def bench_pingpong(iters: int = 200, size: int = 1024) -> dict:
    """End-to-end MAD-MPI ping-pong: host seconds per simulated exchange.

    The simulated one-way latency is reported alongside as a fidelity
    guard: optimization PRs must move ``wall_s`` and leave ``sim_us_oneway``
    untouched.
    """
    from repro.bench.pingpong import pingpong_single
    from repro.netsim import MX_MYRI10G

    t0 = time.perf_counter()
    oneway_us = pingpong_single("madmpi", MX_MYRI10G, size=size,
                                iters=iters, warmup=1)
    wall_s = time.perf_counter() - t0
    return {
        "iters": iters,
        "size": size,
        "wall_s": wall_s,
        "exchanges_per_s": iters / wall_s,
        "sim_us_oneway": oneway_us,
    }


def bench_random_traffic(n_messages: int = 300, seed: int = 7) -> dict:
    """Irregular multi-flow replay wall-clock (aggregation strategy)."""
    from repro.bench.backends import make_backend_pair
    from repro.bench.workloads import TrafficSpec, generate_messages, replay
    from repro.netsim import KB, MX_MYRI10G

    spec = TrafficSpec(n_messages=n_messages, n_flows=6, n_tags=4,
                       min_size=16, max_size=8 * KB, large_fraction=0.05,
                       burst_prob=0.8)
    messages = generate_messages(spec, seed=seed)
    pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                             strategy="aggregation")
    t0 = time.perf_counter()
    replay(pair, messages, verify_content=False)
    wall_s = time.perf_counter() - t0
    return {
        "messages": n_messages,
        "seed": seed,
        "wall_s": wall_s,
        "messages_per_s": n_messages / wall_s,
        "sim_us_makespan": pair.sim.now,
    }


def run_suite(
    quick: bool = False, backlog: int = 1000, scale_nodes: int = 256
) -> dict:
    """Run every microbenchmark; returns the ``BENCH_perf.json`` payload."""
    from repro.bench.scale import bench_scale

    rounds = 500 if quick else 5000
    window_new = bench_window_ops(OptimizationWindow, backlog=backlog,
                                  rounds=rounds)
    window_old = bench_window_ops(LegacyWindow, backlog=backlog,
                                  rounds=rounds)
    loop_events = 20_000 if quick else 200_000
    loop_new = bench_event_loop(loop_events)
    loop_old = bench_event_loop(loop_events, kernel="legacy")
    # The storm keeps its full shape even in quick mode: the batching win
    # scales with fanout, the whole thing is milliseconds long anyway, and
    # the 10x floor must hold for quick CI runs too.  The live kernel gets
    # more rounds purely to stretch its measurement window past scheduler
    # noise — the per-completion cost being compared is round-invariant.
    # Live/legacy reps are interleaved so a burst of host contention hits
    # both kernels' sample sets instead of silently halving one side's
    # best, and each side's best rep estimates its uncontended capacity.
    storm_new = bench_kernel_storm(rounds=600, reps=1)
    storm_old = bench_kernel_storm(rounds=120, kernel="legacy", reps=1)
    for _ in range(3):
        n = bench_kernel_storm(rounds=600, reps=1)
        if n["events_per_s"] > storm_new["events_per_s"]:
            storm_new = n
        o = bench_kernel_storm(rounds=120, kernel="legacy", reps=1)
        if o["events_per_s"] > storm_old["events_per_s"]:
            storm_old = o
    results = {
        "window_ops": {
            **window_new,
            "legacy_ops_per_s": window_old["ops_per_s"],
            "speedup_vs_legacy": window_new["ops_per_s"]
                                 / window_old["ops_per_s"],
        },
        "event_loop": {
            **loop_new,
            "legacy_events_per_s": loop_old["events_per_s"],
            "speedup_vs_legacy": loop_new["events_per_s"]
                                 / loop_old["events_per_s"],
        },
        "kernel_storm": {
            **storm_new,
            "legacy_events_per_s": storm_old["events_per_s"],
            "speedup_vs_legacy": storm_new["events_per_s"]
                                 / storm_old["events_per_s"],
        },
        "pingpong": bench_pingpong(iters=30 if quick else 200),
        "random_traffic": bench_random_traffic(60 if quick else 300),
        "scale": bench_scale(n_nodes=scale_nodes,
                             n_frames=2_000 if quick else 20_000),
    }
    return {
        "schema": "repro-perf/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "quick": quick,
        "results": results,
    }


def render_perf(payload: dict) -> str:
    """Human-readable table of one suite run."""
    r = payload["results"]
    w = r["window_ops"]
    lines = [
        f"== Engine host-side performance (python {payload['python']}, "
        f"quick={payload['quick']}) ==",
        f"  window ops @ backlog {w['backlog']:>5}: "
        f"{w['ops_per_s']:>12,.0f} ops/s   "
        f"(legacy {w['legacy_ops_per_s']:>10,.0f} ops/s, "
        f"speedup {w['speedup_vs_legacy']:.1f}x)",
        f"  event loop:                  "
        f"{r['event_loop']['events_per_s']:>12,.0f} events/s   "
        f"(legacy {r['event_loop']['legacy_events_per_s']:>10,.0f}, "
        f"speedup {r['event_loop']['speedup_vs_legacy']:.2f}x)",
        f"  kernel storm (fanout {r['kernel_storm']['fanout']}):   "
        f"{r['kernel_storm']['events_per_s']:>12,.0f} events/s   "
        f"(legacy {r['kernel_storm']['legacy_events_per_s']:>10,.0f}, "
        f"speedup {r['kernel_storm']['speedup_vs_legacy']:.1f}x)",
        f"  ping-pong ({r['pingpong']['size']}B):            "
        f"{r['pingpong']['exchanges_per_s']:>12,.1f} exchanges/s "
        f"(sim {r['pingpong']['sim_us_oneway']:.3f} us one-way)",
        f"  random traffic:              "
        f"{r['random_traffic']['messages_per_s']:>12,.1f} msgs/s     "
        f"(sim makespan {r['random_traffic']['sim_us_makespan']:.1f} us)",
        f"  scale ({r['scale']['n_nodes']} nodes):           "
        f"{r['scale']['events_per_s']:>12,.0f} events/s   "
        f"({r['scale']['delivered']} frames delivered, sim makespan "
        f"{r['scale']['sim_us_makespan']:.1f} us)",
    ]
    return "\n".join(lines)


#: Hard floor on the completion-storm speedup — the overhaul's headline
#: promise.  The trajectory gate enforces it regardless of what ratio the
#: committed baseline happens to record.
STORM_SPEEDUP_FLOOR = 10.0


def check_bench(
    payload: dict, baseline: dict, tolerance: float = 0.5
) -> list[str]:
    """Gate a fresh suite run against the committed trajectory.

    Absolute wall-clock numbers are host-specific, so only host-neutral
    quantities are compared:

    * every ``speedup_vs_legacy`` ratio in the fresh ``payload`` must be
      at least ``(1 - tolerance)`` of the committed ``baseline`` value
      (both kernels run on the same host, so the ratio travels between
      machines), and
    * ``kernel_storm`` must additionally clear the hard
      :data:`STORM_SPEEDUP_FLOOR`, and
    * the deterministic simulated readings (ping-pong one-way latency,
      replay/scale makespans) must match the baseline exactly — a
      performance PR must not move simulated time.

    Returns a list of human-readable failure strings; empty means pass.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"bad tolerance {tolerance} (want 0 <= t < 1)")
    failures: list[str] = []
    fresh = payload.get("results", {})
    base = baseline.get("results", {})
    ratio_shape_keys = {
        "window_ops": ("backlog", "rounds"),
        "event_loop": ("events",),
        "kernel_storm": ("rounds", "fanout", "stragglers"),
    }
    for name, res in sorted(base.items()):
        if not isinstance(res, dict):
            continue
        want = res.get("speedup_vs_legacy")
        if want is None:
            continue
        got_res = fresh.get(name, {})
        got = got_res.get("speedup_vs_legacy")
        if got is None:
            failures.append(
                f"{name}: speedup_vs_legacy missing from the fresh run"
            )
            continue
        if any(res.get(k) != got_res.get(k)
               for k in ratio_shape_keys.get(name, ())):
            continue  # different workload shape (quick vs full); ratio
            # comparisons only travel between identical shapes
        floor = want * (1.0 - tolerance)
        if got < floor:
            failures.append(
                f"{name}: speedup_vs_legacy {got:.2f}x < {floor:.2f}x "
                f"(baseline {want:.2f}x, tolerance {tolerance:.0%})"
            )
    storm = fresh.get("kernel_storm", {}).get("speedup_vs_legacy", 0.0)
    if storm < STORM_SPEEDUP_FLOOR:
        failures.append(
            f"kernel_storm: speedup_vs_legacy {storm:.2f}x is below the "
            f"hard {STORM_SPEEDUP_FLOOR:.0f}x floor"
        )
    for name, key, shape_keys in (
        ("pingpong", "sim_us_oneway", ("iters", "size")),
        ("random_traffic", "sim_us_makespan", ("messages", "seed")),
        ("scale", "sim_us_makespan", ("n_nodes", "n_frames", "seed")),
    ):
        want_res = base.get(name, {})
        got_res = fresh.get(name, {})
        want_sim = want_res.get(key)
        got_sim = got_res.get(key)
        if want_sim is None or got_sim is None:
            continue
        if any(want_res.get(k) != got_res.get(k) for k in shape_keys):
            continue  # different workload shape (e.g. quick vs full run)
        if got_sim != want_sim:
            failures.append(
                f"{name}: {key} drifted to {got_sim!r} "
                f"(baseline {want_sim!r}) — simulated time must not move"
            )
    return failures


def write_bench(payload: dict, path: str = "BENCH_perf.json") -> str:
    """Write the payload as pretty-printed JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path

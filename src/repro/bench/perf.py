"""Host-side performance microbenchmarks (``python -m repro perf``).

Everything else in :mod:`repro.bench` measures *simulated* time — what the
modeled 2006 testbed would do.  This module measures **wall-clock host
cost**: how fast the reproduction's own engine code runs.  The paper's
core claim (§5.1) is that the scheduling engine adds only a tiny constant
cost to each NIC refill, so the reproduction's pull path must not silently
degrade to O(backlog); this suite pins that property to numbers and gives
every future PR a trajectory to compare against (``BENCH_perf.json``).

Four benchmarks:

* ``window_ops`` — take/submit/query churn on an :class:`OptimizationWindow`
  held at a deep backlog, compared against a frozen copy of the original
  O(n) deque implementation (kept here as :class:`LegacyWindow` so the
  speedup is measured, not asserted from memory).
* ``event_loop`` — raw :class:`~repro.sim.Simulator` throughput: schedule
  and drain a long cascade of callbacks and timeouts.
* ``pingpong`` — end-to-end MAD-MPI ping-pong wall-clock (host seconds per
  simulated exchange), plus the simulated makespan as a fidelity guard.
* ``random_traffic`` — irregular multi-flow replay wall-clock, the
  closest thing to a real application's host-side profile.

All workloads are deterministic (seeded); only the wall-clock readings
vary between hosts and runs.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import deque
from collections.abc import Callable, Iterator

from repro.core.data import VirtualData
from repro.core.packet import PacketWrap
from repro.core.window import OptimizationWindow
from repro.errors import ReproError, StrategyError

__all__ = [
    "LegacyWindow",
    "bench_window_ops",
    "bench_event_loop",
    "bench_pingpong",
    "bench_random_traffic",
    "run_suite",
    "render_perf",
    "write_bench",
]


class LegacyWindow:
    """The seed repo's O(n) optimization window, frozen for comparison.

    This is the pre-overhaul implementation (deque storage, linear
    ``take``, full-sum ``pending_bytes``/``backlog``), kept verbatim so
    ``bench_window_ops`` can report a measured speedup of the live
    :class:`~repro.core.window.OptimizationWindow` against it.  Not for
    engine use.
    """

    def __init__(self, n_rails: int) -> None:
        if n_rails < 1:
            raise ValueError("window needs at least one rail")
        self.n_rails = n_rails
        self._common: deque = deque()
        self._dedicated: list = [deque() for _ in range(n_rails)]
        self.peak_wraps = 0
        self.total_submitted = 0

    def submit(self, wrap: PacketWrap) -> None:
        if wrap.rail is not None:
            self._dedicated[wrap.rail].append(wrap)
        else:
            self._common.append(wrap)
        self.total_submitted += 1
        occupancy = len(self)
        if occupancy > self.peak_wraps:
            self.peak_wraps = occupancy

    def eligible(self, rail: int) -> Iterator[PacketWrap]:
        yield from self._dedicated[rail]
        yield from self._common

    def __len__(self) -> int:
        return len(self._common) + sum(len(d) for d in self._dedicated)

    def pending_bytes(self, rail: int | None = None) -> int:
        if rail is None:
            total = sum(w.length for w in self._common)
            total += sum(w.length for d in self._dedicated for w in d)
            return total
        return sum(w.length for w in self.eligible(rail))

    def backlog(self, dest: int | None = None) -> int:
        if dest is None:
            return len(self)
        return sum(1 for w in self._all() if w.dest == dest)

    def _all(self) -> Iterator[PacketWrap]:
        yield from self._common
        for d in self._dedicated:
            yield from d

    def take(self, wrap: PacketWrap) -> None:
        target = self._dedicated[wrap.rail] if wrap.rail is not None \
            else self._common
        try:
            target.remove(wrap)
        except ValueError:
            raise StrategyError(f"{wrap!r} not in the window") from None


def _make_wrap(i: int, n_dests: int, seq: int) -> PacketWrap:
    return PacketWrap(dest=i % n_dests, flow=0, tag=0, seq=seq,
                      data=VirtualData(64 + (i % 7) * 128))


def bench_window_ops(
    window_factory: Callable[[int], object],
    backlog: int = 1000,
    rounds: int = 5000,
    n_rails: int = 2,
    n_dests: int = 4,
) -> dict:
    """Sustained take+submit+query churn at a held backlog depth.

    Models the strategy pull path under load: every round removes one wrap
    mid-window (a strategy commit), submits a replacement (application
    traffic keeps arriving) and reads the counters a strategy consults
    (per-rail pending bytes, per-dest backlog).  Returns ops/s.
    """
    import random

    if backlog < 1 or rounds < 1:
        raise ReproError(f"bad bench shape backlog={backlog} rounds={rounds}")
    win = window_factory(n_rails)
    wraps = []
    for i in range(backlog):
        w = _make_wrap(i, n_dests, seq=i)
        win.submit(w)
        wraps.append(w)
    rng = random.Random(0)
    t0 = time.perf_counter()
    for i in range(rounds):
        victim = wraps.pop(rng.randrange(len(wraps)))
        win.take(victim)
        w = _make_wrap(i, n_dests, seq=backlog + i)
        win.submit(w)
        wraps.append(w)
        win.pending_bytes(0)
        win.backlog(dest=i % n_dests)
    wall_s = time.perf_counter() - t0
    return {
        "backlog": backlog,
        "rounds": rounds,
        "wall_s": wall_s,
        "ops_per_s": rounds / wall_s,
    }


def bench_event_loop(n_events: int = 200_000) -> dict:
    """Raw kernel throughput: a self-refilling callback cascade + timeouts."""
    from repro.sim import Simulator

    if n_events < 1:
        raise ReproError(f"bad event count {n_events}")
    sim = Simulator()
    remaining = [n_events]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            # Alternate a plain callback with a Timeout event so both run
            # paths of the loop are exercised.
            if remaining[0] % 2:
                sim.schedule(0.1, tick)
            else:
                sim.timeout(0.1).add_callback(lambda _evt: tick())

    tick()
    t0 = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - t0
    processed = sim.events_processed
    return {
        "events": processed,
        "wall_s": wall_s,
        "events_per_s": processed / wall_s,
    }


def bench_pingpong(iters: int = 200, size: int = 1024) -> dict:
    """End-to-end MAD-MPI ping-pong: host seconds per simulated exchange.

    The simulated one-way latency is reported alongside as a fidelity
    guard: optimization PRs must move ``wall_s`` and leave ``sim_us_oneway``
    untouched.
    """
    from repro.bench.pingpong import pingpong_single
    from repro.netsim import MX_MYRI10G

    t0 = time.perf_counter()
    oneway_us = pingpong_single("madmpi", MX_MYRI10G, size=size,
                                iters=iters, warmup=1)
    wall_s = time.perf_counter() - t0
    return {
        "iters": iters,
        "size": size,
        "wall_s": wall_s,
        "exchanges_per_s": iters / wall_s,
        "sim_us_oneway": oneway_us,
    }


def bench_random_traffic(n_messages: int = 300, seed: int = 7) -> dict:
    """Irregular multi-flow replay wall-clock (aggregation strategy)."""
    from repro.bench.backends import make_backend_pair
    from repro.bench.workloads import TrafficSpec, generate_messages, replay
    from repro.netsim import KB, MX_MYRI10G

    spec = TrafficSpec(n_messages=n_messages, n_flows=6, n_tags=4,
                       min_size=16, max_size=8 * KB, large_fraction=0.05,
                       burst_prob=0.8)
    messages = generate_messages(spec, seed=seed)
    pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                             strategy="aggregation")
    t0 = time.perf_counter()
    replay(pair, messages, verify_content=False)
    wall_s = time.perf_counter() - t0
    return {
        "messages": n_messages,
        "seed": seed,
        "wall_s": wall_s,
        "messages_per_s": n_messages / wall_s,
        "sim_us_makespan": pair.sim.now,
    }


def run_suite(quick: bool = False, backlog: int = 1000) -> dict:
    """Run every microbenchmark; returns the ``BENCH_perf.json`` payload."""
    rounds = 500 if quick else 5000
    window_new = bench_window_ops(OptimizationWindow, backlog=backlog,
                                  rounds=rounds)
    window_old = bench_window_ops(LegacyWindow, backlog=backlog,
                                  rounds=rounds)
    results = {
        "window_ops": {
            **window_new,
            "legacy_ops_per_s": window_old["ops_per_s"],
            "speedup_vs_legacy": window_new["ops_per_s"]
                                 / window_old["ops_per_s"],
        },
        "event_loop": bench_event_loop(20_000 if quick else 200_000),
        "pingpong": bench_pingpong(iters=30 if quick else 200),
        "random_traffic": bench_random_traffic(60 if quick else 300),
    }
    return {
        "schema": "repro-perf/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "quick": quick,
        "results": results,
    }


def render_perf(payload: dict) -> str:
    """Human-readable table of one suite run."""
    r = payload["results"]
    w = r["window_ops"]
    lines = [
        f"== Engine host-side performance (python {payload['python']}, "
        f"quick={payload['quick']}) ==",
        f"  window ops @ backlog {w['backlog']:>5}: "
        f"{w['ops_per_s']:>12,.0f} ops/s   "
        f"(legacy {w['legacy_ops_per_s']:>10,.0f} ops/s, "
        f"speedup {w['speedup_vs_legacy']:.1f}x)",
        f"  event loop:                  "
        f"{r['event_loop']['events_per_s']:>12,.0f} events/s   "
        f"({r['event_loop']['events']} events)",
        f"  ping-pong ({r['pingpong']['size']}B):            "
        f"{r['pingpong']['exchanges_per_s']:>12,.1f} exchanges/s "
        f"(sim {r['pingpong']['sim_us_oneway']:.3f} us one-way)",
        f"  random traffic:              "
        f"{r['random_traffic']['messages_per_s']:>12,.1f} msgs/s     "
        f"(sim makespan {r['random_traffic']['sim_us_makespan']:.1f} us)",
    ]
    return "\n".join(lines)


def write_bench(payload: dict, path: str = "BENCH_perf.json") -> str:
    """Write the payload as pretty-printed JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path

"""ASCII rendering of figure series as log-log plots.

The paper's figures are log-log curves; :func:`render_plot` draws the same
curves in a terminal grid so a reader can eyeball shapes (who is above
whom, where curves converge) without leaving the benchmark output.  One
distinct marker per series; overlapping points show the *later* series'
marker with a ``*`` when two series collide exactly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.bench.report import Series
from repro.errors import ReproError
from repro.netsim.units import format_size

__all__ = ["render_plot"]

_MARKERS = "ox+#@%"


def render_plot(
    title: str,
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
) -> str:
    """Draw the series into a character grid; returns the printable text."""
    if not series:
        raise ReproError("nothing to plot")
    if len(series) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series per plot")
    if width < 16 or height < 6:
        raise ReproError(f"plot area {width}x{height} too small")
    xs = [x for s in series for x in s.sizes]
    ys = [y for s in series for y in s.values]
    if any(v <= 0 for v in xs + ys) and (logx or logy):
        raise ReproError("log axes need strictly positive data")

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    x_lo, x_hi = min(map(tx, xs)), max(map(tx, xs))
    y_lo, y_hi = min(map(ty, ys)), max(map(ty, ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, s in zip(_MARKERS, series, strict=False):
        for x, y in zip(s.sizes, s.values, strict=True):
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = (height - 1) - round((ty(y) - y_lo) / y_span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "*"

    y_top = f"{10 ** y_hi if logy else y_hi:.6g}"
    y_bot = f"{10 ** y_lo if logy else y_lo:.6g}"
    lines = [title]
    for idx, row in enumerate(grid):
        label = y_top if idx == 0 else (y_bot if idx == height - 1 else "")
        lines.append(f"{label:>10} |{''.join(row)}|")
    x_left = format_size(int(round(10 ** x_lo))) if logx \
        else f"{x_lo:.6g}"
    x_right = format_size(int(round(10 ** x_hi))) if logx \
        else f"{x_hi:.6g}"
    axis = f"{'':>10} +{'-' * width}+"
    ticks = f"{'':>11}{x_left}{' ' * max(1, width - len(x_left) - len(x_right))}{x_right}"
    lines.append(axis)
    lines.append(ticks)
    legend = "   ".join(f"{m}={s.label}"
                        for m, s in zip(_MARKERS, series, strict=False))
    lines.append(f"{'':>11}{legend}   (* = overlap)")
    return "\n".join(lines)

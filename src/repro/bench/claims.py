"""Machine-checkable verdicts for every quantitative claim in the paper.

Each :class:`Claim` names the paper passage, how we measure it, and the
acceptance band; :func:`evaluate_claims` runs the needed sweeps once and
returns one verdict per claim.  ``python -m repro validate`` prints the
table — the reproduction's self-audit, mirroring EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.bench.report import find_series, gain_percent
from repro.bench.sweeps import run_figure2, run_figure3, run_figure4
from repro.netsim import KB, MB, MX_MYRI10G, QUADRICS_QM500

__all__ = ["Claim", "Verdict", "CLAIMS", "evaluate_claims", "render_verdicts"]

#: Reduced sweeps keep `validate` interactive; the full benches use the
#: complete figure axes.
_FIG2_SIZES = [4, 8, 16, 32, 64, 2 * MB]
_FIG3_SIZES = [4, 8, 16, 32, 64, 1 * KB]
_FIG4_SIZES = [256 * KB, 1 * MB, 2 * MB]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper's evaluation."""

    claim_id: str
    figure: str
    text: str               # the paper's wording (abridged)
    measure: Callable[[dict], float]
    lo: float
    hi: float
    unit: str


@dataclass(frozen=True)
class Verdict:
    claim: Claim
    measured: float

    @property
    def passed(self) -> bool:
        return self.claim.lo <= self.measured <= self.claim.hi


def _sweeps() -> dict:
    """Run every sweep the claims need, once."""
    return {
        "fig2_mx": run_figure2(MX_MYRI10G, sizes=_FIG2_SIZES, iters=2),
        "fig2_q": run_figure2(QUADRICS_QM500, sizes=_FIG2_SIZES, iters=2),
        "fig3_mx16": run_figure3(MX_MYRI10G, n_segments=16,
                                 sizes=_FIG3_SIZES, iters=2),
        "fig3_q16": run_figure3(QUADRICS_QM500, n_segments=16,
                                sizes=_FIG3_SIZES, iters=2),
        "fig4_mx": run_figure4(MX_MYRI10G, sizes=_FIG4_SIZES, iters=2),
        "fig4_q": run_figure4(QUADRICS_QM500, sizes=_FIG4_SIZES, iters=2),
    }


def _overhead_small(data: dict, key: str) -> float:
    mad = find_series(data[key], "madmpi")
    mpich = find_series(data[key], "mpich")
    return max(mad.at(s) - mpich.at(s) for s in (4, 8, 16, 32, 64))


def _peak_bw(data: dict, key: str) -> float:
    return find_series(data[key], "madmpi").to_bandwidth().at(2 * MB)


def _peak_gain(data: dict, key: str, over: str) -> float:
    mad = find_series(data[key], "madmpi")
    other = find_series(data[key], over)
    return max(gain_percent(b, m)
               for b, m in zip(other.values, mad.values, strict=True))


CLAIMS: tuple[Claim, ...] = (
    Claim("overhead-mx", "Fig 2(a)",
          "constant overhead of less than 0.5 us (MX)",
          lambda d: _overhead_small(d, "fig2_mx"), 0.0, 0.5, "us"),
    Claim("overhead-quadrics", "Fig 2(c)",
          "constant overhead of less than 0.5 us (Quadrics)",
          lambda d: _overhead_small(d, "fig2_q"), 0.0, 0.5, "us"),
    Claim("bw-mx", "Fig 2(b)",
          "reaches 1155 MB/s over MYRI-10G",
          lambda d: _peak_bw(d, "fig2_mx"), 1100.0, 1250.0, "MB/s"),
    Claim("bw-quadrics", "Fig 2(d)",
          "835 MB/s over QUADRICS",
          lambda d: _peak_bw(d, "fig2_q"), 790.0, 880.0, "MB/s"),
    Claim("multiseg-mx", "Fig 3(b)",
          "up to 70% faster than other MPIs over MX-10G (vs OpenMPI)",
          lambda d: _peak_gain(d, "fig3_mx16", "openmpi"), 55.0, 80.0, "%"),
    Claim("multiseg-quadrics", "Fig 3(d)",
          "up to 50% faster than MPICH over QUADRICS",
          lambda d: _peak_gain(d, "fig3_q16", "mpich"), 35.0, 65.0, "%"),
    Claim("datatype-mpich-mx", "Fig 4(a)",
          "gain of about 70% vs MPICH over MX",
          lambda d: _peak_gain(d, "fig4_mx", "mpich"), 55.0, 80.0, "%"),
    Claim("datatype-openmpi-mx", "Fig 4(a)",
          "about 50% vs OpenMPI over MX",
          lambda d: _peak_gain(d, "fig4_mx", "openmpi"), 40.0, 65.0, "%"),
    Claim("datatype-quadrics", "Fig 4(b)",
          "until about 70% vs MPICH over QUADRICS",
          lambda d: _peak_gain(d, "fig4_q", "mpich"), 45.0, 75.0, "%"),
)


def evaluate_claims(claims: Sequence[Claim] = CLAIMS,
                    data: dict | None = None) -> list[Verdict]:
    """Measure every claim; ``data`` may inject precomputed sweeps."""
    data = data if data is not None else _sweeps()
    return [Verdict(claim=c, measured=c.measure(data)) for c in claims]


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Printable verdict table."""
    lines = [f"{'claim':<22} {'figure':<9} {'band':>16} {'measured':>10}  "
             f"verdict"]
    for v in verdicts:
        band = f"[{v.claim.lo:g}, {v.claim.hi:g}] {v.claim.unit}"
        status = "PASS" if v.passed else "FAIL"
        lines.append(
            f"{v.claim.claim_id:<22} {v.claim.figure:<9} {band:>16} "
            f"{v.measured:>10.2f}  {status}  — {v.claim.text}"
        )
    n_pass = sum(v.passed for v in verdicts)
    lines.append(f"{n_pass}/{len(verdicts)} claims reproduced")
    return "\n".join(lines)

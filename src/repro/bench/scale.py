"""Large-cluster scale benchmark over a sparse netsim topology.

The full-mesh :class:`~repro.netsim.topology.Cluster` builds O(N^2) links,
which is fine for the paper's 2-16 node testbeds but useless for asking
"how fast does the kernel chew through a 1024-node cluster's traffic?".
This bench wires :class:`~repro.netsim.nic.Nic` and
:class:`~repro.netsim.link.Link` directly into a **hypercube**: node ``i``
links to ``i ^ (1 << k)`` for every bit ``k``, so a 1024-node cluster
costs 10 links per node instead of 1023.  Frames carry their final
destination in the payload and are forwarded hop by hop, correcting the
lowest differing address bit each hop (<= log2(N) hops, deterministic).

The workload is seeded random traffic: every frame picks a random
(source, destination) pair and a staggered injection time, so the event
queue sees the mix the calendar-queue kernel is built for — bursts of
same-timestamp NIC completions interleaved with far-flung timers.
Everything except the wall-clock readings is deterministic; the simulated
makespan doubles as a cross-host fidelity guard in ``BENCH_perf.json``.
"""

from __future__ import annotations

import random
import time

from repro.errors import ReproError
from repro.netsim.frames import Frame, FrameKind
from repro.netsim.link import Link
from repro.netsim.nic import Nic
from repro.netsim.profiles import MX_MYRI10G, NicProfile
from repro.sim import Simulator, Tracer

__all__ = ["build_hypercube", "bench_scale"]


def _next_hop(node: int, final: int) -> int:
    """Correct the lowest differing address bit (dimension-order routing)."""
    diff = node ^ final
    return node ^ (diff & -diff)


def build_hypercube(
    sim: Simulator,
    n_nodes: int,
    profile: NicProfile = MX_MYRI10G,
) -> list[Nic]:
    """One NIC per node, links along every hypercube dimension."""
    if n_nodes < 2 or n_nodes & (n_nodes - 1):
        raise ReproError(f"hypercube needs a power-of-two node count, "
                         f"got {n_nodes}")
    tracer = Tracer()  # disabled: at 1024 nodes tracing would dwarf the run
    nics = [
        Nic(sim, node_id=i, rail=0, profile=profile, tracer=tracer)
        for i in range(n_nodes)
    ]
    dim = n_nodes.bit_length() - 1
    for i in range(n_nodes):
        for k in range(dim):
            j = i ^ (1 << k)
            nics[i].connect(
                j,
                Link(sim, nics[i], nics[j], latency_us=profile.latency_us,
                     tracer=tracer),
            )
    return nics


def bench_scale(
    n_nodes: int = 256,
    n_frames: int = 20_000,
    seed: int = 11,
    payload_bytes: int = 512,
) -> dict:
    """Seeded random traffic across a hypercube of ``n_nodes`` NICs.

    Returns host events/s plus the (deterministic) simulated makespan and
    delivery counters.  ``n_nodes`` scales to 1024 from the CLI.
    """
    if n_frames < 1:
        raise ReproError(f"bad frame count {n_frames}")
    if payload_bytes < 1:
        raise ReproError(f"bad payload size {payload_bytes}")
    sim = Simulator()
    nics = build_hypercube(sim, n_nodes)
    delivered = [0]
    forwarded = [0]

    def make_handler(node_id: int):
        nic = nics[node_id]

        def handle(frame: Frame) -> None:
            final = frame.payload
            if final == node_id:
                delivered[0] += 1
                return
            forwarded[0] += 1
            nxt = _next_hop(node_id, final)
            nic.post_send(Frame(src_node=node_id, dst_node=nxt,
                                kind=FrameKind.DATA, wire_size=frame.wire_size,
                                payload=final))

        return handle

    for i in range(n_nodes):
        nics[i].set_receive_handler(make_handler(i))

    rng = random.Random(seed)
    t0 = time.perf_counter()
    for n in range(n_frames):
        src = rng.randrange(n_nodes)
        final = rng.randrange(n_nodes - 1)
        if final >= src:
            final += 1  # never self-addressed
        # Stagger injections so the queue mixes bursty same-time
        # completions with timers spread across the run.
        at = (n % 97) * 0.25 + rng.random() * 0.05

        def inject(src: int = src, final: int = final) -> None:
            nics[src].post_send(Frame(src_node=src,
                                      dst_node=_next_hop(src, final),
                                      kind=FrameKind.DATA,
                                      wire_size=payload_bytes,
                                      payload=final))

        sim.schedule(at, inject)
    sim.run()
    wall_s = time.perf_counter() - t0
    events = sim.events_processed
    return {
        "n_nodes": n_nodes,
        "n_frames": n_frames,
        "seed": seed,
        "delivered": delivered[0],
        "forwarded": forwarded[0],
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s,
        "sim_us_makespan": sim.now,
    }

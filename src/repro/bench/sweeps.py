"""The paper's figure sweeps: which backends, sizes and workloads per figure."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.bench.backends import backend_label
from repro.bench.pingpong import (
    pingpong_datatype,
    pingpong_multiseg,
    pingpong_single,
)
from repro.bench.report import Series
from repro.netsim import QUADRICS_QM500, NicProfile
from repro.netsim.units import log2_size_sweep

__all__ = [
    "FIG2_SIZES",
    "FIG3_SIZES_MX",
    "FIG3_SIZES_QUADRICS",
    "FIG4_SIZES",
    "MX_BACKENDS",
    "QUADRICS_BACKENDS",
    "run_figure2",
    "run_figure3",
    "run_figure4",
]

#: Figure 2 x axis: 4 B .. 2 MB.
FIG2_SIZES = log2_size_sweep("4", "2M")
#: Figure 3 x axes: per-segment 4 B .. 16 KB (MX) / 4 B .. 8 KB (Quadrics).
FIG3_SIZES_MX = log2_size_sweep("4", "16K")
FIG3_SIZES_QUADRICS = log2_size_sweep("4", "8K")
#: Figure 4 x axis: 256 KB .. 2 MB.
FIG4_SIZES = log2_size_sweep("256K", "2M")

#: The backends each figure compares, per network (matching the legends).
MX_BACKENDS = ("madmpi", "mpich", "openmpi")
QUADRICS_BACKENDS = ("madmpi", "mpich")


def _sweep(
    fn: Callable[..., float],
    backends: Sequence[str],
    profile: NicProfile,
    sizes: Sequence[int],
    **kwargs,
) -> list[Series]:
    out = []
    for backend in backends:
        ys = [fn(backend, profile, size, **kwargs) for size in sizes]
        out.append(Series(label=backend_label(backend, profile),
                          backend=backend, sizes=list(sizes), values=ys))
    return out


def run_figure2(
    profile: NicProfile,
    sizes: Sequence[int] = (),
    iters: int = 3,
) -> list[Series]:
    """Figure 2 data: single-segment latency per backend (us).

    Bandwidth (the (b)/(d) panels) is derived from the same latencies via
    :meth:`Series.to_bandwidth`.
    """
    sizes = list(sizes) or FIG2_SIZES
    backends = MX_BACKENDS if profile.tech == "mx" else QUADRICS_BACKENDS
    return _sweep(pingpong_single, backends, profile, sizes, iters=iters)


def run_figure3(
    profile: NicProfile,
    n_segments: int,
    sizes: Sequence[int] = (),
    iters: int = 3,
) -> list[Series]:
    """Figure 3 data: multi-segment burst latency per backend (us)."""
    if not sizes:
        sizes = FIG3_SIZES_MX if profile.tech == "mx" else FIG3_SIZES_QUADRICS
    backends = MX_BACKENDS if profile.tech == "mx" else QUADRICS_BACKENDS
    return _sweep(pingpong_multiseg, backends, profile, list(sizes),
                  n_segments=n_segments, iters=iters)


def run_figure4(
    profile: NicProfile,
    sizes: Sequence[int] = (),
    iters: int = 3,
) -> list[Series]:
    """Figure 4 data: indexed-datatype transfer time per backend (us)."""
    sizes = list(sizes) or FIG4_SIZES
    backends = MX_BACKENDS if profile.tech == "mx" else QUADRICS_BACKENDS
    return _sweep(pingpong_datatype, backends, profile, sizes, iters=iters)

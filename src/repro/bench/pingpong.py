"""The paper's three ping-pong programs, written once for every backend.

* :func:`pingpong_single` — §5.1 / Figure 2: single-segment contiguous
  messages, reporting one-way latency (half round trip).
* :func:`pingpong_multiseg` — §5.2 / Figure 3: each ping is a series of
  independent ``MPI_Isend`` operations, **each on its own communicator**
  ("to demonstrate that the scope of MAD-MPI optimizations is really
  global").
* :func:`pingpong_datatype` — §5.3 / Figure 4: arrays of an indexed
  datatype of (64 B, 256 KB) block pairs.

Each measurement builds a fresh deterministic simulation, runs ``warmup``
unmeasured iterations, then averages the remaining round trips.  A small
per-``isend`` host cost (``ISEND_CPU_US``) spaces successive submissions —
without it all isends of a burst would be issued in literally zero time,
which neither hardware nor the paper's testbed can do; with it, the first
segment leaves immediately while the NIC-busy window accumulates the rest,
reproducing the dynamics of §3.1.
"""

from __future__ import annotations


from repro.bench.backends import BackendPair, make_backend_pair
from repro.core.data import VirtualData
from repro.errors import ReproError
from repro.madmpi.datatype import indexed_small_large
from repro.netsim import NicProfile

__all__ = [
    "ISEND_CPU_US",
    "pingpong_single",
    "pingpong_multiseg",
    "pingpong_datatype",
]

#: Host CPU cost of issuing one MPI_Isend (all backends, both sides).
ISEND_CPU_US = 0.10


def _measure(pair: BackendPair, ping, pong, iters: int, warmup: int) -> float:
    """Run the ping/pong process pair; return mean one-way time (us)."""
    if iters < 1 or warmup < 0:
        raise ReproError(f"bad iteration counts iters={iters} warmup={warmup}")
    sim = pair.sim
    samples: list[float] = []

    def pinger():
        for it in range(warmup + iters):
            t0 = sim.now
            yield from ping(it)
            rtt = sim.now - t0
            if it >= warmup:
                samples.append(rtt / 2.0)

    def ponger():
        for _ in range(warmup + iters):
            yield from pong()

    sim.spawn(ponger(), name="pong")
    sim.run_process(pinger(), name="ping")
    return sum(samples) / len(samples)


def pingpong_single(
    backend: str,
    profile: NicProfile,
    size: int,
    iters: int = 3,
    warmup: int = 1,
    strategy: str = "aggregation",
) -> float:
    """One-way latency (us) for a single contiguous ``size``-byte message."""
    pair = make_backend_pair(backend, rails=(profile,), strategy=strategy)
    m0, m1 = pair.m0, pair.m1

    def ping(_it):
        yield from m0.send(VirtualData(size), dest=1, tag=0)
        yield from m0.recv(source=1, tag=0)

    def pong():
        yield from m1.recv(source=0, tag=0)
        yield from m1.send(VirtualData(size), dest=0, tag=0)

    return _measure(pair, ping, pong, iters, warmup)


def pingpong_multiseg(
    backend: str,
    profile: NicProfile,
    seg_size: int,
    n_segments: int,
    iters: int = 3,
    warmup: int = 1,
    strategy: str = "aggregation",
) -> float:
    """One-way latency (us) for a burst of ``n_segments`` independent isends.

    Each segment uses a separate communicator, as in the paper's §5.2
    program; the reported time is until the complete burst has been
    received (and symmetrically ponged back).
    """
    if n_segments < 1:
        raise ReproError(f"need at least one segment, got {n_segments}")
    pair = make_backend_pair(backend, rails=(profile,), strategy=strategy)
    m0, m1 = pair.m0, pair.m1
    sim = pair.sim
    comms = [pair.world.dup() for _ in range(n_segments)]

    def burst(mpi, dest):
        reqs = []
        for comm in comms:
            reqs.append(mpi.isend(VirtualData(seg_size), dest=dest, comm=comm))
            yield sim.timeout(ISEND_CPU_US)
        return reqs

    def gather(mpi, source):
        recvs = [mpi.irecv(source=source, comm=comm) for comm in comms]
        yield sim.all_of([r.done for r in recvs])

    def ping(_it):
        sreqs = yield from burst(m0, dest=1)
        yield from gather(m0, source=1)
        yield sim.all_of([r.done for r in sreqs])

    def pong():
        yield from gather(m1, source=0)
        sreqs = yield from burst(m1, dest=0)
        yield sim.all_of([r.done for r in sreqs])

    return _measure(pair, ping, pong, iters, warmup)


def pingpong_datatype(
    backend: str,
    profile: NicProfile,
    total_size: int,
    small: int = 64,
    large: int = 256 * 1024,
    iters: int = 3,
    warmup: int = 1,
    strategy: str = "aggregation",
) -> float:
    """One-way transfer time (us) for an indexed-datatype message.

    ``total_size`` is the data byte count of the exchanged array; the
    datatype repeats the paper's (64 B, 256 KB) block pair enough times to
    reach it (so 256 KB is one pair rounded down — one small + one large
    block dominate — and 2 MB is eight pairs).
    """
    pair_bytes = small + large
    repeats = max(1, round(total_size / pair_bytes))
    dtype = indexed_small_large(repeats=repeats, small=small, large=large)
    pair = make_backend_pair(backend, rails=(profile,), strategy=strategy)
    m0, m1 = pair.m0, pair.m1

    def ping(_it):
        rreq = m0.irecv(source=1, tag=0, datatype=dtype)
        sreq = m0.isend(VirtualData(dtype.extent), dest=1, tag=0,
                        datatype=dtype)
        yield rreq.done
        yield sreq.done

    def pong():
        rreq = m1.irecv(source=0, tag=0, datatype=dtype)
        yield rreq.done
        sreq = m1.isend(VirtualData(dtype.extent), dest=0, tag=0,
                        datatype=dtype)
        yield sreq.done

    return _measure(pair, ping, pong, iters, warmup)

"""Benchmark harness: backends, workloads, sweeps and reporting."""

from repro.bench.backends import (
    BACKENDS,
    BackendPair,
    backend_label,
    make_backend_pair,
)
from repro.bench.pingpong import (
    ISEND_CPU_US,
    pingpong_datatype,
    pingpong_multiseg,
    pingpong_single,
)
from repro.bench.report import (
    Series,
    find_series,
    gain_percent,
    render_gains,
    render_table,
)
from repro.bench.sweeps import (
    FIG2_SIZES,
    FIG3_SIZES_MX,
    FIG3_SIZES_QUADRICS,
    FIG4_SIZES,
    MX_BACKENDS,
    QUADRICS_BACKENDS,
    run_figure2,
    run_figure3,
    run_figure4,
)

__all__ = [
    "BACKENDS",
    "BackendPair",
    "FIG2_SIZES",
    "FIG3_SIZES_MX",
    "FIG3_SIZES_QUADRICS",
    "FIG4_SIZES",
    "ISEND_CPU_US",
    "MX_BACKENDS",
    "QUADRICS_BACKENDS",
    "Series",
    "backend_label",
    "find_series",
    "gain_percent",
    "make_backend_pair",
    "pingpong_datatype",
    "pingpong_multiseg",
    "pingpong_single",
    "render_gains",
    "render_table",
    "run_figure2",
    "run_figure3",
    "run_figure4",
]

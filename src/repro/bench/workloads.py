"""Irregular multi-flow workload generation.

Paper §1-2 motivates the engine with "the irregular and multi-flow
communication schemes" of composite applications that simple ping-pongs do
not capture.  This module generates seeded random traffic — many flows,
mixed sizes, bursts, priorities — and replays it through any backend,
so tests can assert correctness invariants under realistic chaos and the
benches can compare strategies beyond the paper's regular workloads.

Generation is fully deterministic per seed (``random.Random``), matching
the library-wide reproducibility guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import ReproError

__all__ = ["TrafficSpec", "Message", "generate_messages", "replay"]


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a random traffic mix."""

    n_messages: int = 50
    n_flows: int = 4
    n_tags: int = 4
    min_size: int = 1
    max_size: int = 64 * 1024
    large_fraction: float = 0.1       # fraction forced above 128 KB
    large_max: int = 1 << 20
    burst_prob: float = 0.5           # chance the next message has no gap
    max_gap_us: float = 5.0
    priority_levels: int = 3

    def __post_init__(self) -> None:
        if self.n_messages < 1 or self.n_flows < 1 or self.n_tags < 1:
            raise ReproError("traffic spec needs at least one of everything")
        if not 0 <= self.min_size <= self.max_size:
            raise ReproError(
                f"bad size range [{self.min_size}, {self.max_size}]"
            )
        if not 0.0 <= self.large_fraction <= 1.0:
            raise ReproError(f"bad large_fraction {self.large_fraction}")
        if not 0.0 <= self.burst_prob <= 1.0:
            raise ReproError(f"bad burst_prob {self.burst_prob}")


@dataclass(frozen=True)
class Message:
    """One generated message: submission gap, addressing, size, priority."""

    gap_us: float
    flow: int
    tag: int
    size: int
    priority: int
    payload_seed: int

    def payload(self) -> bytes:
        """Deterministic content so receivers can verify integrity."""
        rng = random.Random(self.payload_seed)
        return bytes(rng.getrandbits(8) for _ in range(min(self.size, 512))) \
            + bytes(max(0, self.size - 512))


def generate_messages(spec: TrafficSpec, seed: int = 0) -> list[Message]:
    """Produce the deterministic message list for ``spec`` and ``seed``."""
    rng = random.Random(seed)
    out: list[Message] = []
    for i in range(spec.n_messages):
        if rng.random() < spec.large_fraction:
            size = rng.randint(128 * 1024, spec.large_max)
        else:
            size = rng.randint(spec.min_size, spec.max_size)
        gap = 0.0 if rng.random() < spec.burst_prob \
            else rng.uniform(0.0, spec.max_gap_us)
        out.append(Message(
            gap_us=gap,
            flow=rng.randrange(spec.n_flows),
            tag=rng.randrange(spec.n_tags),
            size=size,
            priority=rng.randrange(spec.priority_levels),
            payload_seed=seed * 1_000_003 + i,
        ))
    return out


def replay(pair, messages: Sequence[Message], verify_content: bool = True):
    """Replay ``messages`` from rank 0 to rank 1 of a backend pair.

    Returns the list of completed receive requests (in per-flow order).
    Raises through the simulator if anything is lost, corrupted, reordered
    within a flow, or left dangling.
    """
    sim = pair.sim
    m0, m1 = pair.m0, pair.m1
    from repro.core.data import VirtualData

    # One communicator per flow: this is what makes the traffic genuinely
    # multi-flow from the engine's point of view.
    flows = sorted({msg.flow for msg in messages})
    comms = {f: pair.world.dup() for f in flows}

    def sender():
        for msg in messages:
            if msg.gap_us > 0:
                yield sim.timeout(msg.gap_us)
            data = msg.payload() if verify_content else VirtualData(msg.size)
            m0.isend(data, dest=1, tag=msg.tag, comm=comms[msg.flow])

    done: list = []

    def receiver():
        # Post receives in submission order (tags + communicators
        # disambiguate through the matcher as usual).
        reqs = []
        for msg in messages:
            reqs.append((msg, m1.irecv(source=0, tag=msg.tag,
                                       comm=comms[msg.flow],
                                       nbytes=msg.size)))
        for msg, req in reqs:
            yield req.done
            done.append((msg, req))

    sim.spawn(sender(), name="traffic-sender")
    sim.run_process(receiver(), name="traffic-receiver")
    if verify_content:
        for msg, req in done:
            got = req.data.tobytes()
            if got != msg.payload():
                raise ReproError(
                    f"payload corrupted for {msg} (got {len(got)} bytes)"
                )
    return done

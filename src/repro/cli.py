"""Command-line interface: regenerate the paper's figures as text tables.

Usage::

    python -m repro figures                 # every figure, full sweeps
    python -m repro figures --quick         # coarse sweeps (seconds)
    python -m repro figures --only fig3     # one figure family
    python -m repro strategies              # list the strategy database
    python -m repro profiles                # list NIC profiles
    python -m repro perf                    # host-side wall-clock benchmarks

The output is the same tables the benchmark harness prints (size rows, one
column per backend, peak/mean gains), suitable for diffing against
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench import (
    render_gains,
    render_table,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.netsim import KB, MB, MX_MYRI10G, PROFILES, QUADRICS_QM500

__all__ = ["main", "build_parser"]

QUICK_FIG2 = [4, 64, 1 * KB, 16 * KB, 256 * KB, 2 * MB]
QUICK_FIG3_MX = [4, 64, 1 * KB, 16 * KB]
QUICK_FIG3_Q = [4, 64, 1 * KB, 8 * KB]
QUICK_FIG4 = [256 * KB, 1 * MB, 2 * MB]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NewMadeleine reproduction: regenerate the paper's "
                    "evaluation figures on the simulated 2006 testbed.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate figure tables")
    figures.add_argument("--quick", action="store_true",
                         help="coarse size sweeps (runs in seconds)")
    figures.add_argument("--only", choices=("fig2", "fig3", "fig4"),
                         help="restrict to one figure family")
    figures.add_argument("--iters", type=int, default=3,
                         help="measured ping-pong iterations per point")
    figures.add_argument("--plot", action="store_true",
                         help="also draw each figure as an ASCII log-log plot")

    sub.add_parser("strategies", help="list the strategy database")
    sub.add_parser("profiles", help="list calibrated NIC profiles")
    sub.add_parser("validate",
                   help="measure every paper claim and print PASS/FAIL")

    perf = sub.add_parser(
        "perf",
        help="run host-side wall-clock microbenchmarks of the engine")
    perf.add_argument("--quick", action="store_true",
                      help="short runs (CI smoke; noisier numbers)")
    perf.add_argument("--out", default="BENCH_perf.json", metavar="PATH",
                      help="where to write the JSON payload "
                           "(default: BENCH_perf.json)")
    perf.add_argument("--backlog", type=int, default=1000,
                      help="held window depth for the window-ops bench")
    perf.add_argument("--scale-nodes", type=int, default=256,
                      help="hypercube size for the scale bench "
                           "(power of two, up to 1024; default: 256)")
    perf.add_argument("--check", metavar="PATH", default=None,
                      help="gate the fresh run against a committed "
                           "BENCH_perf.json trajectory (host-neutral "
                           "speedup ratios + simulated-time pins); "
                           "exit 1 on regression")

    report = sub.add_parser(
        "report",
        help="replay a demo workload and print engine/NIC/fault statistics")
    report.add_argument("--reliability", choices=("off", "ack"),
                        default="off",
                        help="transport reliability mode (default: off, "
                             "the paper's no-retransmission engine)")
    report.add_argument("--flow-control", choices=("off", "credit"),
                        default="off",
                        help="credit-based overload protection (default: "
                             "off, the paper's unbounded engine)")
    report.add_argument("--sessions", choices=("off", "epoch"),
                        default="off",
                        help="peer failure detection and session epochs "
                             "(default: off, the paper's crash-free engine)")
    report.add_argument("--rel-timeout", default=None, metavar="US|auto",
                        dest="rel_timeout",
                        help="retransmit timeout: microseconds, or 'auto' "
                             "for the adaptive RTT estimator (requires "
                             "--reliability ack; default: the engine's "
                             "static default)")
    report.add_argument("--hedge", action="store_true",
                        help="opt-in tail hedging: after a p99-ish RTT the "
                             "frame is re-sent on the second-best rail "
                             "(requires --rel-timeout auto and --rails 2)")
    report.add_argument("--rails", type=int, choices=(1, 2), default=1,
                        help="1 = MX only; 2 = MX + Quadrics multirail")
    report.add_argument("--topology",
                        choices=("mesh", "fat-tree", "dragonfly"),
                        default="mesh",
                        help="network fabric between the two nodes "
                             "(default: mesh, the paper's direct links)")
    report.add_argument("--messages", type=int, default=40,
                        help="number of random messages to replay")
    report.add_argument("--seed", type=int, default=0,
                        help="traffic generator seed")
    report.add_argument("--drop-nth", type=int, action="append", default=[],
                        metavar="N",
                        help="drop the Nth frame on the node0->node1 rail0 "
                             "link (repeatable)")
    report.add_argument("--slow-link", type=float, default=None,
                        metavar="FACTOR",
                        help="multiply the node0->node1 rail0 link latency "
                             "by FACTOR for the whole run (degraded link)")
    report.add_argument("--link-down-at", type=float, default=None,
                        metavar="US",
                        help="take the node0->node1 link of the last rail "
                             "permanently down at this time (us)")
    report.add_argument("--json", action="store_true",
                        help="emit the full report as a JSON object instead "
                             "of text tables")

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault schedules through the hardened engine and "
             "audit the survivors' invariants")
    chaos.add_argument("--seed", type=int, default=0,
                       help="first (or only) schedule seed (default: 0)")
    chaos.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="sweep N consecutive seeds starting at --seed")
    chaos.add_argument("--quick", action="store_true",
                       help="smaller workload per seed (the CI profile)")
    chaos.add_argument("--crashes", action="store_true",
                       help="allow crash/restart faults in the schedules")
    chaos.add_argument("--topology", choices=("mesh", "fat-tree"),
                       default="mesh",
                       help="fabric for the chaos cluster (default: mesh; "
                            "fat-tree routes traffic through switches and "
                            "turns partitions into rack partitions)")
    chaos.add_argument("--switch-kills", type=int, default=0, metavar="N",
                       dest="switch_kills",
                       help="kill N healable spine switches per schedule "
                            "(requires --topology fat-tree)")
    chaos.add_argument("--fat-tree-k", type=int, default=4, metavar="K",
                       dest="fat_tree_k",
                       help="fat-tree arity for --topology fat-tree "
                            "(even, >= 4; default: 4)")
    chaos.add_argument("--adaptive", action="store_true",
                       help="run the engines with rel_timeout_us='auto' "
                            "(the measured RTO) instead of the spec's "
                            "static timeout")
    chaos.add_argument("--rtt-drift", action="store_true", dest="rtt_drift",
                       help="append an RTT-drift drill (slow-link ramp + "
                            "jitter) to every schedule, sized so a static "
                            "RTO fires spuriously")
    chaos.add_argument("--shrink", action="store_true",
                       help="minimize each failing schedule and print a "
                            "standalone repro snippet")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full sweep report as JSON")

    sanitize = sub.add_parser(
        "sanitize",
        help="hunt hash- and order-nondeterminism: forced hash "
             "randomization, a de-coalesced kernel, and intra-timestamp "
             "shaking (opt-in; normal runs never take these paths)")
    sanitize.add_argument("--figures", action="store_true",
                          help="byte-compare `repro figures --quick` across "
                               "hash seeds and under the no-coalesce kernel")
    sanitize.add_argument("--chaos", action="store_true",
                          help="byte-compare `repro chaos --seed N --quick` "
                               "the same way")
    sanitize.add_argument("--seed", type=int, default=42,
                          help="chaos schedule seed for --chaos "
                               "(default: 42, the CI pin)")
    sanitize.add_argument("--storm", action="store_true",
                          help="fingerprint the in-process completion-storm "
                               "workload across every sanitize config "
                               "(default when no target is given)")
    sanitize.add_argument("--hash-seeds", type=int, default=3,
                          dest="hash_seeds", metavar="K",
                          help="how many PYTHONHASHSEED values to sweep "
                               "(default: 3)")
    return parser


def _print(out, text: str) -> None:
    print(text, file=out)
    print(file=out)


def _figures(args, out) -> None:
    from repro.bench.plot import render_plot

    iters = args.iters
    if iters < 1:
        raise SystemExit("--iters must be >= 1")

    def maybe_plot(title, series):
        if args.plot:
            _print(out, render_plot(title, series))

    if args.only in (None, "fig2"):
        for profile, panels in ((MX_MYRI10G, "a/b"), (QUADRICS_QM500, "c/d")):
            series = run_figure2(
                profile, sizes=QUICK_FIG2 if args.quick else (), iters=iters)
            title = (f"== Figure 2({panels}): ping-pong latency over "
                     f"{profile.name} ==")
            _print(out, render_table(title, series))
            _print(out, render_table(
                "-- derived bandwidth --",
                [s.to_bandwidth() for s in series]))
            maybe_plot(title, series)
    if args.only in (None, "fig3"):
        for profile, quick_sizes in ((MX_MYRI10G, QUICK_FIG3_MX),
                                     (QUADRICS_QM500, QUICK_FIG3_Q)):
            for nseg in (8, 16):
                series = run_figure3(
                    profile, n_segments=nseg,
                    sizes=quick_sizes if args.quick else (), iters=iters)
                title = (f"== Figure 3: {nseg}-segment ping-pong over "
                         f"{profile.name} ==")
                _print(out, render_table(title, series))
                _print(out, render_gains(series))
                maybe_plot(title, series)
    if args.only in (None, "fig4"):
        for profile in (MX_MYRI10G, QUADRICS_QM500):
            series = run_figure4(
                profile, sizes=QUICK_FIG4 if args.quick else (), iters=iters)
            title = f"== Figure 4: indexed datatype over {profile.name} =="
            _print(out, render_table(title, series))
            _print(out, render_gains(series))
            maybe_plot(title, series)


def _strategies(out) -> None:
    from repro.core import available_strategies, create

    for name in available_strategies():
        strategy = create(name)
        doc = (type(strategy).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        _print(out, f"{name:<14} {summary}")


def _profiles(out) -> None:
    for name, p in sorted(PROFILES.items()):
        _print(out, (
            f"{name:<16} tech={p.tech:<6} latency={p.latency_us:>5.2f}us "
            f"bw={p.bandwidth_mbps:>7.1f}MB/s rdv@{p.rdv_threshold:>6}B "
            f"gs={'y' if p.gather_scatter else 'n'} "
            f"rdma={'y' if p.rdma else 'n'}"
        ))


# The report's engine-stats table, grouped by subsystem.  The groups must
# jointly cover every EngineStats field (asserted at report time) so a new
# counter cannot silently fall out of the report.
REPORT_STAT_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("core", (
        "phys_packets", "items_sent", "aggregated_packets",
        "aggregated_segments", "anticipated_hits", "eager_bytes",
        "rdv_bytes", "wire_bytes", "recv_copies", "recv_copy_bytes",
    )),
    ("reliability", (
        "retransmits", "duplicates_suppressed", "failovers",
        "rails_quarantined", "rails_reprobed", "acks_sent",
        "corrupt_discards", "transport_failures",
    )),
    ("flow_control", (
        "credit_stalls", "window_full_events", "unexpected_overflows",
        "credits_granted", "nacks_sent", "nack_resends",
    )),
    ("sessions", (
        "peers_suspected", "peers_dead", "epochs_started",
        "stale_frames_fenced", "heartbeats_sent",
    )),
    # Chaos / partition-tolerance counters: parking while suspected and
    # recoveries that healed without a teardown.
    ("partition", (
        "peers_recovered", "frames_parked",
    )),
    # Adaptive-timing counters (rel_timeout_us="auto" and per-request
    # deadlines): estimator feed, backoff pressure, tail hedging, expiries.
    ("adaptive", (
        "rtt_samples", "rto_backoffs", "hedges_sent", "hedges_won",
        "deadlines_expired",
    )),
)


def _report_payload(args, pair, messages, stalled) -> dict:
    """Structured report: one dict, rendered as text or dumped as JSON."""
    import dataclasses

    from repro.netsim.stats import (
        adaptive_summary,
        cluster_utilization,
        topology_summary,
    )

    grouped_fields = {f for _, fields in REPORT_STAT_GROUPS for f in fields}
    engines = []
    for mpi in pair.ranks:
        engine = mpi.engine
        stats = dataclasses.asdict(engine.stats)
        missing = sorted(set(stats) - grouped_fields)
        assert not missing, f"EngineStats fields not in any group: {missing}"
        engines.append({
            "node": engine.node_id,
            "strategy": engine.strategy.describe(),
            **{group: {f: stats[f] for f in fields}
               for group, fields in REPORT_STAT_GROUPS},
            "matcher": {
                "duplicates_dropped": engine.matcher.duplicates_dropped,
                "unexpected_bytes": engine.matcher.unexpected_bytes,
                "peak_unexpected_bytes": engine.matcher.peak_unexpected_bytes,
                "refused_total": engine.matcher.refused_total,
            },
            "window": {"peak_bytes": engine.window.peak_bytes,
                       "deferred": engine.collect.n_deferred},
            # Per-peer RTT estimates: empty outside rel_timeout_us="auto",
            # so the JSON shape is mode-independent.
            "rtt": (adaptive_summary(engine.rtt.snapshot())
                    if engine.rtt is not None else {}),
            "rails_ok": [r for r in range(len(engine.node.nics))
                         if engine.reliability.rail_ok(r)],
        })
    return {
        "config": {
            "rails": args.rails,
            "reliability": args.reliability,
            "flow_control": args.flow_control,
            "sessions": args.sessions,
            "rel_timeout": args.rel_timeout,
            "hedge": args.hedge,
            "messages": args.messages,
            "seed": args.seed,
            "topology": args.topology,
        },
        "replay": {
            "ok": stalled is None,
            "messages": len(messages),
            "payload_bytes": sum(m.size for m in messages),
            "elapsed_us": pair.sim.now,
            "error": None if stalled is None else str(stalled),
        },
        "engines": engines,
        "utilization": [
            {"nic": u.name, "busy_fraction": u.busy_fraction,
             "tx_mbps": u.achieved_tx_mbps, "frames_sent": u.frames_sent,
             "bytes_sent": u.bytes_sent}
            for u in cluster_utilization(pair.cluster)
        ],
        "faults": {**pair.cluster.fault_summary(),
                   "conservation_ok":
                       pair.cluster.conservation_ok(allow_faults=True)},
        "topology": topology_summary(pair.cluster),
    }


def _report(args, out) -> int:
    import json

    from repro.bench.backends import make_backend_pair
    from repro.bench.workloads import TrafficSpec, generate_messages, replay
    from repro.core import EngineParams
    from repro.errors import NetworkError, ReproError, SimulationError
    from repro.netsim import FaultPlan
    from repro.netsim.stats import (
        cluster_utilization,
        render_adaptive,
        render_fault_summary,
        render_topology,
        render_utilization,
    )

    if args.messages < 1:
        raise SystemExit("--messages must be >= 1")
    rails = ((MX_MYRI10G,) if args.rails == 1
             else (MX_MYRI10G, QUADRICS_QM500))
    strategy = "aggregation" if args.rails == 1 else "multirail"
    timing: dict = {}
    if args.rel_timeout is not None:
        if args.rel_timeout == "auto":
            timing["rel_timeout_us"] = "auto"
        else:
            try:
                timing["rel_timeout_us"] = float(args.rel_timeout)
            except ValueError:
                raise SystemExit(
                    f"--rel-timeout must be a number or 'auto', "
                    f"got {args.rel_timeout!r}") from None
        # Echo the parsed value (not the raw flag string) in the report.
        args.rel_timeout = timing["rel_timeout_us"]
    if args.hedge:
        timing["rel_hedge"] = "tail"
    try:
        params = EngineParams(reliability=args.reliability,
                              flow_control=args.flow_control,
                              sessions=args.sessions, **timing)
    except (ReproError, ValueError) as exc:
        raise SystemExit(f"invalid engine configuration: {exc}") from None
    pair = make_backend_pair("madmpi", rails=rails, strategy=strategy,
                             engine_params=params, topology=args.topology)
    if (args.drop_nth or args.slow_link is not None
            or args.link_down_at is not None):
        # drop/slow target the rail-0 link; a link-down alone targets the
        # last rail (so a 2-rail run exercises failover).
        fault_rail = (0 if args.drop_nth or args.slow_link is not None
                      else len(rails) - 1)
        slow = (args.slow_link, 0.0, None) if args.slow_link is not None \
            else None
        try:
            plan = FaultPlan(drop_nth=tuple(args.drop_nth),
                             slow_link=slow,
                             down_at_us=args.link_down_at)
        except NetworkError as exc:
            raise SystemExit(f"invalid fault plan: {exc}") from None
        for link in pair.cluster.links:
            if link.src.node_id == 0 and link.src.rail == fault_rail:
                link.fault_plan = plan
                break
    spec = TrafficSpec(n_messages=args.messages, max_size=32 * KB,
                       large_fraction=0.1, large_max=512 * KB)
    messages = generate_messages(spec, seed=args.seed)
    stalled = None
    try:
        replay(pair, messages, verify_content=True)
    except SimulationError as exc:
        stalled = exc
    payload = _report_payload(args, pair, messages, stalled)

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0 if stalled is None else 1

    if stalled is None:
        rep = payload["replay"]
        _print(out, (f"replayed {rep['messages']} messages "
                     f"({rep['payload_bytes']} payload bytes) "
                     f"node0 -> node1 in {rep['elapsed_us']:.1f}us "
                     f"[reliability={args.reliability} "
                     f"flow_control={args.flow_control} "
                     f"sessions={args.sessions}]"))
    for eng in payload["engines"]:
        lines = [f"-- engine stats: node{eng['node']} "
                 f"(strategy={eng['strategy']}) --"]
        for group, fields in REPORT_STAT_GROUPS:
            lines.append(f"  [{group}]")
            for field in fields:
                lines.append(f"    {field:<22} {eng[group][field]}")
        lines.append("  [matcher]")
        for key, value in eng["matcher"].items():
            lines.append(f"    {key:<22} {value}")
        lines.append("  [window]")
        for key, value in eng["window"].items():
            lines.append(f"    {key:<22} {value}")
        if eng["rtt"]:
            lines.append("  [rtt]")
            for row in render_adaptive(eng["rtt"]).splitlines():
                lines.append("    " + row)
        lines.append(f"  rails_ok: {eng['rails_ok']}")
        _print(out, "\n".join(lines))
    _print(out, render_utilization(cluster_utilization(pair.cluster)))
    _print(out, render_fault_summary(pair.cluster))
    if payload["topology"]["n_switches"]:
        _print(out, render_topology(payload["topology"]))
    if stalled is not None:
        _print(out, f"SIMULATION STALLED: {stalled}")
        return 1
    return 0


def _chaos(args, out) -> int:
    import json

    # Imported lazily, like the other subcommands: the chaos package pulls
    # in the whole engine stack, which `repro figures` does not need.
    from repro.chaos import ChaosSpec, run_chaos, shrink_schedule
    from repro.errors import ReproError

    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    topo = dict(topology=args.topology, fat_tree_k=args.fat_tree_k,
                switch_kills=args.switch_kills, adaptive=args.adaptive,
                rtt_drift=args.rtt_drift)
    try:
        spec = (ChaosSpec.quick(crashes=args.crashes, **topo) if args.quick
                else ChaosSpec(crashes=args.crashes, **topo))
    except ReproError as exc:
        raise SystemExit(f"invalid chaos spec: {exc}") from None

    reports = []
    failing = 0
    for seed in range(args.seed, args.seed + args.seeds):
        report = run_chaos(seed, spec)
        reports.append(report)
        _print(out, report.describe())
        if not report.ok:
            failing += 1
            if args.shrink:
                result = shrink_schedule(seed, spec, list(report.faults))
                _print(out, f"  shrunk {len(result.original)} -> "
                            f"{len(result.minimized)} fault(s) in "
                            f"{result.runs} run(s); repro snippet:")
                for line in result.snippet().splitlines():
                    _print(out, "    " + line)

    total = len(reports)
    _print(out, f"chaos sweep: {total - failing}/{total} seed(s) clean")
    if args.json is not None:
        payload = {
            "ok": failing == 0,
            "seeds": [report.to_jsonable() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        _print(out, f"wrote {args.json}")
    return 0 if failing == 0 else 1


def _sanitize(args, out) -> int:
    """Determinism-sanitizer driver (see ``repro.sim.sanitizer``).

    The subprocess harness lives here (not in ``repro.sim``) because the
    scheduling core is forbidden from blocking I/O by NM401; the CLI layer
    is the sanctioned place to fork children and compare bytes.

    Every invocation first runs the **self-test**: the two planted
    nondeterminism fixtures in ``repro.sim._sanitize_fixtures`` must be
    *detected* (their output must vary under the sanitizer), proving the
    detector detects before any "no difference found" result is trusted.
    """
    import os
    import subprocess

    from repro.sim._sanitize_fixtures import batch_order_engine
    from repro.sim.sanitizer import (
        SANITIZE_ENV,
        SanitizeConfig,
        storm_fingerprint,
    )

    if args.hash_seeds < 3:
        raise SystemExit("--hash-seeds must be >= 3")
    hash_seeds = list(range(1, args.hash_seeds + 1))
    failures: list[str] = []

    def run_child(cmd: list[str], hash_seed: int, spec: str = "") -> bytes:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hash_seed)
        if spec:
            env[SANITIZE_ENV] = spec
        else:
            env.pop(SANITIZE_ENV, None)
        proc = subprocess.run([sys.executable, *cmd],
                              capture_output=True, env=env)
        if proc.returncode != 0:
            raise SystemExit(
                f"sanitize child {cmd} (PYTHONHASHSEED={hash_seed}, "
                f"{SANITIZE_ENV}={spec or '<unset>'}) exited "
                f"{proc.returncode}:\n{proc.stderr.decode(errors='replace')}")
        return proc.stdout

    # -- self-test: both planted fixtures must be DETECTED --------------------
    fixture_cmd = ["-c", "from repro.sim._sanitize_fixtures import "
                         "hash_order_engine; print(hash_order_engine())"]
    hash_outputs = {run_child(fixture_cmd, s) for s in hash_seeds}
    if len(hash_outputs) > 1:
        _print(out, f"selftest: hash-order fixture DETECTED "
                    f"({len(hash_outputs)} distinct outputs over "
                    f"{len(hash_seeds)} hash seeds)")
    else:
        failures.append("hash-order fixture NOT detected: output identical "
                        "across hash seeds (is hash randomization off?)")
    batch_outputs = {batch_order_engine(SanitizeConfig(shake_seed=s))
                     for s in (1, 2, 3)}
    batch_outputs.add(batch_order_engine(None))
    if len(batch_outputs) > 1:
        _print(out, f"selftest: batch-order fixture DETECTED "
                    f"({len(batch_outputs)} distinct dispatch orders "
                    f"under shaking)")
    else:
        failures.append("batch-order fixture NOT detected: intra-timestamp "
                        "shaking changed nothing (is the shake hook dead?)")

    # -- byte-equivalence sweeps ----------------------------------------------
    targets: list[tuple[str, list[str]]] = []
    if args.figures:
        targets.append(("figures", ["-m", "repro", "figures", "--quick"]))
    if args.chaos:
        targets.append(("chaos", ["-m", "repro", "chaos",
                                  "--seed", str(args.seed), "--quick"]))
    for label, cmd in targets:
        baseline = run_child(cmd, hash_seeds[0])
        for s in hash_seeds[1:]:
            if run_child(cmd, s) != baseline:
                failures.append(f"{label}: output differs between "
                                f"PYTHONHASHSEED={hash_seeds[0]} and {s} "
                                "(hash-order dependence)")
        if run_child(cmd, hash_seeds[0], spec="nocoalesce") != baseline:
            failures.append(f"{label}: output differs under the "
                            "no-coalesce kernel (a coalescing guard is "
                            "not order-equivalent)")
        if not any(f.startswith(label + ":") for f in failures):
            _print(out, f"{label}: byte-identical over {len(hash_seeds)} "
                        f"hash seeds + no-coalesce kernel")

    # -- in-process storm fingerprints ----------------------------------------
    if args.storm or not targets:
        configs: list[tuple[str, SanitizeConfig | None]] = [
            ("default", None),
            ("nocoalesce", SanitizeConfig(no_coalesce=True)),
            ("shake:1", SanitizeConfig(shake_seed=1)),
            ("shake:2", SanitizeConfig(shake_seed=2)),
            ("shake:3", SanitizeConfig(shake_seed=3)),
        ]
        fingerprints = {label: storm_fingerprint(cfg)
                        for label, cfg in configs}
        if len(set(fingerprints.values())) == 1:
            _print(out, f"storm: fingerprint {fingerprints['default']} "
                        f"stable across {len(configs)} kernel configs")
        else:
            failures.append(f"storm: fingerprints diverge across kernel "
                            f"configs: {fingerprints}")

    if failures:
        for failure in failures:
            _print(out, "SANITIZE FAIL: " + failure)
        return 1
    _print(out, "sanitize: all checks passed")
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        _figures(args, out)
    elif args.command == "strategies":
        _strategies(out)
    elif args.command == "profiles":
        _profiles(out)
    elif args.command == "report":
        return _report(args, out)
    elif args.command == "chaos":
        return _chaos(args, out)
    elif args.command == "sanitize":
        return _sanitize(args, out)
    elif args.command == "perf":
        import json as _json

        from repro.bench.perf import (
            check_bench,
            render_perf,
            run_suite,
            write_bench,
        )

        if args.backlog < 1:
            raise SystemExit("--backlog must be >= 1")
        baseline = None
        if args.check is not None:
            # Read before writing --out: the two paths may be the same
            # file, and the gate must compare against the committed copy.
            with open(args.check, encoding="utf-8") as fh:
                baseline = _json.load(fh)
        payload = run_suite(quick=args.quick, backlog=args.backlog,
                            scale_nodes=args.scale_nodes)
        _print(out, render_perf(payload))
        path = write_bench(payload, args.out)
        _print(out, f"wrote {path}")
        if baseline is not None:
            failures = check_bench(payload, baseline)
            if failures:
                _print(out, f"PERF GATE FAILED vs {args.check}:")
                for line in failures:
                    _print(out, f"  - {line}")
                return 1
            _print(out, f"perf gate passed vs {args.check}")
    elif args.command == "validate":
        from repro.bench.claims import evaluate_claims, render_verdicts

        verdicts = evaluate_claims()
        _print(out, render_verdicts(verdicts))
        return 0 if all(v.passed for v in verdicts) else 1
    return 0

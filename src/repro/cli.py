"""Command-line interface: regenerate the paper's figures as text tables.

Usage::

    python -m repro figures                 # every figure, full sweeps
    python -m repro figures --quick         # coarse sweeps (seconds)
    python -m repro figures --only fig3     # one figure family
    python -m repro strategies              # list the strategy database
    python -m repro profiles                # list NIC profiles

The output is the same tables the benchmark harness prints (size rows, one
column per backend, peak/mean gains), suitable for diffing against
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import (
    render_gains,
    render_table,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.netsim import KB, MB, MX_MYRI10G, PROFILES, QUADRICS_QM500

__all__ = ["main", "build_parser"]

QUICK_FIG2 = [4, 64, 1 * KB, 16 * KB, 256 * KB, 2 * MB]
QUICK_FIG3_MX = [4, 64, 1 * KB, 16 * KB]
QUICK_FIG3_Q = [4, 64, 1 * KB, 8 * KB]
QUICK_FIG4 = [256 * KB, 1 * MB, 2 * MB]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NewMadeleine reproduction: regenerate the paper's "
                    "evaluation figures on the simulated 2006 testbed.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate figure tables")
    figures.add_argument("--quick", action="store_true",
                         help="coarse size sweeps (runs in seconds)")
    figures.add_argument("--only", choices=("fig2", "fig3", "fig4"),
                         help="restrict to one figure family")
    figures.add_argument("--iters", type=int, default=3,
                         help="measured ping-pong iterations per point")
    figures.add_argument("--plot", action="store_true",
                         help="also draw each figure as an ASCII log-log plot")

    sub.add_parser("strategies", help="list the strategy database")
    sub.add_parser("profiles", help="list calibrated NIC profiles")
    sub.add_parser("validate",
                   help="measure every paper claim and print PASS/FAIL")
    return parser


def _print(out, text: str) -> None:
    print(text, file=out)
    print(file=out)


def _figures(args, out) -> None:
    from repro.bench.plot import render_plot

    iters = args.iters
    if iters < 1:
        raise SystemExit("--iters must be >= 1")

    def maybe_plot(title, series):
        if args.plot:
            _print(out, render_plot(title, series))

    if args.only in (None, "fig2"):
        for profile, panels in ((MX_MYRI10G, "a/b"), (QUADRICS_QM500, "c/d")):
            series = run_figure2(
                profile, sizes=QUICK_FIG2 if args.quick else (), iters=iters)
            title = (f"== Figure 2({panels}): ping-pong latency over "
                     f"{profile.name} ==")
            _print(out, render_table(title, series))
            _print(out, render_table(
                "-- derived bandwidth --",
                [s.to_bandwidth() for s in series]))
            maybe_plot(title, series)
    if args.only in (None, "fig3"):
        for profile, quick_sizes in ((MX_MYRI10G, QUICK_FIG3_MX),
                                     (QUADRICS_QM500, QUICK_FIG3_Q)):
            for nseg in (8, 16):
                series = run_figure3(
                    profile, n_segments=nseg,
                    sizes=quick_sizes if args.quick else (), iters=iters)
                title = (f"== Figure 3: {nseg}-segment ping-pong over "
                         f"{profile.name} ==")
                _print(out, render_table(title, series))
                _print(out, render_gains(series))
                maybe_plot(title, series)
    if args.only in (None, "fig4"):
        for profile in (MX_MYRI10G, QUADRICS_QM500):
            series = run_figure4(
                profile, sizes=QUICK_FIG4 if args.quick else (), iters=iters)
            title = f"== Figure 4: indexed datatype over {profile.name} =="
            _print(out, render_table(title, series))
            _print(out, render_gains(series))
            maybe_plot(title, series)


def _strategies(out) -> None:
    from repro.core import available_strategies, create

    for name in available_strategies():
        strategy = create(name)
        doc = (type(strategy).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        _print(out, f"{name:<14} {summary}")


def _profiles(out) -> None:
    for name, p in sorted(PROFILES.items()):
        _print(out, (
            f"{name:<16} tech={p.tech:<6} latency={p.latency_us:>5.2f}us "
            f"bw={p.bandwidth_mbps:>7.1f}MB/s rdv@{p.rdv_threshold:>6}B "
            f"gs={'y' if p.gather_scatter else 'n'} "
            f"rdma={'y' if p.rdma else 'n'}"
        ))


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        _figures(args, out)
    elif args.command == "strategies":
        _strategies(out)
    elif args.command == "profiles":
        _profiles(out)
    elif args.command == "validate":
        from repro.bench.claims import evaluate_claims, render_verdicts

        verdicts = evaluate_claims()
        _print(out, render_verdicts(verdicts))
        return 0 if all(v.passed for v in verdicts) else 1
    return 0

"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """Misuse or internal inconsistency of the discrete-event kernel."""


class ProgressStallError(SimulationError):
    """The progress watchdog observed no forward progress for too long.

    Raised (inside :meth:`~repro.sim.core.Simulator.run`) when an armed
    :class:`~repro.sim.core.Watchdog` sees its progress token unchanged for
    several consecutive patience intervals while the engine still has work
    outstanding.  The message carries the owner's diagnostic dump — per-peer
    credit, window, backlog and unexpected-buffer state — so a stall is an
    actionable report instead of a bare deadlock hint.
    """


class NetworkError(ReproError):
    """Invalid network configuration or transfer-layer misuse."""


class ProtocolError(ReproError):
    """A communication protocol invariant was violated.

    Raised, for example, when a rendezvous acknowledgement arrives for an
    unknown handle or a frame is delivered to a node that never posted a
    matching structure.  In a correct run these indicate bugs, so they are
    never silently ignored.
    """


class MatchError(ReproError):
    """Receive-side matching failed in a way the application can observe."""


class TransportError(ReproError):
    """A reliable delivery could not be completed.

    Raised (as a request-level failure, never as a silent hang) when the
    optional reliability layer exhausts its retransmit budget for a frame:
    the affected :class:`~repro.core.requests.SendRequest` fails with this
    error while unrelated flows keep progressing.  Never raised in the
    default ``reliability="off"`` (paper-faithful) mode, where a loss
    surfaces as a visible stall instead.
    """


class PeerDeadError(TransportError):
    """A request failed because its peer was declared dead (or restarted).

    Only raised by the optional session layer
    (``EngineParams.sessions="epoch"``): when the heartbeat failure
    detector confirms a peer dead, or an epoch change reveals the peer
    restarted, every request bound to the old incarnation fails with this
    error — in-flight sends, deferred submissions and posted receives
    alike — while traffic to other peers keeps progressing.  Never raised
    in the default ``sessions="off"`` (paper-faithful) mode.
    """


class RailDownError(TransportError):
    """Delivery failed because the rail it depended on is down.

    A specialization of :class:`TransportError` used when the retransmit
    budget was exhausted on a rail the engine has quarantined (or whose
    link went permanently down), so the failure is attributable to the
    rail rather than to transient loss.
    """


class StrategyError(ReproError):
    """A scheduling strategy broke one of its contracts.

    Strategies must only emit packets that (a) exist in the optimization
    window, (b) respect the rendezvous threshold for eager aggregates, and
    (c) preserve per-flow submission order unless the flow allows
    reordering.  The engine validates these contracts and raises this error
    on violation rather than corrupting the schedule.
    """


class DatatypeError(ReproError):
    """Invalid derived-datatype construction or pack/unpack misuse."""


class MpiError(ReproError):
    """MPI-level misuse (bad rank, truncation, invalid request state)."""


class CommRevokedError(MpiError):
    """An operation was attempted on a revoked communicator.

    After :meth:`~repro.madmpi.comm.Communicator.revoke` marks a
    communicator dead (typically in response to a
    :class:`PeerDeadError` from one of its members), any further
    ``isend``/``irecv``/collective on it raises this error immediately —
    the ULFM-style fail-fast that lets survivors agree to
    :meth:`~repro.madmpi.comm.Communicator.shrink` instead of
    deadlocking inside a collective.
    """


class DeadlineExceededError(MpiError):
    """A request's per-call deadline expired before it could complete.

    Only raised when the caller passed ``deadline_us`` to ``isend`` /
    ``irecv`` (engine-native or MAD-MPI): when the virtual-time budget
    runs out, a still-pending send is retracted from the optimization
    window (or its anticipated packet) exactly like ``cancel()`` and a
    still-unmatched receive is unposted, then the request fails with this
    error — surfaced through ``wait``/``test`` like every other
    request-level failure.  A request that already completed, or a send
    whose data already left the node, is never failed retroactively.
    """


class WindowFullError(MpiError):
    """A send was refused because the optimization window is at capacity.

    Only raised under ``EngineParams(window_policy="fail")`` when the
    bounded collect layer cannot admit a new wrap without exceeding
    ``max_window_wraps``/``max_window_bytes``.  Under the default
    ``"block"`` policy the submission is instead deferred (FIFO) until the
    window drains, so this error is never seen.
    """

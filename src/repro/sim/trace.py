"""Structured tracing of simulation activity.

Every layer of the stack (NICs, the engine's scheduler, the MPI models)
emits trace records through a shared :class:`Tracer`.  Tracing serves three
purposes in the reproduction:

* tests assert on the *sequence* of protocol actions (e.g. "the 16 segments
  crossed the wire in 2 physical packets"),
* the examples print human-readable timelines, and
* benchmark debugging (why did a curve move?) without a debugger.

Tracing is disabled by default and costs one predicate check per emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

from typing import Any

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``time`` is simulated microseconds, ``source`` identifies the emitting
    component (e.g. ``"node0.nic.mx0"``), ``kind`` is a short machine-friendly
    verb (e.g. ``"tx_start"``), and ``detail`` carries free-form fields.
    """

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.3f}us] {self.source:<24} {self.kind:<16} {fields}"


class Tracer:
    """Collects :class:`TraceRecord` instances when enabled.

    A ``filter`` predicate can restrict capture (useful for keeping memory
    bounded during long sweeps while still observing, say, only rendezvous
    events).
    """

    def __init__(
        self,
        enabled: bool = False,
        filter: Callable[[TraceRecord], bool] | None = None,
        sink: Callable[[TraceRecord], None] | None = None,
    ) -> None:
        self.enabled = enabled
        self.filter = filter
        self.sink = sink
        self.records: list[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Record one occurrence if tracing is enabled and unfiltered."""
        if not self.enabled:
            return
        rec = TraceRecord(time=time, source=source, kind=kind, detail=detail)
        if self.filter is not None and not self.filter(rec):
            return
        if self.sink is not None:
            self.sink(rec)
        else:
            self.records.append(rec)

    def clear(self) -> None:
        """Drop all captured records."""
        self.records.clear()

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All captured records with the given ``kind``."""
        return [r for r in self.records if r.kind == kind]

    def from_source(self, prefix: str) -> list[TraceRecord]:
        """All captured records whose source starts with ``prefix``."""
        return [r for r in self.records if r.source.startswith(prefix)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # An empty tracer is still a tracer: never falsy (guards against
        # `tracer or Tracer()` silently dropping an enabled tracer).
        return True

    def dump(self, limit: int | None = None) -> str:
        """Render captured records as a printable timeline."""
        recs = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in recs)

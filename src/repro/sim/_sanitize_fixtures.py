"""Planted nondeterminism fixtures for the sanitizer's self-test.

Each function here contains a *deliberate* determinism bug of a class
the sanitizer must catch — they are the positive controls proving the
detector actually detects, run by ``python -m repro sanitize`` on every
invocation.  Nothing in the engine imports this module.
"""

from __future__ import annotations

from repro.sim.core import Simulator
from repro.sim.sanitizer import SanitizeConfig

#: Enough members that three hash seeds agreeing on iteration order is
#: a ~1-in-10^107 fluke, but small enough to stay instant.
_PEERS = frozenset(f"peer-{i:02d}" for i in range(32))


def hash_order_engine() -> str:
    """Dict/set-iteration-order bug: output follows the process hash seed.

    Iterating an unordered collection and emitting in encounter order is
    exactly the bug class NM103 flags statically; this copy is suppressed
    so the *runtime* detector (byte-comparison across forced
    ``PYTHONHASHSEED`` values) has a live specimen to catch.
    """
    visit_order = []
    for peer in _PEERS:  # nm: allow[NM103] -- deliberately nondeterministic: the sanitizer self-test must catch this
        visit_order.append(peer)
    return ",".join(visit_order)


def batch_order_engine(sanitize: SanitizeConfig | None) -> str:
    """Intra-timestamp order bug: output follows same-t dispatch order.

    Schedules same-timestamp callbacks whose *observable* result depends
    on the order the kernel dispatches them — legal by the ``(time, seq)``
    contract only as long as nothing perturbs intra-timestamp order, which
    is precisely what the sanitizer's shake mode does.  Different shake
    seeds must therefore yield different outputs here.
    """
    sim = Simulator(sanitize=sanitize)
    arrival_order: list[str] = []

    def land(name: str) -> None:
        arrival_order.append(name)

    def takeoff() -> None:
        # Ten distinct timers, one shared future timestamp: the extracted
        # calendar slot holds one equal-t run of ten entries.
        for i in range(10):
            sim.schedule(5.0, lambda i=i: land(f"pkt-{i}"))

    sim.schedule(0.0, takeoff)
    sim.run()
    return ",".join(arrival_order)

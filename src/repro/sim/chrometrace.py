"""Export captured traces to Chrome's ``chrome://tracing`` JSON format.

The :class:`~repro.sim.trace.Tracer` records flat events; this module turns
them into the Trace Event Format so a whole simulation — NIC busy spans,
scheduler pulls, matches — can be inspected visually in any Chromium
browser or in Perfetto.

Span pairing is convention-based: a record of kind ``<x>_start`` opens a
duration span on its source's track, closed by the next ``<x>_done`` from
the same source (nested spans of the same kind per source are not expected
from the library's emitters and raise).  Every other record becomes an
instant event.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.errors import ReproError
from repro.sim.trace import TraceRecord, Tracer

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(records: Iterable[TraceRecord]) -> list[dict]:
    """Convert trace records to a list of Trace Event Format dicts.

    Sources map to thread names (``tid``) within one process, so parallel
    NIC activity renders as parallel tracks.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    open_spans: dict[tuple[str, str], dict] = {}

    def tid_of(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
            events.append({
                "ph": "M", "pid": 1, "tid": tids[source],
                "name": "thread_name", "args": {"name": source},
            })
        return tids[source]

    for rec in records:
        tid = tid_of(rec.source)
        args = {k: v for k, v in rec.detail.items()
                if isinstance(v, (int, float, str, bool))}
        if rec.kind.endswith("_start"):
            stem = rec.kind[:-len("_start")]
            key = (rec.source, stem)
            if key in open_spans:
                raise ReproError(
                    f"nested {stem!r} span on {rec.source} at t={rec.time}"
                )
            open_spans[key] = {
                "ph": "X", "pid": 1, "tid": tid, "name": stem,
                "ts": rec.time, "args": args,
            }
        elif rec.kind.endswith("_done"):
            stem = rec.kind[:-len("_done")]
            span = open_spans.pop((rec.source, stem), None)
            if span is None:
                # A completion without a captured start (e.g. the tracer was
                # enabled mid-flight): record an instant instead.
                events.append({"ph": "i", "pid": 1, "tid": tid,
                               "name": rec.kind, "ts": rec.time, "s": "t",
                               "args": args})
                continue
            span["dur"] = rec.time - span["ts"]
            span["args"].update(args)
            events.append(span)
        else:
            events.append({"ph": "i", "pid": 1, "tid": tid, "name": rec.kind,
                           "ts": rec.time, "s": "t", "args": args})
    if open_spans:
        # Close dangling spans at their start time so the file stays valid.
        for span in open_spans.values():
            span["dur"] = 0.0
            events.append(span)
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write ``tracer``'s records as a Chrome trace file; returns event count."""
    events = to_chrome_trace(tracer.records)
    with open(path, "w", encoding="utf-8") as fh:  # nm: allow[NM401] -- export runs after run()
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)

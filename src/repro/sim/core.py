"""Discrete-event simulation kernel.

This is the substrate on which every experiment in the reproduction runs.
The paper's engine reacts to *hardware activity* (a NIC finishing a
transmission), so we need an event-driven clock rather than wall time.  The
kernel is deliberately small and SimPy-flavoured:

* :class:`Simulator` owns a monotonically non-decreasing clock (``now``, in
  microseconds by convention) and a binary-heap event queue.
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on.  :class:`Timeout` is an event scheduled at ``now + delay``.
* :class:`Process` wraps a generator; the generator yields events (or other
  processes, or :class:`AllOf`/:class:`AnyOf` conditions) and is resumed with
  the event's value when it triggers.  This lets the ping-pong applications,
  protocol state machines, and the engine's progress loop all be written as
  straight-line coroutines over simulated time.

The kernel is single-threaded and deterministic: events scheduled for the
same timestamp fire in FIFO scheduling order (a strictly increasing sequence
number breaks ties), which makes every simulation and therefore every
benchmark series exactly reproducible.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable

from typing import Any

from repro.errors import ProgressStallError, SimulationError

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Watchdog",
]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed (optionally with
    a value) or :meth:`fail`-ed (with an exception) exactly once.  Callbacks
    registered before triggering run, in registration order, when the
    simulator processes the event; callbacks registered after triggering are
    scheduled to run immediately (still via the event queue, preserving
    determinism).
    """

    __slots__ = ("sim", "_callbacks", "_ok", "_value", "_exc", "_defused", "name")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[Event], None]] | None = []
        self._ok: bool | None = None  # None=pending, True=succeeded, False=failed
        self._value: Any = None
        self._exc: BaseException | None = None
        # Failed events whose exception is never observed raise at run() end
        # unless "defused" (observed by a waiter or explicitly).
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event succeeded or failed."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if self._ok is None:
            raise SimulationError(f"value of pending event {self!r}")
        if self._ok:
            return self._value
        self._defused = True
        assert self._exc is not None
        raise self._exc

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or ``None`` (non-raising inspection)."""
        return self._exc

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> Event:
        """Mark the event successful and schedule its callbacks."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._activate(self)
        return self

    def fail(self, exc: BaseException) -> Event:
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exc = exc
        self.sim._activate(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as observed so run() does not re-raise it."""
        self._defused = True

    # -- waiting --------------------------------------------------------
    def add_callback(self, fn: Callable[[Event], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if done)."""
        if self._callbacks is None:
            # Already processed: schedule the callback as a fresh occurrence.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else f"failed({self._exc!r})")
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        # The success value is stored now; the event only *triggers* when the
        # run loop pops it at now+delay (see Simulator.run), so `triggered`
        # and condition bookkeeping stay accurate in the meantime.
        self._value = value
        sim._schedule_event(delay, self)


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class Process(Event):
    """A running coroutine over simulated time.

    A process *is* an event: it triggers with the generator's return value
    when the generator finishes (or fails with the raised exception), so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        # Kick off the process at the current time.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disabled); the process decides how to recover.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself at spawn")
        self.sim.schedule(0.0, lambda: self._throw(Interrupt(cause)))

    # -- internal -------------------------------------------------------
    def _resume(self, evt: Event) -> None:
        if not self.is_alive:
            # Stale wakeup of a finished process (e.g. the timeout it was
            # interrupted out of finally fired).
            if not evt._ok:
                evt._defused = True
            return
        if self._waiting_on is not None and evt is not self._waiting_on:
            # Stale wakeup from an event we abandoned after an interrupt.
            return
        self._waiting_on = None
        if evt._ok:
            self._step(lambda: self._gen.send(evt._value))
        else:
            evt._defused = True
            exc = evt._exc
            assert exc is not None
            self._step(lambda: self._gen.throw(exc))

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events: tuple[Event, ...] = tuple(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            evt.add_callback(self._child_done)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._ok}

    def _child_done(self, evt: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when *every* child event has succeeded.

    Fails fast (with the child's exception) if any child fails.
    """

    __slots__ = ()

    def _child_done(self, evt: Event) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if not evt._ok:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers when the *first* child event succeeds (or fails)."""

    __slots__ = ()

    def _child_done(self, evt: Event) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if evt._ok:
            self.succeed(self._collect())
        else:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)


class Watchdog:
    """Virtual-time progress watchdog: detects stalls *with work pending*.

    A deadlock (event queue drained while a process waits) is caught by
    :meth:`Simulator.run_process`; a *livelock* is not — the queue keeps
    ticking (retransmission timers, delayed grants) while no useful work
    completes.  The watchdog samples an engine-supplied ``progress`` token
    every ``interval_us`` of simulated time; if the token is unchanged for
    ``patience`` consecutive samples while ``active()`` reports outstanding
    work, it raises :class:`~repro.errors.ProgressStallError` carrying the
    ``diagnose()`` report.  The exception propagates out of
    :meth:`Simulator.run` like any unobserved failure, so tests and the CLI
    see the stall as a hard, diagnosable error instead of a hang.

    When ``active()`` is false the watchdog goes dormant (so a finished
    simulation can drain its queue); :meth:`arm` re-arms it and is called
    from the engine's work-creating entry points.  ``arm`` is idempotent.
    :meth:`disarm` kills the watchdog immediately — including the tick
    already sitting in the event queue — which the engine uses when its
    node crashes (a dead process must not diagnose the survivors).
    """

    __slots__ = ("sim", "interval_us", "_progress", "_active", "_diagnose",
                 "patience", "name", "_armed", "_last_token", "_strikes",
                 "_gen")

    def __init__(
        self,
        sim: Simulator,
        interval_us: float,
        progress: Callable[[], object],
        active: Callable[[], bool],
        diagnose: Callable[[], str],
        patience: int = 2,
        name: str = "watchdog",
    ) -> None:
        if interval_us <= 0:
            raise SimulationError(f"watchdog interval must be > 0, got {interval_us}")
        if patience < 1:
            raise SimulationError(f"watchdog patience must be >= 1, got {patience}")
        self.sim = sim
        self.interval_us = interval_us
        self._progress = progress
        self._active = active
        self._diagnose = diagnose
        self.patience = patience
        self.name = name
        self._armed = False
        self._last_token: object = None
        self._strikes = 0
        self._gen = 0

    def arm(self) -> None:
        """Start (or keep) watching; call whenever new work is created."""
        if self._armed:
            return
        self._armed = True
        self._gen += 1
        self._last_token = self._progress()
        self._strikes = 0
        gen = self._gen
        self.sim.schedule(self.interval_us, lambda: self._tick(gen))

    def disarm(self) -> None:
        """Stop watching now; the pending tick (if any) becomes a no-op."""
        self._armed = False
        self._gen += 1

    def _tick(self, gen: int) -> None:
        if gen != self._gen or not self._armed:
            return  # disarmed (or re-armed) since this tick was scheduled
        if not self._active():
            # Nothing outstanding: go dormant until the next arm().
            self._armed = False
            return
        token = self._progress()
        if token != self._last_token:
            self._last_token = token
            self._strikes = 0
        else:
            self._strikes += 1
            if self._strikes >= self.patience:
                raise ProgressStallError(
                    f"{self.name}: no progress for "
                    f"{self._strikes * self.interval_us:g}us with work "
                    f"pending at t={self.sim.now:g}us\n{self._diagnose()}"
                )
        self.sim.schedule(self.interval_us, lambda: self._tick(gen))


class Simulator:
    """The event loop: a clock plus a deterministic priority queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._running = False
        self._n_processed = 0
        self._deadlock_hints: list[Callable[[], str | None]] = []

    def add_deadlock_hint(self, fn: Callable[[], str | None]) -> None:
        """Register a diagnosis callback consulted when a deadlock fires.

        Each callback returns a short explanation string (or ``None`` for
        "nothing to add"); engines use this to distinguish a paper-mode
        stall (no retransmission) from an exhausted retry budget in the
        deadlock message of :meth:`run_process`.
        """
        self._deadlock_hints.append(fn)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (microseconds by library convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of queue entries processed so far (for stats)."""
        return self._n_processed

    # -- event construction ------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event succeeding at the first ``events`` success."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    # The three push paths inline the tie-breaking sequence increment: they
    # run once per simulated occurrence, so a method call per push is
    # measurable on the event-loop throughput bench.
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` time units (0 = this timestamp)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, fn))

    def _schedule_event(self, delay: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, event))

    def _activate(self, event: Event) -> None:
        """Queue a triggered event's callbacks for execution *now*."""
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now, seq, event))

    # -- run loop -------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time at exit.  Raises the exception of any
        failed event that no waiter observed (so protocol bugs surface in
        tests instead of vanishing).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # Hot loop: the queue list, heappop and the Event class are bound to
        # locals, and the processed counter is flushed once at exit — the
        # per-iteration attribute traffic is visible on event-loop
        # throughput at the millions-of-events scale the soak tests and
        # random-traffic benches reach.  Monotonicity needs no explicit
        # check: delays are validated non-negative at push time and the heap
        # pops in (time, seq) order.
        queue = self._queue
        pop = heapq.heappop
        event_cls = Event
        processed = 0
        try:
            while queue:
                t = queue[0][0]
                if until is not None and t > until:
                    self._now = until
                    return until
                t, _, item = pop(queue)
                self._now = t
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                if isinstance(item, event_cls):
                    if item._ok is None:
                        # A Timeout reaching its due time: trigger it now.
                        item._ok = True
                    callbacks = item._callbacks
                    item._callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(item)
                    if item._ok is False and not item._defused:
                        assert item._exc is not None
                        raise item._exc
                else:
                    item()
            return self._now
        finally:
            self._n_processed += processed
            self._running = False

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn ``gen``, run to completion, return its value."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.triggered:
            msg = (
                f"process {proc.name!r} never finished (deadlock: queue "
                "drained while the process was still waiting)"
            )
            hints = [h for fn in self._deadlock_hints if (h := fn())]
            if hints:
                msg += " | " + "; ".join(hints)
            raise SimulationError(msg)
        return proc.value

    def peek(self) -> float:
        """Time of the next scheduled item, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

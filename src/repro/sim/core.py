"""Discrete-event simulation kernel.

This is the substrate on which every experiment in the reproduction runs.
The paper's engine reacts to *hardware activity* (a NIC finishing a
transmission), so we need an event-driven clock rather than wall time.  The
kernel is deliberately small and SimPy-flavoured:

* :class:`Simulator` owns a monotonically non-decreasing clock (``now``, in
  microseconds by convention) and a deterministic priority queue.
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on.  :class:`Timeout` is an event scheduled at ``now + delay``.
* :class:`Process` wraps a generator; the generator yields events (or other
  processes, or :class:`AllOf`/:class:`AnyOf` conditions) and is resumed with
  the event's value when it triggers.  This lets the ping-pong applications,
  protocol state machines, and the engine's progress loop all be written as
  straight-line coroutines over simulated time.

The kernel is single-threaded and deterministic: events scheduled for the
same timestamp fire in FIFO scheduling order (a strictly increasing sequence
number breaks ties), which makes every simulation and therefore every
benchmark series exactly reproducible.

The queue is a three-tier calendar structure rather than the seed's single
binary heap (frozen as :class:`repro.bench.legacy_kernel.LegacySimulator`
for comparison benches and the ordering-equivalence property test):

* a **now-queue** — a plain FIFO for occurrences at exactly the current
  timestamp (event activations, zero-delay schedules).  These are by far
  the most common push in the engine (every ``succeed`` travels through
  it) and need neither a tuple nor a heap: append order *is* ``(time,
  seq)`` order because the clock cannot move while they wait;
* a **timer wheel** — ``wheel_buckets`` buckets of ``wheel_width_us``
  (sized around the dominant NIC-latency granularity) covering the near
  future.  A push is an O(1) list append; a bucket is sorted by ``(time,
  seq)`` only when the clock reaches it, so a burst of same-timestamp
  completions costs one extraction instead of N heap pops;
* an **overflow heap** — far timers beyond the wheel horizon
  (retransmission backoffs, heartbeats) fall back to a binary heap and
  are merged per-bucket when the wheel reaches their epoch.

Ordering is exactly heap-equivalent: buckets partition the time axis, so
cross-bucket order is free, and the per-bucket sort (plus bisect insertion
for entries scheduled into the in-flight bucket) restores ``(time, seq)``
within one.  ``tests/test_sim_wheel.py`` pins the equivalence with a
Hypothesis property against the frozen legacy kernel.
"""

from __future__ import annotations

import sys
from bisect import insort
from collections import deque
from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from itertools import islice

from typing import Any

from random import Random

from repro.errors import ProgressStallError, SimulationError
from repro.sim.sanitizer import SanitizeConfig, active_sanitizer, shake_slot

#: Event/Timeout freelist recycling relies on CPython reference counts to
#: prove no condition, process, or user closure still holds the object.
_POOLING = sys.implementation.name == "cpython"
_POOL_CAP = 4096
_getrefcount: Callable[[Any], int] = getattr(sys, "getrefcount", lambda _o: -1)

#: Wheel geometry: 1024 buckets of 2us cover a ~2ms near-term horizon —
#: wide enough that the dominant NIC-latency delays (sub-us CPU gaps,
#: us-scale wire/DMA times) *and* heartbeat/retransmission timers all land
#: in the wheel, with only pathological far timers overflowing to the
#: heap; fine enough that one bucket extraction amortizes the sort over a
#: dense burst without pulling in distant work.  Power-of-two bucket count
#: keeps the slot index a mask instead of a modulo.
_WHEEL_BITS = 10
_NB = 1 << _WHEEL_BITS
_MASK = _NB - 1
_WIDTH_US = 2.0
_INV_WIDTH = 1.0 / _WIDTH_US
#: Push-time horizon guard: rejects inf/nan timestamps, which the epoch
#: arithmetic (``int(t * _INV_WIDTH)``) cannot digest.  The seed heap
#: silently accepted them; nothing in the engine ever scheduled one.
_T_MAX = 1e300
_INF = float("inf")

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Watchdog",
]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed (optionally with
    a value) or :meth:`fail`-ed (with an exception) exactly once.  Callbacks
    registered before triggering run, in registration order, when the
    simulator processes the event; callbacks registered after triggering are
    scheduled to run immediately (still via the event queue, preserving
    determinism).
    """

    __slots__ = (
        "sim", "_callbacks", "_ok", "_value", "_exc", "_defused", "name",
        "_pooled",
    )

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[Event], None]] | None = []
        self._ok: bool | None = None  # None=pending, True=succeeded, False=failed
        self._value: Any = None
        self._exc: BaseException | None = None
        # Failed events whose exception is never observed raise at run() end
        # unless "defused" (observed by a waiter or explicitly).
        self._defused = False
        # Freelist-eligible (only kernel-created Timeouts set this; the run
        # loop additionally proves via refcount that nobody else holds the
        # object before recycling it).
        self._pooled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event succeeded or failed."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if self._ok is None:
            raise SimulationError(f"value of pending event {self!r}")
        if self._ok:
            return self._value
        self._defused = True
        assert self._exc is not None
        raise self._exc

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or ``None`` (non-raising inspection)."""
        return self._exc

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> Event:
        """Mark the event successful and schedule its callbacks."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._activate(self)
        return self

    def fail(self, exc: BaseException) -> Event:
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exc = exc
        self.sim._activate(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as observed so run() does not re-raise it."""
        self._defused = True

    # -- waiting --------------------------------------------------------
    def add_callback(self, fn: Callable[[Event], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if done)."""
        if self._callbacks is None:
            # Already processed: schedule the callback as a fresh occurrence.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else f"failed({self._exc!r})")
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Completed timeouts with no remaining holders are recycled through
    :attr:`Simulator._timeout_pool` (the name is left empty rather than the
    old ``f"timeout({delay})"`` — the f-string alone was ~25% of timeout
    creation cost; :meth:`__repr__` still shows the delay).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        # The success value is stored now; the event only *triggers* when the
        # run loop pops it at now+delay (see Simulator.run), so `triggered`
        # and condition bookkeeping stay accurate in the meantime.
        self._value = value
        self._pooled = _POOLING
        sim._schedule_event(delay, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else f"failed({self._exc!r})")
        )
        return f"<Timeout({self.delay:g}) {state}>"


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class Process(Event):
    """A running coroutine over simulated time.

    A process *is* an event: it triggers with the generator's return value
    when the generator finishes (or fails with the raised exception), so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        # Kick off the process at the current time.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disabled); the process decides how to recover.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself at spawn")
        self.sim.schedule(0.0, lambda: self._throw(Interrupt(cause)))

    # -- internal -------------------------------------------------------
    def _resume(self, evt: Event) -> None:
        if not self.is_alive:
            # Stale wakeup of a finished process (e.g. the timeout it was
            # interrupted out of finally fired).
            if not evt._ok:
                evt._defused = True
            return
        if self._waiting_on is not None and evt is not self._waiting_on:
            # Stale wakeup from an event we abandoned after an interrupt.
            return
        self._waiting_on = None
        if evt._ok:
            self._step(lambda: self._gen.send(evt._value))
        else:
            evt._defused = True
            exc = evt._exc
            assert exc is not None
            self._step(lambda: self._gen.throw(exc))

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events: tuple[Event, ...] = tuple(events)
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            evt.add_callback(self._child_done)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._ok}

    def _child_done(self, evt: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when *every* child event has succeeded.

    Fails fast (with the child's exception) if any child fails.
    """

    __slots__ = ()

    def _child_done(self, evt: Event) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if not evt._ok:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers when the *first* child event succeeds (or fails)."""

    __slots__ = ()

    def _child_done(self, evt: Event) -> None:
        if self.triggered:
            if not evt._ok:
                evt._defused = True
            return
        if evt._ok:
            self.succeed(self._collect())
        else:
            evt._defused = True
            assert evt._exc is not None
            self.fail(evt._exc)


class Watchdog:
    """Virtual-time progress watchdog: detects stalls *with work pending*.

    A deadlock (event queue drained while a process waits) is caught by
    :meth:`Simulator.run_process`; a *livelock* is not — the queue keeps
    ticking (retransmission timers, delayed grants) while no useful work
    completes.  The watchdog samples an engine-supplied ``progress`` token
    every ``interval_us`` of simulated time; if the token is unchanged for
    ``patience`` consecutive samples while ``active()`` reports outstanding
    work, it raises :class:`~repro.errors.ProgressStallError` carrying the
    ``diagnose()`` report.  The exception propagates out of
    :meth:`Simulator.run` like any unobserved failure, so tests and the CLI
    see the stall as a hard, diagnosable error instead of a hang.

    When ``active()`` is false the watchdog goes dormant (so a finished
    simulation can drain its queue); :meth:`arm` re-arms it and is called
    from the engine's work-creating entry points.  ``arm`` is idempotent.
    :meth:`disarm` kills the watchdog immediately — including the tick
    already sitting in the event queue — which the engine uses when its
    node crashes (a dead process must not diagnose the survivors).
    """

    __slots__ = ("sim", "interval_us", "_progress", "_active", "_diagnose",
                 "patience", "name", "_armed", "_last_token", "_strikes",
                 "_gen")

    def __init__(
        self,
        sim: Simulator,
        interval_us: float,
        progress: Callable[[], object],
        active: Callable[[], bool],
        diagnose: Callable[[], str],
        patience: int = 2,
        name: str = "watchdog",
    ) -> None:
        if interval_us <= 0:
            raise SimulationError(f"watchdog interval must be > 0, got {interval_us}")
        if patience < 1:
            raise SimulationError(f"watchdog patience must be >= 1, got {patience}")
        self.sim = sim
        self.interval_us = interval_us
        self._progress = progress
        self._active = active
        self._diagnose = diagnose
        self.patience = patience
        self.name = name
        self._armed = False
        self._last_token: object = None
        self._strikes = 0
        self._gen = 0

    def arm(self) -> None:
        """Start (or keep) watching; call whenever new work is created."""
        if self._armed:
            return
        self._armed = True
        self._gen += 1
        self._last_token = self._progress()
        self._strikes = 0
        gen = self._gen
        self.sim.schedule(self.interval_us, lambda: self._tick(gen))

    def disarm(self) -> None:
        """Stop watching now; the pending tick (if any) becomes a no-op."""
        self._armed = False
        self._gen += 1

    def _tick(self, gen: int) -> None:
        if gen != self._gen or not self._armed:
            return  # disarmed (or re-armed) since this tick was scheduled
        if not self._active():
            # Nothing outstanding: go dormant until the next arm().
            self._armed = False
            return
        token = self._progress()
        if token != self._last_token:
            self._last_token = token
            self._strikes = 0
        else:
            self._strikes += 1
            if self._strikes >= self.patience:
                raise ProgressStallError(
                    f"{self.name}: no progress for "
                    f"{self._strikes * self.interval_us:g}us with work "
                    f"pending at t={self.sim.now:g}us\n{self._diagnose()}"
                )
        self.sim.schedule(self.interval_us, lambda: self._tick(gen))


class Simulator:
    """The event loop: a clock plus a deterministic priority queue.

    The queue is the three-tier calendar structure described in the module
    docstring (now-queue / timer wheel / far heap).  All three tiers share
    one strictly increasing sequence counter, so the dispatch order is
    exactly the ``(time, seq)`` order the seed's single heap produced —
    the representation changed, the contract did not.
    """

    def __init__(self, sanitize: SanitizeConfig | None = None) -> None:
        # Determinism-sanitizer mode (see repro.sim.sanitizer): default-off,
        # falls back to the REPRO_SANITIZE environment variable so subprocess
        # harnesses can arm it without threading a parameter through every
        # experiment entry point.  The hooks live on cold paths only (mark,
        # schedule_batch, slot refill) — the inlined hot push paths are
        # untouched either way.
        if sanitize is None:
            sanitize = active_sanitizer()
        self._sanitize = sanitize
        self._no_coalesce = sanitize is not None and sanitize.no_coalesce
        self._shake_rng = (
            Random(sanitize.shake_seed)
            if sanitize is not None and sanitize.shake_seed is not None
            else None
        )
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._n_processed = 0
        self._last_t = 0.0
        self._deadlock_hints: list[Callable[[], str | None]] = []
        # Tier 1: occurrences at exactly the current timestamp, FIFO.  Bare
        # items — while the clock stands still, append order IS (time, seq)
        # order, so no tuple is built for the hottest push path.
        self._now_q: deque[Any] = deque()
        # Tier 2: the timer wheel.  Bucket ``e & _MASK`` holds entries of
        # exactly one epoch ``e = int(t * _INV_WIDTH)`` within the window
        # [_cur_epoch, _wheel_end); the window invariant is what makes the
        # per-slot sort-on-extract equivalent to a global heap.
        self._buckets: list[list[tuple[float, int, Any]]] = [
            [] for _ in range(_NB)
        ]
        self._cur_epoch = 0
        self._wheel_end = _NB
        self._n_wheel = 0
        # Tier 3: far timers beyond the wheel horizon (plus, transiently,
        # entries behind the cursor after an early run() exit).
        self._far: list[tuple[float, int, Any]] = []
        # The bucket currently being dispatched: sorted entries, a cursor,
        # and the epoch it was extracted for (consumed slots become None).
        self._batch: list[Any] = []
        self._batch_i = 0
        self._batch_epoch = -1
        # Freelist of completed, unreferenced Timeouts (see Simulator.run).
        self._timeout_pool: list[Timeout] = []

    def add_deadlock_hint(self, fn: Callable[[], str | None]) -> None:
        """Register a diagnosis callback consulted when a deadlock fires.

        Each callback returns a short explanation string (or ``None`` for
        "nothing to add"); engines use this to distinguish a paper-mode
        stall (no retransmission) from an exhausted retry budget in the
        deadlock message of :meth:`run_process`.
        """
        self._deadlock_hints.append(fn)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (microseconds by library convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of occurrences processed so far (for stats).

        Exact at every timestamp boundary, including *during* ``run()``
        (the hot loop mirrors the count in a local and flushes it whenever
        the clock is about to move); within a same-timestamp cascade it may
        lag by the cascade's in-flight portion.
        """
        return self._n_processed

    @property
    def last_event_time(self) -> float:
        """Time of the most recently dispatched occurrence.

        Unlike :attr:`now`, this does not advance when ``run(until=...)``
        outlives the queue — it answers "when did the simulation last do
        something", which is what activity reports want.
        """
        return self._last_t

    # -- event construction ------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            to = pool.pop()
            to.delay = delay
            to._value = value
            self._seq = seq = self._seq + 1
            t = self._now + delay
            if t <= self._now:
                self._now_q.append(to)
            else:  # inlined _push, see schedule()
                if not t <= _T_MAX:
                    raise SimulationError(
                        f"cannot schedule at t={t!r} (beyond the kernel horizon)"
                    )
                epoch = int(t * _INV_WIDTH)
                if epoch == self._batch_epoch:
                    batch = self._batch
                    if self._batch_i < len(batch):
                        insort(batch, (t, seq, to), lo=self._batch_i)
                        return to
                    if (
                        epoch == self._cur_epoch
                        and not self._n_wheel
                        and not self._far
                    ):
                        batch.clear()
                        self._batch_i = 0
                        batch.append((t, seq, to))
                        return to
                    # Exhausted batch: fall through to the window check
                    # (the batch may be a behind-cursor far extraction).
                if self._cur_epoch <= epoch < self._wheel_end:
                    self._buckets[epoch & _MASK].append((t, seq, to))
                    self._n_wheel += 1
                else:
                    heappush(self._far, (t, seq, to))
            return to
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event succeeding at the first ``events`` success."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    # The push paths inline the tie-breaking sequence increment and the
    # now-queue fast path: they run once per simulated occurrence, so a
    # method call per push is measurable on the event-loop throughput bench.
    # Every push — including now-queue appends — bumps the sequence counter,
    # which is what keeps mark() an exact "nothing happened in between"
    # witness for the netsim coalescing guards.
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` time units (0 = this timestamp)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        t = self._now + delay
        if t <= self._now:
            self._now_q.append(fn)
        else:  # inlined _push (a call per occurrence is measurable here)
            if not t <= _T_MAX:
                raise SimulationError(
                    f"cannot schedule at t={t!r} (beyond the kernel horizon)"
                )
            epoch = int(t * _INV_WIDTH)
            if epoch == self._batch_epoch:
                batch = self._batch
                if self._batch_i < len(batch):
                    insort(batch, (t, seq, fn), lo=self._batch_i)
                    return
                if (
                    epoch == self._cur_epoch
                    and not self._n_wheel
                    and not self._far
                ):
                    batch.clear()
                    self._batch_i = 0
                    batch.append((t, seq, fn))
                    return
                # Exhausted batch: fall through to the window check (the
                # batch may be a behind-cursor far extraction, whose
                # epoch's slot now belongs to epoch + _NB).
            if self._cur_epoch <= epoch < self._wheel_end:
                self._buckets[epoch & _MASK].append((t, seq, fn))
                self._n_wheel += 1
            else:
                heappush(self._far, (t, seq, fn))

    def schedule_batch(self, delay: float, fns: list[Callable[[], None]]) -> None:
        """Run ``fns`` back-to-back after ``delay``, as ONE queue entry.

        Exactly equivalent to *consecutive* ``schedule(delay, fn)`` calls
        (nothing can interleave between back-to-back pushes in a
        single-threaded kernel, so collapsing the run of adjacent sequence
        numbers into one entry is unobservable) but costs one push and one
        dispatch; each ``fn`` still counts as one processed event.  The
        kernel takes ownership of the list — callers must not mutate it
        afterwards.  This is the primitive the NIC layers use to make a
        burst of same-timestamp completions cost one dispatch.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if not fns:
            return
        if self._no_coalesce:
            # Sanitizer: exercise the documented equivalence — a batch IS
            # its consecutive individual pushes; any observable difference
            # is a kernel or caller bug the sanitize run exists to catch.
            for fn in fns:
                self.schedule(delay, fn)
            return
        self._seq = seq = self._seq + 1
        t = self._now + delay
        if t <= self._now:
            self._now_q.append(fns)
        else:
            self._push(t, seq, fns)

    def mark(self) -> int:
        """Opaque, strictly increasing stamp of the latest queue push.

        Two equal marks prove no occurrence was scheduled in between; the
        netsim layers use this to coalesce adjacent same-timestamp
        completions into one batched dispatch without reordering anything.

        Under the ``no_coalesce`` sanitizer every call returns a *fresh*
        stamp, so no two marks ever compare equal and each mark-guarded
        fast path is forced onto its (claimed-equivalent) slow path.
        """
        if self._no_coalesce:
            self._seq += 1
        return self._seq

    def _schedule_event(self, delay: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        t = self._now + delay
        if t <= self._now:
            self._now_q.append(event)
        else:  # inlined _push, see schedule()
            if not t <= _T_MAX:
                raise SimulationError(
                    f"cannot schedule at t={t!r} (beyond the kernel horizon)"
                )
            epoch = int(t * _INV_WIDTH)
            if epoch == self._batch_epoch:
                batch = self._batch
                if self._batch_i < len(batch):
                    insort(batch, (t, seq, event), lo=self._batch_i)
                    return
                if (
                    epoch == self._cur_epoch
                    and not self._n_wheel
                    and not self._far
                ):
                    batch.clear()
                    self._batch_i = 0
                    batch.append((t, seq, event))
                    return
                # Exhausted batch: fall through to the window check (the
                # batch may be a behind-cursor far extraction, whose
                # epoch's slot now belongs to epoch + _NB).
            if self._cur_epoch <= epoch < self._wheel_end:
                self._buckets[epoch & _MASK].append((t, seq, event))
                self._n_wheel += 1
            else:
                heappush(self._far, (t, seq, event))

    def _activate(self, event: Event) -> None:
        """Queue a triggered event's callbacks for execution *now*."""
        self._seq += 1
        self._now_q.append(event)

    def _push(self, t: float, seq: int, item: Any) -> None:
        """Insert a future occurrence into the wheel, batch, or far heap."""
        if not t <= _T_MAX:
            raise SimulationError(
                f"cannot schedule at t={t!r} (beyond the kernel horizon)"
            )
        epoch = int(t * _INV_WIDTH)
        if epoch == self._batch_epoch:
            batch = self._batch
            if self._batch_i < len(batch):
                # The bucket being dispatched right now: bisect past the
                # consumption cursor so the entry still fires in (t, seq)
                # order (the consumed region holds Nones and is never
                # compared).
                insort(batch, (t, seq, item), lo=self._batch_i)
                return
            if epoch == self._cur_epoch and not self._n_wheel and not self._far:
                # Serial-cascade fast path: the batch is exhausted and this
                # is the only pending timed entry anywhere, so extending
                # the batch in place is trivially the global (t, seq)
                # order — and skips a full slot-extract/refill round trip.
                batch.clear()
                self._batch_i = 0
                batch.append((t, seq, item))
                return
            # Exhausted batch: fall through to the window check below.  The
            # batch may be a *behind-cursor* far extraction (after an early
            # run() exit advanced the cursor), and then its epoch's slot
            # belongs to epoch + _NB — appending there would strand the
            # entry a full wheel revolution in the future.
        if self._cur_epoch <= epoch < self._wheel_end:
            self._buckets[epoch & _MASK].append((t, seq, item))
            self._n_wheel += 1
        else:
            # Beyond the wheel horizon — or behind the cursor, which can
            # happen after an early run() exit; _refill always takes
            # min(wheel epoch, far epoch) so both cases stay ordered.
            heappush(self._far, (t, seq, item))

    def _refill(self) -> bool:
        """Extract the next non-empty epoch into ``_batch`` (sorted).

        Returns ``False`` when every tier is empty.  The far heap may hold
        entries of any epoch (far timers, behind-cursor pushes), so the
        next epoch is always min(first non-empty wheel slot, far top); far
        entries of that same epoch are merged into the extracted slot.
        """
        far = self._far
        slot: list[tuple[float, int, Any]]
        if self._n_wheel:
            buckets = self._buckets
            e = self._cur_epoch
            while True:
                slot = buckets[e & _MASK]
                if slot:
                    break
                e += 1
            if far and int(far[0][0] * _INV_WIDTH) < e:
                e = int(far[0][0] * _INV_WIDTH)
                slot = []
            else:
                buckets[e & _MASK] = []
                self._n_wheel -= len(slot)
        elif far:
            e = int(far[0][0] * _INV_WIDTH)
            slot = []
        else:
            return False
        while far and int(far[0][0] * _INV_WIDTH) == e:
            slot.append(heappop(far))
        slot.sort()
        if self._shake_rng is not None and len(slot) > 1:
            # Sanitizer: permute equal-timestamp runs so handlers that
            # depend on intra-timestamp arrival order betray themselves.
            shake_slot(slot, self._shake_rng)
        self._batch = slot
        self._batch_i = 0
        self._batch_epoch = e
        if e > self._cur_epoch:
            # Advancing the window is safe: every slot between the old
            # cursor and ``e`` was just scanned empty (or the wheel is
            # empty entirely), so the one-epoch-per-slot invariant holds
            # for the new window [e, e + _NB).
            self._cur_epoch = e
            self._wheel_end = e + _NB
        return True

    # -- run loop -------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time at exit.  The clock always advances to
        ``until`` when one is given — including when the queue drains first
        (and it never moves backwards if ``until`` is already in the past).
        Raises the exception of any failed event that no waiter observed
        (so protocol bugs surface in tests instead of vanishing).

        ``max_events`` is a livelock backstop: the run stops *before*
        dispatching entry ``max_events + 1``, leaving it queued, with a
        diagnostic carrying the current time, queue depth, and the next
        few pending entries.

        Hot loop notes: the now-queue, Event class and Timeout freelist are
        bound to locals, and the processed counter is mirrored in a local
        that flushes to ``_n_processed`` at every timestamp boundary — so
        ``events_processed`` read from any timed callback (watchdog ticks,
        chaos audits) is exact for all prior timestamps, while the
        per-event cost stays one integer add.  Monotonicity needs no
        explicit check: delays are validated non-negative at push time and
        the calendar pops in (time, seq) order.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        now_q = self._now_q
        pop_now = now_q.popleft
        event_cls = Event
        list_cls = list
        pool = self._timeout_pool
        refcount = _getrefcount
        base = self._n_processed
        limit = max_events
        n = 0
        try:
            while True:
                # Tier 1: everything at the current timestamp, push order.
                while now_q:
                    if n >= limit:
                        self._n_processed = base + n
                        raise SimulationError(self._livelock_report(limit))
                    item = pop_now()
                    if isinstance(item, event_cls):
                        n += 1
                        if item._ok is None:
                            # A Timeout reaching its due time: trigger now.
                            item._ok = True
                        callbacks = item._callbacks
                        item._callbacks = None
                        if callbacks:
                            for fn in callbacks:
                                fn(item)
                        if item._ok is False and not item._defused:
                            assert item._exc is not None
                            raise item._exc
                        if (
                            item._pooled
                            and len(pool) < _POOL_CAP
                            and refcount(item) == 2
                        ):
                            # Only the loop local and refcount's argument
                            # hold this Timeout: no process, condition or
                            # user closure can ever see it again, so it is
                            # safe to recycle (reusing its callbacks list).
                            item._ok = None
                            item._value = None
                            item._exc = None
                            item._defused = False
                            if callbacks is not None:
                                callbacks.clear()
                                item._callbacks = callbacks
                            else:
                                item._callbacks = []
                            pool.append(item)
                    elif item.__class__ is list_cls:
                        # A schedule_batch entry: one dispatch, len(fns)
                        # logical events.
                        n += len(item)
                        for fn in item:
                            fn()
                    else:
                        n += 1
                        item()
                self._n_processed = base + n
                if n:
                    self._last_t = self._now
                # Tier 2/3: advance the clock to the next timed bucket.
                batch = self._batch
                i = self._batch_i
                if i >= len(batch):
                    if not self._refill():
                        break
                    batch = self._batch
                    i = 0
                t = batch[i][0]
                if until is not None and t > until:
                    break
                self._now = t
                # Dispatch the whole same-timestamp run before returning to
                # the now-queue: these entries were pushed earlier (smaller
                # seq) than anything their dispatch pushes at time t, so
                # batch-first is exactly the heap's (time, seq) order.
                while True:
                    if n >= limit:
                        self._batch_i = i
                        self._n_processed = base + n
                        raise SimulationError(self._livelock_report(limit))
                    _t, _, item = batch[i]
                    # Drop the tuple before dispatch: the freelist refcount
                    # proof needs no stray queue reference to the item, and
                    # insort above never compares the consumed region.
                    batch[i] = None
                    i += 1
                    self._batch_i = i
                    if isinstance(item, event_cls):
                        n += 1
                        if item._ok is None:
                            item._ok = True
                        callbacks = item._callbacks
                        item._callbacks = None
                        if callbacks:
                            for fn in callbacks:
                                fn(item)
                        if item._ok is False and not item._defused:
                            assert item._exc is not None
                            raise item._exc
                        if (
                            item._pooled
                            and len(pool) < _POOL_CAP
                            and refcount(item) == 2
                        ):
                            item._ok = None
                            item._value = None
                            item._exc = None
                            item._defused = False
                            if callbacks is not None:
                                callbacks.clear()
                                item._callbacks = callbacks
                            else:
                                item._callbacks = []
                            pool.append(item)
                    elif item.__class__ is list_cls:
                        n += len(item)
                        for fn in item:
                            fn()
                    else:
                        n += 1
                        item()
                    if i >= len(batch) or batch[i][0] != t:
                        break
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._n_processed = base + n
            batch = self._batch
            i = self._batch_i
            self._batch = []
            self._batch_i = 0
            self._batch_epoch = -1
            if i < len(batch):
                # run() exited mid-bucket (until cut, max_events, or a
                # propagating failure): push the undispatched tail back
                # into the wheel/far heap so the queue stays consistent
                # and a later run() resumes exactly where this one stopped.
                for entry in batch[i:]:
                    epoch = int(entry[0] * _INV_WIDTH)
                    if self._cur_epoch <= epoch < self._wheel_end:
                        self._buckets[epoch & _MASK].append(entry)
                        self._n_wheel += 1
                    else:
                        heappush(self._far, entry)
            self._running = False

    def _livelock_report(self, limit: int) -> str:
        """Diagnostic for the max_events backstop: where/what is queued."""
        batch = self._batch
        pending = (
            len(self._now_q)
            + (len(batch) - self._batch_i)
            + self._n_wheel
            + len(self._far)
        )
        heads = [
            f"(t={self._now:g}, {item!r})" for item in islice(self._now_q, 3)
        ]
        for entry in batch[self._batch_i : self._batch_i + 3 - len(heads)]:
            heads.append(f"(t={entry[0]:g}, {entry[2]!r})")
        return (
            f"exceeded max_events={limit} at t={self._now:g}us with "
            f"{pending} entries still queued (likely a livelock); next up: "
            f"{', '.join(heads) if heads else 'n/a'}"
        )

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn ``gen``, run to completion, return its value."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.triggered:
            msg = (
                f"process {proc.name!r} never finished (deadlock: queue "
                "drained while the process was still waiting)"
            )
            hints = [h for fn in self._deadlock_hints if (h := fn())]
            if hints:
                msg += " | " + "; ".join(hints)
            raise SimulationError(msg)
        return proc.value

    def peek(self) -> float:
        """Time of the next scheduled item, or ``inf`` if the queue is empty."""
        if self._now_q:
            return self._now
        batch = self._batch
        if self._batch_i < len(batch):
            return float(batch[self._batch_i][0])
        best = _INF
        if self._n_wheel:
            e = self._cur_epoch
            while True:
                slot = self._buckets[e & _MASK]
                if slot:
                    best = min(entry[0] for entry in slot)
                    break
                e += 1
        if self._far and self._far[0][0] < best:
            best = self._far[0][0]
        return best

"""Discrete-event simulation kernel (the reproduction's time substrate)."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
    Watchdog,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Watchdog",
]

"""Runtime determinism sanitizer for the event kernel.

The repo's standing acceptance bar is *bit-identical* output: figures and
seeded chaos runs must not change across processes, Python versions, or
hash seeds.  The static pass (NM1xx/NM5xx) proves what it can about
iteration order and generation guards; this module hunts the rest
**dynamically**, by making the kernel actively hostile to latent order
dependence while staying observably equivalent for correct code:

* ``no_coalesce`` — :meth:`~repro.sim.core.Simulator.mark` returns a
  fresh stamp on every call, so no two marks ever compare equal and every
  mark-guarded coalescing fast path (the NIC rx/refill batching) is
  forced onto its slow path; ``schedule_batch`` is likewise de-batched
  into consecutive ``schedule`` calls.  Both rewrites are equivalent *by
  the kernel's own contract* (a batch is defined as consecutive pushes;
  coalescing is only legal when it is unobservable) — so any output
  difference under ``no_coalesce`` is a real bug in a coalescing guard.

* ``shake_seed`` — after the calendar queue sorts an extracted slot, runs
  of *equal-timestamp* entries are deterministically permuted by a
  :class:`random.Random` seeded with ``shake_seed``.  Inter-timestamp
  order is untouched.  Handlers whose observable writes depend on
  intra-timestamp arrival order produce different fingerprints under
  different shake seeds.  Unlike ``no_coalesce`` this is **not**
  output-preserving in general — protocol layers may legitimately rely
  on FIFO fairness within a timestamp — so the shake is applied to
  workloads that are claimed order-insensitive (the kernel storm profile
  and the sanitizer's own fixtures), not to the figure pipeline.

Sanitize mode is **opt-in and default-off**: a plain ``Simulator()``
checks the ``REPRO_SANITIZE`` environment variable once at construction
(unset in normal runs) and takes zero extra branches on the inlined push
paths either way.  ``python -m repro sanitize`` is the driver that
combines these hooks with forced hash randomization and byte-compares
the output (see ``repro.cli``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random
from typing import Any

__all__ = [
    "SanitizeConfig",
    "active_sanitizer",
    "parse_sanitize_spec",
    "shake_slot",
    "storm_fingerprint",
]

#: Environment variable holding the sanitize spec for subprocess runs.
SANITIZE_ENV = "REPRO_SANITIZE"


@dataclass(frozen=True)
class SanitizeConfig:
    """Kernel sanitize mode: which determinism hazards to provoke."""

    no_coalesce: bool = False
    shake_seed: int | None = None

    def spec(self) -> str:
        """The ``REPRO_SANITIZE`` string that reproduces this config."""
        parts = []
        if self.no_coalesce:
            parts.append("nocoalesce")
        if self.shake_seed is not None:
            parts.append(f"shake:{self.shake_seed}")
        return ",".join(parts)


def parse_sanitize_spec(spec: str) -> SanitizeConfig | None:
    """Parse ``"nocoalesce"``, ``"shake:SEED"``, or a comma combination.

    An empty/blank spec means "not sanitizing" (returns ``None``); an
    unknown token raises, so a typo'd CI variable cannot silently run the
    un-sanitized kernel and report success.
    """
    spec = spec.strip()
    if not spec:
        return None
    no_coalesce = False
    shake_seed: int | None = None
    for token in spec.split(","):
        token = token.strip()
        if token == "nocoalesce":
            no_coalesce = True
        elif token.startswith("shake:"):
            shake_seed = int(token[len("shake:"):])
        else:
            raise ValueError(f"unknown sanitize token {token!r} "
                             f"(expected 'nocoalesce' or 'shake:SEED')")
    return SanitizeConfig(no_coalesce=no_coalesce, shake_seed=shake_seed)


def active_sanitizer() -> SanitizeConfig | None:
    """The process-wide sanitize config (``REPRO_SANITIZE``), if any."""
    return parse_sanitize_spec(os.environ.get(SANITIZE_ENV, ""))


def shake_slot(slot: list[tuple[float, int, Any]], rng: Random) -> None:
    """Permute runs of equal-timestamp entries of a sorted slot in place.

    Entries are ``(t, seq, item)`` and the slot arrives sorted, so equal-t
    runs are contiguous; only their internal order changes.  Because the
    ``(t, seq)`` prefix is unique, later ``insort`` calls into the live
    batch never compare payloads, and any bisection misplacement stays
    inside the equal-t region — which is exactly the variance being
    injected.
    """
    i, n = 0, len(slot)
    while i < n:
        t = slot[i][0]
        j = i + 1
        while j < n and slot[j][0] == t:
            j += 1
        if j - i > 1:
            run = slot[i:j]
            rng.shuffle(run)
            slot[i:j] = run
        i = j


def storm_fingerprint(
    config: SanitizeConfig | None,
    rounds: int = 40,
    fanout: int = 64,
    stragglers: int = 8,
) -> tuple[float, int, int]:
    """Deterministic fingerprint of a completion-storm run.

    The workload mirrors ``bench_kernel_storm``: per round, ``fanout``
    same-timestamp completions posted through ``schedule_batch`` plus a
    few straggler timers.  Completions only count — the workload is
    order-insensitive by construction — so a correct kernel yields the
    same ``(final clock, events processed, completions)`` triple under
    every sanitize config, while a kernel whose batching or intra-slot
    ordering leaks into observable state does not.
    """
    from repro.sim.core import Simulator

    sim = Simulator(sanitize=config)
    count = [0]

    def completion() -> None:
        count[0] += 1

    def round_fn(r: int) -> None:
        sim.schedule_batch(1.0, [completion] * fanout)
        for k in range(stragglers):
            sim.schedule(1.0 + (k + 1) * 0.07, completion)
        if r + 1 < rounds:
            sim.schedule(1.0, lambda: round_fn(r + 1))

    sim.schedule(0.0, lambda: round_fn(0))
    final = sim.run()
    return (final, sim.events_processed, count[0])

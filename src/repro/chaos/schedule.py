"""Seeded chaos schedules: a seed expands into a concrete fault list.

A schedule is a flat list of :class:`ChaosFault` records, each naming one
fault the runner installs before traffic starts — a link-level fault on a
directed ``src -> dst`` wire (drop/burst/corrupt/slow/dup/reorder/jitter),
a cluster-level partition between node groups, or a node crash/restart.
Keeping the schedule a plain value (instead of pre-built
:class:`~repro.netsim.link.FaultPlan` objects) is what makes the shrinker
possible: the greedy minimizer re-runs arbitrary sublists of the same
schedule, and the repro snippet prints the surviving records verbatim.

Generation is a pure function of ``(seed, spec)`` via one
``random.Random(seed)`` stream, so a seed reported by a CI sweep replays
bit-identically anywhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import Any

from repro.errors import ReproError

__all__ = ["FAULT_KINDS", "ChaosFault", "ChaosSpec", "generate_schedule"]

#: Every fault kind a schedule may contain.  ``crash`` only appears when
#: :attr:`ChaosSpec.crashes` is set (restart-aware drivers only);
#: ``rack_partition`` and ``switch_kill`` only on structured topologies
#: (:attr:`ChaosSpec.topology` != ``"mesh"``).
FAULT_KINDS = ("drop", "burst", "corrupt", "slow", "dup", "reorder",
               "jitter", "partition", "crash", "rack_partition",
               "switch_kill")

#: Relative pick weights for link faults (partition/crash are rationed
#: separately: at most a couple per schedule, or recovery never settles).
_LINK_KINDS = ("drop", "burst", "corrupt", "slow", "dup", "reorder",
               "jitter")


@dataclass(frozen=True)
class ChaosFault:
    """One injected fault.  Which fields matter depends on ``kind``:

    ========= =========================================================
    kind      meaning of the populated fields
    ========= =========================================================
    drop      link ``src->dst`` drops arrival ``nth``
    burst     link drops ``length`` arrivals starting at ``nth``
    corrupt   link corrupts arrival ``nth`` (delivered, checksum fails)
    slow      link latency x ``factor`` over ``[from_us, until_us)``
    dup       link delivers arrival ``nth`` twice
    reorder   link holds arrival ``nth`` back ``delay_us`` past successors
    jitter    link adds seeded noise in ``[0, max_us)`` (seed ``rng_seed``)
    partition ``groups`` cannot talk over ``[from_us, until_us)``
              (``one_way``: only lower-indexed -> higher-indexed drops)
    crash     node ``src`` fail-stops at ``from_us``, restarts ``until_us``
    rack_partition
              rack ``nth % n_racks`` unreachable over
              ``[from_us, until_us)`` (structured topologies only)
    switch_kill
              a spine switch (selected deterministically from ``nth``
              among the safe candidates) fail-stops at ``from_us``
    ========= =========================================================
    """

    kind: str
    src: int = -1
    dst: int = -1
    nth: int = 0
    length: int = 0
    delay_us: float = 0.0
    factor: float = 1.0
    max_us: float = 0.0
    rng_seed: int = 0
    from_us: float = 0.0
    until_us: float = 0.0
    groups: tuple[tuple[int, ...], ...] = ()
    one_way: bool = False

    def describe(self) -> str:
        """One compact human-readable line for reports and snippets."""
        if self.kind == "drop":
            return f"drop#{self.nth} {self.src}->{self.dst}"
        if self.kind == "burst":
            return (f"burst#{self.nth}+{self.length} "
                    f"{self.src}->{self.dst}")
        if self.kind == "corrupt":
            return f"corrupt#{self.nth} {self.src}->{self.dst}"
        if self.kind == "slow":
            return (f"slow x{self.factor:g} {self.src}->{self.dst} "
                    f"[{self.from_us:g},{self.until_us:g})us")
        if self.kind == "dup":
            return f"dup#{self.nth} {self.src}->{self.dst}"
        if self.kind == "reorder":
            return (f"reorder#{self.nth}+{self.delay_us:g}us "
                    f"{self.src}->{self.dst}")
        if self.kind == "jitter":
            return (f"jitter<{self.max_us:g}us(seed={self.rng_seed}) "
                    f"{self.src}->{self.dst}")
        if self.kind == "partition":
            arrow = "-/>" if self.one_way else "<-/->"
            sides = arrow.join("".join(map(str, g)) for g in self.groups)
            return f"partition {sides} [{self.from_us:g},{self.until_us:g})us"
        if self.kind == "crash":
            return (f"crash node{self.src} at {self.from_us:g}us, "
                    f"restart {self.until_us:g}us")
        if self.kind == "rack_partition":
            return (f"rack-partition rack~{self.nth} "
                    f"[{self.from_us:g},{self.until_us:g})us")
        if self.kind == "switch_kill":
            return f"switch-kill spine~{self.nth} at {self.from_us:g}us"
        return f"{self.kind}?"

    def to_jsonable(self) -> dict[str, Any]:
        """The record as plain JSON types, defaults omitted."""
        out: dict[str, Any] = {"kind": self.kind}
        defaults = ChaosFault(kind=self.kind)
        for field in dataclasses.fields(self):
            if field.name == "kind":
                continue
            value = getattr(self, field.name)
            if value != getattr(defaults, field.name):
                out[field.name] = (
                    [list(g) for g in value]
                    if field.name == "groups" else value)
        return out


@dataclass(frozen=True)
class ChaosSpec:
    """Everything a chaos run is parameterized by, besides the seed.

    The engine configuration is fixed to the full hardening stack
    (``reliability="ack"``, ``flow_control="credit"``,
    ``sessions="epoch"``); the spec only tunes workload size, fault
    density and the detector clocks.  Fault windows are derived from
    ``hb_timeout_us``: without ``crashes``, partitions stay short enough
    (< 0.7 x timeout) that every suspicion must heal — a teardown in that
    regime is an engine bug, and the auditor treats it as one.
    """

    n_nodes: int = 2
    n_messages: int = 16
    msg_min_bytes: int = 64
    msg_max_bytes: int = 4096
    send_gap_us: float = 25.0
    min_faults: int = 2
    max_faults: int = 8
    crashes: bool = False
    deadline_us: float = 60_000.0
    settle_us: float = 5_000.0
    hb_interval_us: float = 50.0
    hb_timeout_us: float = 600.0
    rel_timeout_us: float = 100.0
    rel_retry_budget: int = 64
    max_resends: int = 4
    #: ``"mesh"`` (the default, byte-identical to the pre-topology engine)
    #: or ``"fat-tree"`` to route the workload through a switched fabric.
    topology: str = "mesh"
    fat_tree_k: int = 4
    #: Spine switches to fail-stop mid-run (fat-tree only).  Kills are
    #: capped so each core group keeps a survivor — the drill exercises
    #: rerouting, not a disconnected fabric.
    switch_kills: int = 0
    #: Run the engines with ``rel_timeout_us="auto"`` (the adaptive RTT
    #: estimator) instead of the static :attr:`rel_timeout_us`.  The
    #: schedule generator never reads this flag, so two specs differing
    #: only here expand to byte-identical fault lists — the basis of the
    #: static-vs-adaptive comparison drill.
    adaptive: bool = False
    #: Clamp ceiling for the adaptive RTO (also the cold-start RTO while
    #: the estimator warms up).  The engine default (10ms) is sized for
    #: switched fabrics with millisecond port queues; the chaos drills
    #: run fabrics whose drifted RTT stays well under a millisecond, and
    #: a 10ms cold retransmit (doubled per backoff) would out-wait the
    #: drill's own deadline+settle window, leaving stale timers in the
    #: queue that the drain audit rightly flags.
    rel_rto_ceiling_us: float = 2_000.0
    #: Append an RTT-drift drill to the schedule: a long slow-link ramp
    #: plus jitter windows on the workload path, sized so a static RTO
    #: (``rel_timeout_us``) provably fires spuriously while an adaptive
    #: one tracks the drift.  Composed from the existing ``slow`` and
    #: ``jitter`` fault kinds — no new fault kind.
    rtt_drift: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ReproError(f"chaos needs >= 2 nodes, got {self.n_nodes}")
        if self.n_messages < 1:
            raise ReproError("chaos needs at least one message")
        if not 0 <= self.min_faults <= self.max_faults:
            raise ReproError(
                f"bad fault range [{self.min_faults}, {self.max_faults}]")
        if self.msg_min_bytes < 1 or self.msg_max_bytes < self.msg_min_bytes:
            raise ReproError(
                f"bad message size range [{self.msg_min_bytes}, "
                f"{self.msg_max_bytes}]")
        if self.topology not in ("mesh", "fat-tree"):
            raise ReproError(
                f"unknown chaos topology {self.topology!r}; "
                "expected mesh | fat-tree")
        if self.fat_tree_k < 4 or self.fat_tree_k % 2:
            raise ReproError(
                f"fat_tree_k must be even and >= 4, got {self.fat_tree_k}")
        if self.switch_kills < 0:
            raise ReproError(f"negative switch_kills {self.switch_kills}")
        if self.switch_kills and self.topology == "mesh":
            raise ReproError(
                "switch_kills needs a switched topology "
                "(topology='fat-tree'); a mesh has no switches")
        if self.rel_rto_ceiling_us <= 0:
            raise ReproError(
                f"rel_rto_ceiling_us must be positive, "
                f"got {self.rel_rto_ceiling_us}")

    @classmethod
    def quick(cls, crashes: bool = False, topology: str = "mesh",
              fat_tree_k: int = 4, switch_kills: int = 0,
              adaptive: bool = False, rtt_drift: bool = False) -> ChaosSpec:
        """The CI sweep profile: smaller workload, same fault variety."""
        return cls(n_messages=8, msg_max_bytes=2048, max_faults=6,
                   deadline_us=30_000.0, crashes=crashes,
                   topology=topology, fat_tree_k=fat_tree_k,
                   switch_kills=switch_kills, adaptive=adaptive,
                   rtt_drift=rtt_drift)


def _directed_pair(rng: Random, n_nodes: int) -> tuple[int, int]:
    """A directed node pair, biased towards the 0->1 data path (and its
    1->0 ack path) that carries the workload."""
    if n_nodes == 2 or rng.random() < 0.7:
        return (0, 1) if rng.random() < 0.6 else (1, 0)
    src = rng.randrange(n_nodes)
    dst = rng.randrange(n_nodes - 1)
    if dst >= src:
        dst += 1
    return src, dst


def _split_groups(rng: Random, n_nodes: int) -> tuple[tuple[int, ...], ...]:
    """A deterministic 2-way split with nodes 0 and 1 on opposite sides
    (so the partition always crosses the workload's path)."""
    side_a, side_b = [0], [1]
    for node in range(2, n_nodes):
        (side_a if rng.random() < 0.5 else side_b).append(node)
    return tuple(side_a), tuple(side_b)


def generate_schedule(seed: int, spec: ChaosSpec) -> list[ChaosFault]:
    """Expand ``seed`` into a concrete fault list under ``spec``.

    Deterministic: one ``Random(seed)`` stream drives every choice, and
    nothing else is consulted.  The active traffic window is estimated
    from the workload shape so faults land where frames actually fly.
    """
    rng = Random(seed)
    # Rough window during which the wire is busy: the send ramp plus the
    # tail of retransmits/heals that trail the last injection.
    active_us = (spec.n_messages * spec.send_gap_us
                 + 4.0 * spec.hb_timeout_us)
    # Arrivals on the busy link comfortably exceed the message count
    # (packing, acks, credits); aim fault indices at the real stream.
    est_arrivals = max(4, spec.n_messages * 2)

    faults: list[ChaosFault] = []
    n_faults = rng.randint(spec.min_faults, spec.max_faults)
    n_partitions = 0
    n_crashes = 0
    for _ in range(n_faults):
        roll = rng.random()
        if roll < 0.18 and n_partitions < 2:
            n_partitions += 1
            start = rng.uniform(0.0, active_us * 0.5)
            # Healable by construction: suspicion needs timeout/2 of
            # silence, death a full timeout — 0.2..0.7 spans both sides
            # of suspicion while staying clear of the teardown cliff.
            duration = rng.uniform(0.2, 0.7) * spec.hb_timeout_us
            if spec.topology == "mesh":
                faults.append(ChaosFault(
                    kind="partition",
                    groups=_split_groups(rng, spec.n_nodes),
                    from_us=round(start, 3),
                    until_us=round(start + duration, 3),
                    one_way=rng.random() < 0.3,
                ))
            else:
                # On a structured fabric the natural partition unit is a
                # rack (edge switch / dragonfly group), which always cuts
                # the 0->1 workload path: the two nodes sit in different
                # racks by construction.  Same healable window.
                faults.append(ChaosFault(
                    kind="rack_partition",
                    nth=rng.randrange(1 << 30),
                    from_us=round(start, 3),
                    until_us=round(start + duration, 3),
                ))
            continue
        if spec.crashes and roll < 0.28 and n_crashes < 1:
            n_crashes += 1
            crash_at = rng.uniform(5.0, active_us * 0.4)
            restart_gap = rng.uniform(1.5, 3.0) * spec.hb_timeout_us
            faults.append(ChaosFault(
                kind="crash",
                src=rng.randrange(spec.n_nodes),
                from_us=round(crash_at, 3),
                until_us=round(crash_at + restart_gap, 3),
            ))
            continue
        kind = rng.choice(_LINK_KINDS)
        src, dst = _directed_pair(rng, spec.n_nodes)
        if kind == "drop":
            faults.append(ChaosFault(
                kind="drop", src=src, dst=dst,
                nth=rng.randint(1, est_arrivals)))
        elif kind == "burst":
            faults.append(ChaosFault(
                kind="burst", src=src, dst=dst,
                nth=rng.randint(1, est_arrivals),
                length=rng.randint(2, 4)))
        elif kind == "corrupt":
            faults.append(ChaosFault(
                kind="corrupt", src=src, dst=dst,
                nth=rng.randint(1, est_arrivals)))
        elif kind == "slow":
            start = rng.uniform(0.0, active_us * 0.6)
            faults.append(ChaosFault(
                kind="slow", src=src, dst=dst,
                factor=round(rng.uniform(2.0, 8.0), 2),
                from_us=round(start, 3),
                until_us=round(start + rng.uniform(50.0, 400.0), 3)))
        elif kind == "dup":
            faults.append(ChaosFault(
                kind="dup", src=src, dst=dst,
                nth=rng.randint(1, est_arrivals)))
        elif kind == "reorder":
            faults.append(ChaosFault(
                kind="reorder", src=src, dst=dst,
                nth=rng.randint(1, est_arrivals),
                delay_us=round(rng.uniform(5.0, 150.0), 3)))
        else:  # jitter
            faults.append(ChaosFault(
                kind="jitter", src=src, dst=dst,
                max_us=round(rng.uniform(0.5, 15.0), 3),
                rng_seed=rng.randrange(1 << 30)))
    # Switch kills ride AFTER the seeded link-fault loop so a mesh schedule
    # from the same seed stays byte-identical.  ``nth`` is a selection seed
    # the runner resolves against the safe spine candidates; the kill lands
    # early enough that reroute happens mid-transfer, not post-traffic.
    for _ in range(spec.switch_kills):
        faults.append(ChaosFault(
            kind="switch_kill",
            nth=rng.randrange(1 << 30),
            from_us=round(rng.uniform(active_us * 0.1, active_us * 0.5), 3),
        ))
    # The RTT-drift drill: a long, severe slow-link ramp on the workload
    # wire plus jitter on both directions of the path, built from the
    # existing fault kinds.  Drawn AFTER every other fault so the shared
    # rng stream leaves non-drift schedules byte-identical, but PREPENDED
    # to the list so the per-link singleton ``slow``/``jitter`` slots in
    # the runner (first-come wins) always belong to the drill.  The slow
    # factor is sized against the MX profile (~2us hops) so the default
    # static RTO (100us in chaos specs) provably retransmits spuriously
    # inside the window, while a measured RTO rides it out.
    if spec.rtt_drift:
        start = round(rng.uniform(active_us * 0.05, active_us * 0.25), 3)
        drift = [
            ChaosFault(
                kind="slow", src=0, dst=1,
                factor=round(rng.uniform(48.0, 80.0), 2),
                from_us=start,
                until_us=round(start + rng.uniform(0.35, 0.6) * active_us,
                               3)),
            ChaosFault(
                kind="jitter", src=0, dst=1,
                max_us=round(rng.uniform(15.0, 45.0), 3),
                rng_seed=rng.randrange(1 << 30)),
            ChaosFault(
                kind="jitter", src=1, dst=0,
                max_us=round(rng.uniform(15.0, 45.0), 3),
                rng_seed=rng.randrange(1 << 30)),
        ]
        faults[:0] = drift
    return faults

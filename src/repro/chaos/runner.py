"""Run one chaos schedule end to end and capture the world for auditing.

The runner owns everything between "a fault list" and "a quiesced
simulation": it builds a two-plus-node cluster on the MX profile,
translates :class:`~repro.chaos.schedule.ChaosFault` records into
:class:`~repro.netsim.link.FaultPlan` installations, and drives a
deterministic tagged-message workload through the fully hardened engine
configuration (``reliability="ack"``, ``flow_control="credit"``,
``sessions="epoch"``).  The driver mirrors how a recovery-aware
application uses the API (the PR-5 idiom): receives are posted up front,
failed sends are re-issued a bounded number of times, failed or orphaned
receives are re-posted, and crashed nodes are revived as fresh engine
incarnations.

The runner deliberately does *not* judge the outcome — it returns a
:class:`ChaosWorld` snapshot (every engine incarnation, every request
ever issued, the drained flag) and :func:`run_chaos` hands that to
:func:`repro.chaos.audit.audit_run`.  Keeping run and audit separate is
what lets the shrinker re-run sublists cheaply and lets tests audit
deliberately broken engines.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Generator
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any

from repro.chaos.schedule import ChaosFault, ChaosSpec, generate_schedule
from repro.core.engine import EngineParams, NmadEngine
from repro.core.requests import RecvRequest, SendRequest
from repro.errors import PeerDeadError, ReproError
from repro.netsim.fabric import FatTree
from repro.netsim.link import FaultPlan
from repro.netsim.profiles import MX_MYRI10G
from repro.netsim.stats import topology_summary
from repro.netsim.topology import Cluster
from repro.sim.core import Event, Simulator

if TYPE_CHECKING:
    from repro.chaos.audit import Finding

__all__ = ["ChaosReport", "ChaosWorld", "TagState", "run_chaos", "run_schedule"]

#: Fault kinds installed as per-link :class:`FaultPlan` fields.
_LINK_FAULTS = frozenset({
    "drop", "burst", "corrupt", "slow", "dup", "reorder", "jitter",
})

#: The workload travels sender -> receiver on these fixed roles.
_SENDER = 0
_RECEIVER = 1


@dataclass
class TagState:
    """Every request ever issued for one tagged message, across engine
    incarnations (the audit trail for exactly-once checking)."""

    tag: int
    payload: bytes
    sends: list[tuple[NmadEngine, SendRequest]] = field(default_factory=list)
    recvs: list[tuple[NmadEngine, RecvRequest]] = field(default_factory=list)

    def completions(self) -> list[tuple[NmadEngine, RecvRequest]]:
        """Receives that completed successfully (carry landed data)."""
        return [(eng, r) for eng, r in self.recvs
                if r.complete and not r.failed]

    def delivered(self) -> bool:
        return bool(self.completions())


@dataclass
class ChaosWorld:
    """The quiesced simulation, handed to the auditor.

    ``nodes`` maps node id to every engine incarnation in start order
    (more than one entry only after a crash/restart); the *current*
    incarnation is the last.  ``drained`` records whether the event queue
    was empty after the settle window — the live-timer invariant.
    """

    seed: int
    spec: ChaosSpec
    faults: list[ChaosFault]
    sim: Simulator
    cluster: Cluster
    nodes: dict[int, list[NmadEngine]]
    tags: dict[int, TagState]
    drained: bool

    @property
    def crashed(self) -> bool:
        """True when the schedule contains any crash/restart fault."""
        return any(f.kind == "crash" for f in self.faults)

    def engines(self) -> list[NmadEngine]:
        """Every engine incarnation, deterministic order."""
        return [eng for _nid, incarnations in sorted(self.nodes.items())
                for eng in incarnations]

    def total(self, counter: str) -> int:
        """Sum one ``EngineStats`` counter over every incarnation."""
        return sum(int(getattr(eng.stats, counter))
                   for eng in self.engines())


@dataclass
class ChaosReport:
    """The JSON-able verdict of one seeded chaos run."""

    seed: int
    ok: bool
    drained: bool
    elapsed_us: float
    n_messages: int
    delivered: int
    spec: ChaosSpec
    faults: list[ChaosFault]
    findings: list[Finding]
    fault_summary: dict[str, int]
    stats: dict[str, dict[str, int]]
    #: :func:`repro.netsim.stats.topology_summary` of the cluster (empty
    #: ``switches`` list on the flat mesh).
    topology: dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "drained": self.drained,
            "elapsed_us": self.elapsed_us,
            "n_messages": self.n_messages,
            "delivered": self.delivered,
            "spec": dataclasses.asdict(self.spec),
            "faults": [f.to_jsonable() for f in self.faults],
            "findings": [f.to_jsonable() for f in self.findings],
            "fault_summary": dict(self.fault_summary),
            "stats": {node: dict(counters)
                      for node, counters in self.stats.items()},
            "topology": dict(self.topology),
        }

    def describe(self) -> str:
        """A compact multi-line summary for terminal output."""
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"chaos seed {self.seed}: {verdict} "
            f"({self.delivered}/{self.n_messages} delivered, "
            f"{len(self.faults)} fault(s), drained={self.drained})",
        ]
        if self.topology.get("n_switches"):
            lines.append(
                f"  fabric  {self.topology['name']}: "
                f"{self.topology['n_switches']} switch(es), "
                f"{self.topology['switches_down']} down, "
                f"{self.topology['paths_rerouted']} path(s) rerouted, "
                f"{self.topology['switch_frames_dropped']} frame(s) "
                "switch-dropped")
        for fault in self.faults:
            lines.append(f"  inject  {fault.describe()}")
        for finding in self.findings:
            lines.append(f"  FINDING [{finding.code}] {finding.detail}")
        return "\n".join(lines)


def _engine_params(spec: ChaosSpec) -> EngineParams:
    """The fully hardened configuration every chaos run exercises.

    With ``spec.adaptive`` the static retransmit timeout is replaced by
    the measured one (``rel_timeout_us="auto"``, clamped under the
    spec's ``rel_rto_ceiling_us`` — the drill's fabric, not a switched
    datacenter, sizes the cold-start RTO); everything else stays
    identical, so an adaptive run differs from its static twin only in
    how deadlines are derived — the fault schedule is the same.
    """
    if spec.adaptive:
        return EngineParams(
            reliability="ack",
            flow_control="credit",
            sessions="epoch",
            rel_timeout_us="auto",
            rel_rto_ceiling_us=spec.rel_rto_ceiling_us,
            rel_ack_delay_us=10.0,
            rel_retry_budget=spec.rel_retry_budget,
            hb_interval_us=spec.hb_interval_us,
            hb_timeout_us=spec.hb_timeout_us,
        )
    return EngineParams(
        reliability="ack",
        flow_control="credit",
        sessions="epoch",
        rel_timeout_us=spec.rel_timeout_us,
        rel_ack_delay_us=10.0,
        rel_retry_budget=spec.rel_retry_budget,
        hb_interval_us=spec.hb_interval_us,
        hb_timeout_us=spec.hb_timeout_us,
    )


def _install_faults(
    sim: Simulator,
    cluster: Cluster,
    params: EngineParams,
    nodes: dict[int, list[NmadEngine]],
    faults: list[ChaosFault],
) -> None:
    """Translate the schedule into FaultPlans on links and nodes.

    Link faults targeting the same directed wire merge into one plan
    (first-come wins for the singleton ``slow``/``jitter`` slots and for
    colliding reorder indices); partitions are layered on afterwards via
    :meth:`Cluster.partition`, which composes with existing plans.
    Crashes install the node fault *and* schedule the application-level
    revive that boots a fresh engine incarnation just after restart.
    """
    by_link: dict[tuple[int, int], list[ChaosFault]] = {}
    for fault in faults:
        if fault.kind in _LINK_FAULTS:
            by_link.setdefault((fault.src, fault.dst), []).append(fault)

    for (src, dst), flist in sorted(by_link.items()):
        drop_nth: list[int] = []
        bursts: list[tuple[int, int]] = []
        corrupt_nth: list[int] = []
        dup_nth: list[int] = []
        reorder: list[tuple[int, float]] = []
        reorder_seen: set[int] = set()
        slow: tuple[float, float, float | None] | None = None
        jitter: tuple[float, int] | None = None
        for fault in flist:
            if fault.kind == "drop":
                drop_nth.append(fault.nth)
            elif fault.kind == "burst":
                bursts.append((fault.nth, fault.length))
            elif fault.kind == "corrupt":
                corrupt_nth.append(fault.nth)
            elif fault.kind == "dup":
                dup_nth.append(fault.nth)
            elif fault.kind == "reorder":
                if fault.nth not in reorder_seen:
                    reorder_seen.add(fault.nth)
                    reorder.append((fault.nth, fault.delay_us))
            elif fault.kind == "slow":
                if slow is None:
                    slow = (fault.factor, fault.from_us, fault.until_us)
            elif jitter is None:
                jitter = (fault.max_us, fault.rng_seed)
        plan = FaultPlan(
            drop_nth=drop_nth, bursts=bursts, corrupt_nth=corrupt_nth,
            dup_nth=dup_nth, reorder=reorder, slow_link=slow, jitter=jitter,
        )
        installed = False
        for link in cluster.links:
            if (link.src.node_id == src and link.dst.node_id == dst):
                link.fault_plan = plan
                installed = True
        if not installed:
            # Switched fabric: no direct src->dst wire exists, so the fault
            # lands on the source host's uplink — the first (and on a
            # 2-node drill, only) hop every frame of that flow crosses.
            uplink = cluster.host_uplinks.get((src, 0))
            if uplink is not None:
                uplink.fault_plan = plan

    # Deterministic spine-kill resolution: each ``switch_kill``'s ``nth``
    # indexes into the rail-0 core switches that can still die safely —
    # every core group must keep one survivor, or the fabric disconnects
    # and the drill stops exercising reroute and starts proving the
    # obvious.  Kills beyond the safe budget are skipped.
    kills = [f for f in faults if f.kind == "switch_kill"]
    if kills:
        spines = [s for s in cluster.switches
                  if s.tier == "core" and s.rail == 0]
        if not spines:
            raise ReproError(
                "schedule contains switch_kill but the cluster has no "
                "spine switches (topology must be fat-tree)")
        remaining: dict[int, int] = {}
        for s in spines:
            remaining[s.group] = remaining.get(s.group, 0) + 1
        doomed: set[int] = set()
        for fault in kills:
            eligible = [s for s in spines
                        if s.switch_id not in doomed
                        and remaining[s.group] > 1]
            if not eligible:
                continue  # no safe spine left; skip the extra kill
            target = eligible[fault.nth % len(eligible)]
            doomed.add(target.switch_id)
            remaining[target.group] -= 1
            cluster.schedule_switch_fault(
                target.switch_id, FaultPlan(switch_down_at=fault.from_us))

    for fault in faults:
        if fault.kind == "rack_partition":
            cluster.rack_partition(
                fault.nth % len(cluster.racks),
                from_us=fault.from_us, until_us=fault.until_us,
            )
        elif fault.kind == "partition":
            cluster.partition(
                [list(group) for group in fault.groups],
                from_us=fault.from_us, until_us=fault.until_us,
                one_way=fault.one_way,
            )
        elif fault.kind == "crash":
            cluster.schedule_node_fault(fault.src, FaultPlan(
                node_crash_at=fault.from_us,
                node_restart_at=fault.until_us,
            ))

            def _revive(node_id: int = fault.src) -> None:
                nodes[node_id].append(
                    NmadEngine(cluster.node(node_id), params=params))

            sim.schedule(fault.until_us + 1.0, _revive)


def run_schedule(
    seed: int, spec: ChaosSpec, faults: list[ChaosFault],
) -> ChaosWorld:
    """Execute one fault list under ``spec`` and return the quiesced world.

    Deterministic: the workload (sizes, payload bytes) derives from
    ``Random(seed)`` alone, the driver polls on fixed cadences, and the
    simulation kernel resolves ties FIFO.
    """
    for fault in faults:
        if fault.kind == "crash" and not spec.crashes:
            raise ReproError(
                "schedule contains a crash fault but spec.crashes is off")

    rng = Random(seed)
    sim = Simulator()
    topology: str | FatTree = "mesh"
    if spec.topology == "fat-tree":
        # The builder seed follows the schedule seed so ECMP column choice
        # varies across the sweep, yet each seed replays bit-identically.
        topology = FatTree(k=spec.fat_tree_k, seed=seed)
    cluster = Cluster(sim, n_nodes=spec.n_nodes, rails=[MX_MYRI10G],
                      topology=topology)
    params = _engine_params(spec)
    nodes: dict[int, list[NmadEngine]] = {
        node_id: [NmadEngine(cluster.node(node_id), params=params)]
        for node_id in range(spec.n_nodes)
    }
    _install_faults(sim, cluster, params, nodes, faults)

    tags: dict[int, TagState] = {}
    for tag in range(spec.n_messages):
        size = rng.randint(spec.msg_min_bytes, spec.msg_max_bytes)
        tags[tag] = TagState(tag=tag, payload=rng.randbytes(size))

    given_up: set[int] = set()

    def _post_recv(tag: int) -> None:
        eng = nodes[_RECEIVER][-1]
        if eng.halted:
            return
        try:
            req = eng.irecv(src=_SENDER, tag=tag,
                            nbytes=len(tags[tag].payload))
        except PeerDeadError:
            return  # sender confirmed dead; retry after it revives
        tags[tag].recvs.append((eng, req))

    def _post_send(tag: int) -> None:
        eng = nodes[_SENDER][-1]
        if eng.halted:
            return
        try:
            req = eng.isend(_RECEIVER, tags[tag].payload, tag=tag)
        except PeerDeadError:
            return  # receiver confirmed dead; retry after it revives
        tags[tag].sends.append((eng, req))

    def _recv_stale(st: TagState) -> bool:
        if not st.recvs:
            return True
        eng, req = st.recvs[-1]
        if req.complete and not req.failed:
            return False
        return req.failed or eng.halted

    def _send_stale(st: TagState) -> bool:
        if not st.sends:
            return True
        eng, req = st.sends[-1]
        if req.complete and not req.failed:
            return False
        return req.failed or eng.halted

    def driver() -> Generator[Event, None, None]:
        for tag in sorted(tags):
            _post_recv(tag)
        for tag in sorted(tags):
            _post_send(tag)
            yield sim.timeout(spec.send_gap_us)
        while sim.now < spec.deadline_us:
            if all(tags[t].delivered() or t in given_up for t in tags):
                break
            for tag in sorted(tags):
                st = tags[tag]
                if st.delivered() or tag in given_up:
                    continue
                if _send_stale(st):
                    if len(st.sends) > spec.max_resends:
                        given_up.add(tag)
                        continue
                    _post_send(tag)
                if _recv_stale(st):
                    _post_recv(tag)
            yield sim.timeout(spec.hb_interval_us)

    sim.spawn(driver())
    sim.run(until=spec.deadline_us)
    sim.run(until=spec.deadline_us + spec.settle_us)
    drained = sim.peek() == float("inf")

    return ChaosWorld(
        seed=seed, spec=spec, faults=list(faults), sim=sim, cluster=cluster,
        nodes=nodes, tags=tags, drained=drained,
    )


def run_chaos(seed: int, spec: ChaosSpec | None = None) -> ChaosReport:
    """Generate, run and audit one seeded chaos schedule."""
    from repro.chaos.audit import audit_run

    spec = spec if spec is not None else ChaosSpec()
    faults = generate_schedule(seed, spec)
    world = run_schedule(seed, spec, faults)
    findings = audit_run(world)

    stats: dict[str, dict[str, int]] = {}
    for node_id, incarnations in sorted(world.nodes.items()):
        totals: dict[str, int] = {}
        for eng in incarnations:
            for name, value in dataclasses.asdict(eng.stats).items():
                totals[name] = totals.get(name, 0) + int(value)
        stats[f"node{node_id}"] = totals

    return ChaosReport(
        seed=seed,
        ok=not findings,
        drained=world.drained,
        # Time of last actual activity when the run drained early, the full
        # window otherwise (sim.now always reaches the run() deadline).
        elapsed_us=world.sim.last_event_time if world.drained else world.sim.now,
        n_messages=spec.n_messages,
        delivered=sum(1 for st in world.tags.values() if st.delivered()),
        spec=spec,
        faults=faults,
        findings=findings,
        fault_summary=world.cluster.fault_summary(),
        stats=stats,
        topology=topology_summary(world.cluster),
    )

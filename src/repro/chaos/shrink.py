"""Greedy schedule shrinker: the smallest fault list that still fails.

A failing chaos seed usually injects several faults, most of them
irrelevant to the bug.  The shrinker removes one fault at a time and
re-runs the (deterministic) schedule; a removal sticks whenever the
audit still reports every finding code the original run produced.  The
loop repeats until no single removal preserves the failure — a local
minimum, like delta debugging's ddmin with chunk size 1, which is enough
in practice because schedules are short (``max_faults`` is single-digit).

The result carries a standalone repro snippet: a few lines of Python
that rebuild the minimized fault list verbatim and re-run the audit, so
a CI-reported failure can be replayed in a REPL without the sweep
harness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.chaos.runner import run_schedule
from repro.chaos.schedule import ChaosFault, ChaosSpec, generate_schedule

__all__ = ["ShrinkResult", "shrink_schedule"]


def _fault_source(fault: ChaosFault) -> str:
    """A ``ChaosFault(...)`` constructor call, non-default fields only."""
    parts = [f"kind={fault.kind!r}"]
    defaults = ChaosFault(kind=fault.kind)
    for field in dataclasses.fields(fault):
        if field.name == "kind":
            continue
        value = getattr(fault, field.name)
        if value != getattr(defaults, field.name):
            parts.append(f"{field.name}={value!r}")
    return f"ChaosFault({', '.join(parts)})"


def _spec_source(spec: ChaosSpec) -> str:
    """A ``ChaosSpec(...)`` constructor call, non-default fields only."""
    defaults = ChaosSpec()
    parts = [f"{field.name}={getattr(spec, field.name)!r}"
             for field in dataclasses.fields(spec)
             if getattr(spec, field.name) != getattr(defaults, field.name)]
    return f"ChaosSpec({', '.join(parts)})"


@dataclass
class ShrinkResult:
    """Outcome of minimizing one failing schedule."""

    seed: int
    spec: ChaosSpec
    original: list[ChaosFault]
    minimized: list[ChaosFault]
    codes: tuple[str, ...]
    runs: int

    @property
    def failed(self) -> bool:
        """True when the original schedule produced findings at all."""
        return bool(self.codes)

    def snippet(self) -> str:
        """Standalone Python that replays the minimized failure."""
        lines = [
            "from repro.chaos import ChaosFault, ChaosSpec, audit_run, "
            "run_schedule",
            "",
            f"SEED = {self.seed}",
            f"SPEC = {_spec_source(self.spec)}",
            "FAULTS = [",
        ]
        lines.extend(f"    {_fault_source(fault)},"
                     for fault in self.minimized)
        lines.extend([
            "]",
            "",
            "world = run_schedule(SEED, SPEC, FAULTS)",
            "for finding in audit_run(world):",
            "    print(f\"[{finding.code}] {finding.detail}\")",
        ])
        return "\n".join(lines)


def shrink_schedule(
    seed: int,
    spec: ChaosSpec,
    faults: list[ChaosFault] | None = None,
    max_runs: int = 64,
) -> ShrinkResult:
    """Minimize ``faults`` (default: the seed's generated schedule) while
    preserving every audit finding code of the full run.

    ``max_runs`` bounds the total number of simulations (the first one
    establishes the target codes); each run is the same deterministic
    ``run_schedule``, so shrinking is reproducible too.
    """
    from repro.chaos.audit import audit_run

    original = list(faults) if faults is not None \
        else generate_schedule(seed, spec)

    def finding_codes(candidate: list[ChaosFault]) -> set[str]:
        world = run_schedule(seed, spec, candidate)
        return {finding.code for finding in audit_run(world)}

    target = finding_codes(original)
    runs = 1
    if not target:
        return ShrinkResult(seed=seed, spec=spec, original=original,
                            minimized=[], codes=(), runs=runs)

    current = list(original)
    shrunk = True
    while shrunk and runs < max_runs:
        shrunk = False
        index = 0
        while index < len(current) and runs < max_runs:
            candidate = current[:index] + current[index + 1:]
            runs += 1
            if target <= finding_codes(candidate):
                current = candidate
                shrunk = True
            else:
                index += 1
    return ShrinkResult(seed=seed, spec=spec, original=original,
                        minimized=current, codes=tuple(sorted(target)),
                        runs=runs)

"""Deterministic chaos engine: seeded fault schedules, an invariant
auditor, and a greedy schedule shrinker.

The subsystem has three moving parts, each its own module:

* :mod:`repro.chaos.schedule` — :class:`ChaosSpec` (the knobs) and
  :func:`generate_schedule`, which expands a seed into a concrete list of
  :class:`ChaosFault` records (drops, bursts, corruption, slow links,
  duplicates, reorders, jitter, partitions, crash/restarts);
* :mod:`repro.chaos.runner` — :func:`run_chaos` /
  :func:`run_schedule`, which build a cluster, install the faults, drive
  a seeded message workload through the hardened engine configuration
  (``reliability="ack"``, ``flow_control="credit"``,
  ``sessions="epoch"``) and hand the quiesced world to the auditor;
* :mod:`repro.chaos.audit` — the post-run invariant auditor (byte
  conservation, exactly-once delivery, credit-ledger balance, no stuck
  requests, no live timers after quiesce, stats-ledger consistency);
* :mod:`repro.chaos.shrink` — :func:`shrink_schedule`, a greedy
  minimizer that strips a failing schedule down to the smallest fault
  list that still fails and emits a standalone repro snippet.

Everything is a pure function of ``(seed, spec)``: the same seed always
produces the same schedule, the same event stream and the same audit
verdict (``python -m repro chaos --seed S`` is bit-deterministic).
"""

from repro.chaos.audit import Finding, audit_run
from repro.chaos.runner import ChaosReport, run_chaos, run_schedule
from repro.chaos.schedule import (
    FAULT_KINDS,
    ChaosFault,
    ChaosSpec,
    generate_schedule,
)
from repro.chaos.shrink import ShrinkResult, shrink_schedule

__all__ = [
    "FAULT_KINDS",
    "ChaosFault",
    "ChaosSpec",
    "ChaosReport",
    "Finding",
    "ShrinkResult",
    "audit_run",
    "generate_schedule",
    "run_chaos",
    "run_schedule",
    "shrink_schedule",
]

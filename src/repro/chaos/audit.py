"""Post-run invariant auditor for chaos worlds.

After a chaos schedule has run and settled, the engine must satisfy a set
of invariants *regardless of which faults were injected* — that is the
whole point of the hardening layers.  The auditor walks the quiesced
:class:`~repro.chaos.runner.ChaosWorld` and checks:

* **conservation** — every byte a link accepted is accounted as
  delivered, dropped or duplicated (no frame vanishes untracked);
* **payload-mismatch** — every completed receive landed the exact bytes
  the sender injected for that tag;
* **double-delivery** — in ack mode a tag never completes more receives
  than successful sends (exactly-once per send attempt; resends across
  crash epochs are the one sanctioned at-least-once window, PR 5);
* **undelivered** — without crashes or teardowns, every message must
  arrive: the schedule generator only emits healable faults;
* **unexpected-teardown** — a crash-free schedule keeps partitions below
  the death threshold, so any ``peers_dead`` is a false-positive
  teardown, the bug the suspect-parking path exists to prevent;
* **stuck-send** — no send request is still pending on a live engine
  after the settle window (everything terminal: completed or failed);
* **credit-leak / credit-ledger** — with no teardowns, all consumed
  credit was released back and both sides agree on the release totals;
* **live-timers / not-quiesced** — after settle the event queue is
  drained; a quiesced engine fleet with a busy queue means a timer
  leaked (and vice versa);
* **stats-ledger** — cross-counter consistency: recoveries never exceed
  suspicions, parked frames imply a suspicion, and every corrupt frame a
  link mangled was discarded by exactly one engine (less any mangled
  frames that died inside a downed switch or in a later hop's drop
  window — bounded by the fabric's and the links' own drop counters);
* **rto-thrash** — adaptive-RTO runs (``spec.adaptive``) never
  retransmit beyond their loss evidence plus a small ambiguity budget:
  the measured timeout must not fire at healthy-but-slow frames, which
  is exactly what a static RTO does under an RTT-drift schedule.

This is the **only** module allowed to read other layers' private state
(the flow-control ledgers): it inspects, never mutates.  The repo lint
enforces that boundary (NM305).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.runner import ChaosWorld

__all__ = ["Finding", "audit_run"]


@dataclass(frozen=True)
class Finding:
    """One violated invariant: a stable code plus a human-readable detail."""

    code: str
    detail: str

    def to_jsonable(self) -> dict[str, Any]:
        return {"code": self.code, "detail": self.detail}


def _check_conservation(world: ChaosWorld, out: list[Finding]) -> None:
    if world.cluster.conservation_ok(allow_faults=True):
        return
    for link in world.cluster.links:
        frames_in = link.frames_sent + link.frames_duplicated
        frames_out = link.frames_delivered + link.frames_dropped
        bytes_in = link.bytes_sent + link.bytes_duplicated
        bytes_out = link.bytes_delivered + link.bytes_dropped
        if frames_in != frames_out or bytes_in != bytes_out:
            out.append(Finding(
                "conservation",
                f"link node{link.src.node_id}->node{link.dst.node_id}: "
                f"{frames_in} frames in vs {frames_out} out "
                f"({bytes_in}B vs {bytes_out}B)"))
            return
    out.append(Finding("conservation", "cluster-level byte imbalance"))


def _check_messages(world: ChaosWorld, out: list[Finding]) -> None:
    deaths = world.total("peers_dead")
    for tag, st in sorted(world.tags.items()):
        comps = st.completions()
        for eng, req in comps:
            assert req.data is not None
            landed = req.data.tobytes()
            if landed != st.payload:
                out.append(Finding(
                    "payload-mismatch",
                    f"tag {tag}: node{eng.node_id} landed {len(landed)}B "
                    f"!= injected {len(st.payload)}B (or bytes differ)"))
        ok_sends = sum(1 for _eng, s in st.sends
                       if s.complete and not s.failed)
        if len(comps) > 1 and (not world.crashed
                               or len(comps) > max(ok_sends, 1)):
            out.append(Finding(
                "double-delivery",
                f"tag {tag}: {len(comps)} completed receives for "
                f"{ok_sends} successful send(s)"))
        if not comps and not world.crashed and deaths == 0:
            out.append(Finding(
                "undelivered",
                f"tag {tag}: never delivered after "
                f"{len(st.sends)} send attempt(s) with no teardown"))
        for eng, send in st.sends:
            if not eng.halted and not send.complete:
                out.append(Finding(
                    "stuck-send",
                    f"tag {tag}: send still pending on live "
                    f"node{eng.node_id} after settle"))


def _check_teardowns(world: ChaosWorld, out: list[Finding]) -> None:
    if world.crashed:
        return
    deaths = world.total("peers_dead")
    if deaths:
        out.append(Finding(
            "unexpected-teardown",
            f"{deaths} peer teardown(s) though every injected fault was "
            f"healable (partitions < death threshold)"))


def _check_credit(world: ChaosWorld, out: list[Finding]) -> None:
    if world.crashed or world.total("peers_dead"):
        return  # teardown legitimately abandons in-flight credit
    for node_id, incarnations in sorted(world.nodes.items()):
        fc = incarnations[-1].flowcontrol
        if not fc.active:
            return
        for peer, ledger in sorted(fc._peers.items()):
            out_bytes = ledger.sent_bytes_total - ledger.peer_released_bytes
            out_wraps = ledger.sent_wraps_total - ledger.peer_released_wraps
            if out_bytes or out_wraps:
                out.append(Finding(
                    "credit-leak",
                    f"node{node_id}->node{peer}: {out_bytes}B / "
                    f"{out_wraps} wrap(s) of credit never released"))
            peer_view = world.nodes[peer][-1].flowcontrol._peers.get(node_id)
            released = peer_view.released_bytes_total if peer_view else 0
            if ledger.peer_released_bytes > released:
                out.append(Finding(
                    "credit-ledger",
                    f"node{node_id} saw {ledger.peer_released_bytes}B "
                    f"released by node{peer}, whose ledger only shows "
                    f"{released}B"))


def _check_drain(world: ChaosWorld, out: list[Finding]) -> None:
    if world.crashed or world.drained:
        return  # an abandoned tag may legitimately keep a monitor armed
    live = [eng for eng in world.engines() if not eng.halted]
    busy = [f"node{eng.node_id}" for eng in live if not eng.quiesced()]
    if busy:
        out.append(Finding(
            "not-quiesced",
            "engines still hold deferred work after settle: "
            + ", ".join(busy)))
    else:
        out.append(Finding(
            "live-timers",
            "event queue not drained after settle though every live "
            "engine reports quiesced — a timer leaked"))


def _check_stats_ledger(world: ChaosWorld, out: list[Finding]) -> None:
    for eng in world.engines():
        stats = eng.stats
        if stats.peers_recovered > stats.peers_suspected:
            out.append(Finding(
                "stats-ledger",
                f"node{eng.node_id}: peers_recovered "
                f"({stats.peers_recovered}) exceeds peers_suspected "
                f"({stats.peers_suspected})"))
        if stats.frames_parked and not stats.peers_suspected:
            out.append(Finding(
                "stats-ledger",
                f"node{eng.node_id}: {stats.frames_parked} frame(s) "
                "parked without any suspicion"))
    if not world.crashed:
        mangled = sum(link.frames_corrupted for link in world.cluster.links)
        discarded = world.total("corrupt_discards")
        # A corrupt frame normally reaches an engine and is discarded by
        # its checksum — exactly once.  On a switched fabric a mangled
        # frame (or its retransmission's mangled copy) can instead die at
        # a downed switch, and on *any* topology a later hop's drop
        # window (a rack partition, say) can eat the flagged copy — the
        # links' own corrupt-drop counter plus the fabric's drop counter
        # bound the permissible shortfall; an *excess* of discards is
        # always a bug.
        switch_drops = sum(sw.frames_dropped
                           for sw in world.cluster.switches)
        wire_eaten = sum(link.frames_corrupt_dropped
                         for link in world.cluster.links)
        if (discarded > mangled
                or mangled - discarded > switch_drops + wire_eaten):
            out.append(Finding(
                "stats-ledger",
                f"links corrupted {mangled} frame(s) but engines "
                f"discarded {discarded} (switches dropped "
                f"{switch_drops}, wire ate {wire_eaten} flagged)"))


def _check_adaptive(world: ChaosWorld, out: list[Finding]) -> None:
    """Adaptive-RTO runs must not retransmit beyond their loss evidence.

    The point of measuring the RTT is to stop firing the retry clock at
    healthy-but-queued frames, so under ``spec.adaptive`` every
    retransmit has to be attributable to an actual wire event — a link
    or switch drop (partitions included) or a corrupt discard — plus a
    small ambiguity budget (a retransmission racing its own late ack is
    legitimate).  A static-RTO run under the same drift schedule blows
    through this bound by construction; an adaptive run that does too is
    thrashing, the regression this invariant pins.
    """
    if not world.spec.adaptive:
        return
    wire_losses = sum(link.frames_dropped for link in world.cluster.links)
    switch_drops = sum(sw.frames_dropped for sw in world.cluster.switches)
    corrupts = world.total("corrupt_discards")
    budget = max(8, world.spec.n_messages)
    retrans = world.total("retransmits")
    if retrans > wire_losses + switch_drops + corrupts + budget:
        out.append(Finding(
            "rto-thrash",
            f"adaptive run retransmitted {retrans} frame(s) against "
            f"{wire_losses} wire drop(s), {switch_drops} switch drop(s), "
            f"{corrupts} corrupt discard(s) and a budget of {budget} — "
            "the measured RTO is firing at healthy frames"))


def audit_run(world: ChaosWorld) -> list[Finding]:
    """Audit a quiesced chaos world; an empty list means every invariant
    held.  Pure inspection — the world is not mutated."""
    findings: list[Finding] = []
    _check_conservation(world, findings)
    _check_messages(world, findings)
    _check_teardowns(world, findings)
    _check_credit(world, findings)
    _check_drain(world, findings)
    _check_stats_ledger(world, findings)
    _check_adaptive(world, findings)
    return findings

"""Collective operations over the point-to-point subset.

The paper's MAD-MPI is deliberately point-to-point only; §7 lists porting a
full-featured MPI as future work.  These collectives are that next step,
implemented the way early MPICH built them: purely on top of
``isend``/``irecv``, so they run unchanged over MAD-MPI *and* over the
baseline models — and over NewMadeleine they automatically benefit from the
engine's aggregation (several collective messages to the same peer coalesce
in the window).

All functions are simulator-process generators: every rank runs
``yield from bcast(mpi, ...)`` symmetrically, like an SPMD program.
Algorithms: binomial trees for bcast/reduce (log P rounds), linear
gather/scatter rooted exchanges, reduce+bcast allreduce, dissemination
barrier, and pairwise alltoall.

Payloads are byte strings; reductions take ``op: (bytes, bytes) -> bytes``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import MpiError
from repro.madmpi.comm import Communicator

__all__ = ["bcast", "gather", "scatter", "reduce", "allreduce", "barrier",
           "alltoall"]

#: Tag space reserved for collective plumbing (one tag per primitive so
#: concurrent collectives on different communicators cannot interfere with
#: application point-to-point traffic on the same communicator).
_TAG_BCAST = 1 << 20
_TAG_GATHER = (1 << 20) + 1
_TAG_SCATTER = (1 << 20) + 2
_TAG_REDUCE = (1 << 20) + 3
_TAG_BARRIER = (1 << 20) + 4
_TAG_ALLTOALL = (1 << 20) + 5


def _comm_of(mpi, comm: Communicator | None) -> Communicator:
    return comm if comm is not None else mpi.world


def _rank(mpi, comm: Communicator) -> int:
    return comm.rank_of(mpi.engine.node_id) if hasattr(mpi, "engine") \
        else comm.rank_of(mpi.node.node_id)


def bcast(mpi, data: bytes | None, root: int = 0,
          comm: Communicator | None = None):
    """Binomial-tree broadcast; returns the broadcast bytes on every rank.

    Non-root ranks pass ``data=None``.
    """
    comm = _comm_of(mpi, comm)
    size = comm.size
    rank = _rank(mpi, comm)
    if not 0 <= root < size:
        raise MpiError(f"bcast root {root} out of range")
    if rank == root and data is None:
        raise MpiError("bcast root must provide data")
    # Rotate so the root is virtual rank 0.
    vrank = (rank - root) % size
    if vrank != 0:
        # Receive from the parent: clear the lowest set bit of vrank.
        parent_v = vrank & (vrank - 1)
        parent = (parent_v + root) % size
        req = yield from mpi.recv(source=parent, tag=_TAG_BCAST, comm=comm)
        data = req.data.tobytes()
    # Forward to children: set each bit above the lowest set bit while the
    # child index stays inside the communicator.
    mask = 1
    while mask < size:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child_v = vrank | mask
            if child_v < size:
                yield from mpi.send(data, dest=(child_v + root) % size,
                                    tag=_TAG_BCAST, comm=comm)
        mask <<= 1
    return data


def gather(mpi, data: bytes, root: int = 0,
           comm: Communicator | None = None):
    """Linear gather; the root returns the list of per-rank payloads."""
    comm = _comm_of(mpi, comm)
    rank = _rank(mpi, comm)
    if not 0 <= root < comm.size:
        raise MpiError(f"gather root {root} out of range")
    if rank != root:
        yield from mpi.send(data, dest=root, tag=_TAG_GATHER, comm=comm)
        return None
    out: list[bytes | None] = [None] * comm.size
    out[root] = data
    reqs = [(r, mpi.irecv(source=r, tag=_TAG_GATHER, comm=comm))
            for r in range(comm.size) if r != root]
    for r, req in reqs:
        yield req.done
        out[r] = req.data.tobytes()
    return out


def scatter(mpi, chunks: Sequence[bytes] | None, root: int = 0,
            comm: Communicator | None = None):
    """Linear scatter; every rank returns its chunk."""
    comm = _comm_of(mpi, comm)
    rank = _rank(mpi, comm)
    if not 0 <= root < comm.size:
        raise MpiError(f"scatter root {root} out of range")
    if rank == root:
        if chunks is None or len(chunks) != comm.size:
            raise MpiError(
                f"scatter root needs exactly {comm.size} chunks"
            )
        for r in range(comm.size):
            if r != root:
                yield from mpi.send(chunks[r], dest=r, tag=_TAG_SCATTER,
                                    comm=comm)
        return chunks[root]
    req = yield from mpi.recv(source=root, tag=_TAG_SCATTER, comm=comm)
    return req.data.tobytes()


def reduce(mpi, data: bytes, op: Callable[[bytes, bytes], bytes],
           root: int = 0, comm: Communicator | None = None):
    """Binomial-tree reduction; the root returns the combined value.

    ``op`` must be associative; operands combine as
    ``op(lower_rank_value, higher_rank_value)``.
    """
    comm = _comm_of(mpi, comm)
    size = comm.size
    rank = _rank(mpi, comm)
    if not 0 <= root < size:
        raise MpiError(f"reduce root {root} out of range")
    vrank = (rank - root) % size
    acc = data
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from mpi.send(acc, dest=parent, tag=_TAG_REDUCE, comm=comm)
            return None
        child_v = vrank | mask
        if child_v < size:
            req = yield from mpi.recv(source=(child_v + root) % size,
                                      tag=_TAG_REDUCE, comm=comm)
            acc = op(acc, req.data.tobytes())
        mask <<= 1
    return acc


def allreduce(mpi, data: bytes, op: Callable[[bytes, bytes], bytes],
              comm: Communicator | None = None):
    """Reduce to rank 0 then broadcast (every rank returns the result)."""
    comm = _comm_of(mpi, comm)
    reduced = yield from reduce(mpi, data, op, root=0, comm=comm)
    result = yield from bcast(mpi, reduced, root=0, comm=comm)
    return result


def barrier(mpi, comm: Communicator | None = None):
    """Dissemination barrier: ceil(log2 P) rounds of paired messages."""
    comm = _comm_of(mpi, comm)
    size = comm.size
    rank = _rank(mpi, comm)
    step = 1
    round_no = 0
    while step < size:
        to = (rank + step) % size
        frm = (rank - step) % size
        # Distinct tag per round so rounds cannot be confused.
        tag = _TAG_BARRIER + 16 * round_no
        req = mpi.irecv(source=frm, tag=tag, comm=comm)
        yield from mpi.send(b"", dest=to, tag=tag, comm=comm)
        yield req.done
        step <<= 1
        round_no += 1
    return None


def alltoall(mpi, chunks: Sequence[bytes],
             comm: Communicator | None = None):
    """Pairwise exchange; rank i returns [chunk_from_0, ..., chunk_from_P-1].

    ``chunks[j]`` is the payload this rank sends to rank j (``chunks[rank]``
    is kept locally).
    """
    comm = _comm_of(mpi, comm)
    size = comm.size
    rank = _rank(mpi, comm)
    if len(chunks) != size:
        raise MpiError(f"alltoall needs exactly {size} chunks")
    out: list[bytes | None] = [None] * size
    out[rank] = chunks[rank]
    recvs = [(r, mpi.irecv(source=r, tag=_TAG_ALLTOALL, comm=comm))
             for r in range(size) if r != rank]
    sends = []
    for offset in range(1, size):
        dest = (rank + offset) % size
        sends.append(mpi.isend(chunks[dest], dest=dest, tag=_TAG_ALLTOALL,
                               comm=comm))
    for r, req in recvs:
        yield req.done
        out[r] = req.data.tobytes()
    for s in sends:
        yield s.done
    return out

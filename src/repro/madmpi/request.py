"""MPI request handles (backend-neutral).

Both MAD-MPI and the baseline models hand these to applications, so the
ping-pong harness can drive any backend through one interface.  A request
wraps a kernel event (completion) plus status fields; for derived-datatype
receives it additionally tracks the per-block sub-requests and can scatter
the result into a user buffer.
"""

from __future__ import annotations


from repro.core.data import SegmentData, VirtualData
from repro.errors import MpiError
from repro.madmpi.datatype import Datatype
from repro.sim import Event

__all__ = ["MpiRequest"]


class MpiRequest:
    """Handle on a nonblocking MPI operation."""

    def __init__(
        self,
        done: Event,
        kind: str,
        datatype: Datatype | None = None,
    ) -> None:
        self.done = done
        self.kind = kind  # "send" | "recv"
        self.datatype = datatype
        # Status fields, populated at completion (receives only).
        self.source: int | None = None
        self.tag: int | None = None
        self.count: int | None = None
        self.data: SegmentData | None = None
        self.block_data: list[SegmentData] = []

    @property
    def complete(self) -> bool:
        """Nonblocking completion test (MPI_Test semantics, no progress)."""
        return self.done.triggered

    @property
    def failed(self) -> bool:
        """True when the operation ended in an error instead of completing.

        With the engine's reliability layer active, a send whose retransmit
        budget is exhausted fails with
        :class:`~repro.errors.TransportError`; this surfaces it through the
        MPI-level wait/test interface without raising.
        """
        return self.done.triggered and not self.done.ok

    @property
    def error(self):
        """The failure exception, or ``None`` (nonblocking inspection)."""
        return self.done.exception if self.failed else None

    def set_status(self, source: int, tag: int, count: int) -> None:
        self.source = source
        self.tag = tag
        self.count = count

    def scatter_into(self, buffer: bytearray | memoryview) -> None:
        """Scatter a completed typed receive into ``buffer``.

        Blocks land at their datatype displacements; untyped gap bytes are
        left untouched (MPI semantics).
        """
        if not self.complete:
            raise MpiError("scatter_into() before completion")
        if self.datatype is None:
            raise MpiError("scatter_into() on an untyped request")
        view = memoryview(buffer)
        flat = self.datatype.flatten()
        if len(flat) != len(self.block_data):
            raise MpiError(
                f"received {len(self.block_data)} blocks for a datatype "
                f"with {len(flat)} blocks"
            )
        for (disp, length), data in zip(flat, self.block_data, strict=True):
            if data.nbytes != length:
                raise MpiError(
                    f"block at displacement {disp} is {data.nbytes}B, "
                    f"expected {length}B"
                )
            if isinstance(data, VirtualData):
                continue  # benchmark payloads carry no content
            view[disp:disp + length] = data.tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return f"<MpiRequest {self.kind} {state}>"

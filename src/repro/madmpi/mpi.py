"""MAD-MPI: the proof-of-concept MPI subset over NewMadeleine.

Paper §3.4: "This implementation called MAD-MPI is based on the
point-to-point nonblocking posting (isend, irecv) and completion (wait,
test) operations of MPI, these four operations being directly mapped to the
equivalent operations of NewMadeleine."

The derived-datatype path is the paper's §5.3 algorithm verbatim: "MAD-MPI
uses an algorithm which generates an individual communication request for
each block, allowing the underlying communication layer to perform any
appropriate optimization" — small blocks then aggregate (with each other
and with the rendezvous requests of large blocks) while large blocks travel
zero-copy, entirely as a consequence of the engine's strategy.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.data import SegmentData, VirtualData, as_data
from repro.core.engine import NmadEngine
from repro.core.requests import ANY
from repro.errors import CommRevokedError, MpiError
from repro.madmpi.comm import Communicator
from repro.madmpi.datatype import Datatype
from repro.madmpi.request import MpiRequest

__all__ = ["MadMpi", "ANY"]


BufferLike = SegmentData | bytes | bytearray | memoryview | int


class MadMpi:
    """One rank's MPI endpoint, backed by a :class:`NmadEngine`."""

    #: Backend identifier used in benchmark reports.
    backend_name = "MadMPI"

    def __init__(self, engine: NmadEngine, world: Communicator) -> None:
        self.engine = engine
        self.world = world
        self.rank = world.rank_of(engine.node_id)

    @property
    def sim(self):
        return self.engine.sim

    def _live_comm(self, comm: Communicator | None) -> Communicator:
        """Resolve the default communicator and fence revoked ones.

        The ULFM-style fail-fast surface: after :meth:`Communicator.revoke`
        every new operation raises instead of blocking on a dead peer.
        """
        comm = comm if comm is not None else self.world
        if comm.revoked:
            raise CommRevokedError(
                f"rank {self.rank}: communicator {comm.id} was revoked "
                "after a peer failure; shrink() it to continue"
            )
        return comm

    # -- point-to-point ---------------------------------------------------
    def isend(
        self,
        data: BufferLike,
        dest: int,
        tag: int = 0,
        comm: Communicator | None = None,
        datatype: Datatype | None = None,
        priority: int = 0,
        deadline_us: float | None = None,
    ) -> MpiRequest:
        """Nonblocking send to ``dest`` (a rank in ``comm``).

        Overload protection (:class:`~repro.core.engine.EngineParams`)
        surfaces here: with a bounded window and ``window_policy="block"``
        an over-cap send is *deferred* — the request is returned as usual
        and simply completes later (backpressure shows up as ``wait``
        latency); with ``window_policy="fail"`` this call raises
        :class:`~repro.errors.WindowFullError` (an :class:`MpiError`)
        synchronously, like an MPI implementation out of request slots.

        ``deadline_us`` (relative virtual time) bounds how long the send
        may stay pending: if it expires while the data has not left the
        node the request fails with
        :class:`~repro.errors.DeadlineExceededError` through
        ``wait``/``test`` (a datatype send fails as a unit once any block
        is retracted); once the transfer is underway the deadline lapses,
        like ``MPI_Cancel`` on a matched send.
        """
        comm = self._live_comm(comm)
        node = comm.node_of(dest)
        if datatype is None:
            wrap_req = self.engine.isend(node, data, tag=tag, flow=comm.id,
                                         priority=priority,
                                         deadline_us=deadline_us)
            req = MpiRequest(wrap_req.done, kind="send")
            return req
        # One engine request per datatype block (paper §5.3).
        blocks = datatype.flatten()
        if not blocks:
            raise MpiError("cannot send an empty datatype")
        sub = [
            self.engine.isend(node, self._block_data(data, disp, length),
                              tag=tag, flow=comm.id, priority=priority,
                              deadline_us=deadline_us)
            for disp, length in blocks
        ]
        done = self.sim.all_of([s.done for s in sub])
        return MpiRequest(done, kind="send", datatype=datatype)

    def irecv(
        self,
        source: int = ANY,
        tag: int = ANY,
        comm: Communicator | None = None,
        nbytes: int | None = None,
        datatype: Datatype | None = None,
        deadline_us: float | None = None,
    ) -> MpiRequest:
        """Nonblocking receive from ``source`` (a rank in ``comm`` or ANY).

        ``deadline_us`` (relative virtual time) bounds how long the
        receive may stay unmatched: on expiry the posted receive is
        withdrawn and the request fails with
        :class:`~repro.errors.DeadlineExceededError` through
        ``wait``/``test``; a receive that matched in time completes
        normally even if the data copy finishes after the deadline.
        """
        comm = self._live_comm(comm)
        src_node = ANY if source == ANY else comm.node_of(source)
        if datatype is None:
            sub = self.engine.irecv(src=src_node, tag=tag, flow=comm.id,
                                    nbytes=nbytes, deadline_us=deadline_us)
            req = MpiRequest(self.sim.event(), kind="recv")

            def _finish(evt):
                if not evt.ok:
                    evt.defuse()
                    exc = evt.exception
                    assert exc is not None
                    req.done.fail(exc)
                    return
                assert sub.actual_src is not None
                req.data = sub.data
                req.set_status(source=comm.rank_of(sub.actual_src),
                               tag=sub.actual_tag, count=sub.actual_len)
                req.done.succeed(req)

            sub.done.add_callback(_finish)
            return req
        blocks = datatype.flatten()
        if not blocks:
            raise MpiError("cannot receive into an empty datatype")
        subs = [
            self.engine.irecv(src=src_node, tag=tag, flow=comm.id,
                              nbytes=length, deadline_us=deadline_us)
            for _, length in blocks
        ]
        done = self.sim.event()
        req = MpiRequest(done, kind="recv", datatype=datatype)
        gathered = self.sim.all_of([s.done for s in subs])

        def _finish_typed(evt):
            if not evt.ok:
                evt.defuse()
                exc = evt.exception
                assert exc is not None
                done.fail(exc)
                return
            req.block_data = [s.data for s in subs]
            first = subs[0]
            assert first.actual_src is not None
            req.set_status(source=comm.rank_of(first.actual_src),
                           tag=first.actual_tag,
                           count=sum(s.actual_len for s in subs))
            done.succeed(req)

        gathered.add_callback(_finish_typed)
        return req

    # -- probing -----------------------------------------------------------------
    def iprobe(self, source: int = ANY, tag: int = ANY,
               comm: Communicator | None = None):
        """Nonblocking probe: (source_rank, tag, nbytes) or None.

        Like MPI_Iprobe, never consumes the message.
        """
        comm = self._live_comm(comm)
        src_node = ANY if source == ANY else comm.node_of(source)
        inc = self.engine.matcher.peek(src_node, comm.id, tag)
        if inc is None:
            return None
        return comm.rank_of(inc.src), inc.tag, inc.nbytes

    def probe(self, source: int = ANY, tag: int = ANY,
              comm: Communicator | None = None):
        """Blocking probe (process style): waits for a matching message."""
        comm = self._live_comm(comm)
        src_node = ANY if source == ANY else comm.node_of(source)
        event = self.sim.event(name=f"probe:{source}/{tag}")
        self.engine.matcher.watch(src_node, comm.id, tag, event)
        inc = yield event
        return comm.rank_of(inc.src), inc.tag, inc.nbytes

    # -- combined send/receive ------------------------------------------------------
    def sendrecv(self, send_data: BufferLike, dest: int, source: int = ANY,
                 sendtag: int = 0, recvtag: int = ANY,
                 comm: Communicator | None = None,
                 nbytes: int | None = None):
        """MPI_Sendrecv: simultaneous, deadlock-free exchange."""
        rreq = self.irecv(source=source, tag=recvtag, comm=comm,
                          nbytes=nbytes)
        sreq = self.isend(send_data, dest, tag=sendtag, comm=comm)
        yield self.sim.all_of([rreq.done, sreq.done])
        return rreq

    # -- completion --------------------------------------------------------------
    def wait_any(self, requests: Sequence[MpiRequest]):
        """Wait for the first completed request; returns (index, request)."""
        if not requests:
            raise MpiError("wait_any on an empty request list")
        yield self.sim.any_of([r.done for r in requests])
        for idx, req in enumerate(requests):
            if req.complete:
                return idx, req
        raise MpiError("wait_any woke without a complete request")

    def wait(self, request: MpiRequest):
        """Blocking wait (process style: ``yield from mpi.wait(req)``)."""
        yield request.done
        return request

    def wait_all(self, requests: Sequence[MpiRequest]):
        """Wait for every request in ``requests``."""
        yield self.sim.all_of([r.done for r in requests])
        return list(requests)

    @staticmethod
    def test(request: MpiRequest) -> bool:
        """Nonblocking completion check (MPI_Test)."""
        return request.complete

    # -- blocking conveniences -----------------------------------------------------
    def send(self, data: BufferLike, dest: int, tag: int = 0,
             comm: Communicator | None = None,
             datatype: Datatype | None = None):
        req = self.isend(data, dest, tag=tag, comm=comm, datatype=datatype)
        yield req.done
        return req

    def recv(self, source: int = ANY, tag: int = ANY,
             comm: Communicator | None = None,
             nbytes: int | None = None,
             datatype: Datatype | None = None):
        req = self.irecv(source=source, tag=tag, comm=comm, nbytes=nbytes,
                         datatype=datatype)
        yield req.done
        return req

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _block_data(data: BufferLike, disp: int, length: int) -> SegmentData:
        """Slice one datatype block out of the user buffer."""
        seg = as_data(data)
        if isinstance(seg, VirtualData):
            return VirtualData(length)
        if disp + length > seg.nbytes:
            raise MpiError(
                f"datatype block [{disp}, {disp + length}) exceeds the "
                f"{seg.nbytes}B buffer"
            )
        return seg.slice(disp, length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadMpi rank={self.rank} node={self.engine.node_id}>"

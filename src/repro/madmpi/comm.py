"""Communicators: isolated matching scopes over a set of ranks.

The §5.2 experiment deliberately issues every segment of its multi-segment
ping on a *different* communicator "to demonstrate that the scope of
MAD-MPI optimizations is really global" — so communicators must genuinely
isolate matching (they map to engine flows) while the engine is free to
coalesce across them.

With ``sessions="epoch"`` the communicator also carries the ULFM-style
fault-tolerance surface: a rank that learned of a peer's death
(:class:`~repro.errors.PeerDeadError` out of wait/test) calls
:meth:`Communicator.revoke` to fence further traffic on the communicator,
then :meth:`Communicator.shrink` to build a fresh one over the survivors.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.errors import MpiError

__all__ = ["Communicator"]

_comm_ids = itertools.count(0)


class Communicator:
    """A group of ranks with a private matching scope (an engine flow id)."""

    def __init__(self, ranks_to_nodes: Sequence[int], comm_id: int | None = None):
        if not ranks_to_nodes:
            raise MpiError("a communicator needs at least one rank")
        if len(set(ranks_to_nodes)) != len(ranks_to_nodes):
            raise MpiError(f"duplicate nodes in communicator: {ranks_to_nodes}")
        self.ranks_to_nodes = tuple(ranks_to_nodes)
        self.id = next(_comm_ids) if comm_id is None else comm_id
        #: Set by :meth:`revoke`; a revoked communicator refuses new
        #: operations with :class:`~repro.errors.CommRevokedError`.
        self.revoked = False

    @property
    def size(self) -> int:
        return len(self.ranks_to_nodes)

    def node_of(self, rank: int) -> int:
        """Cluster node id of ``rank`` (with a helpful error)."""
        if not 0 <= rank < self.size:
            raise MpiError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )
        return self.ranks_to_nodes[rank]

    def rank_of(self, node: int) -> int:
        """Rank of a cluster node in this communicator."""
        try:
            return self.ranks_to_nodes.index(node)
        except ValueError:
            raise MpiError(
                f"node {node} is not part of this communicator"
            ) from None

    def dup(self) -> Communicator:
        """MPI_Comm_dup: same group, fresh isolated matching scope."""
        return Communicator(self.ranks_to_nodes)

    # -- ULFM-style fault tolerance ----------------------------------------
    def revoke(self) -> None:
        """MPI_Comm_revoke: mark this communicator dead (idempotent).

        After a failure is detected, revocation fences the communicator:
        every subsequent isend/irecv/collective on it raises
        :class:`~repro.errors.CommRevokedError` immediately, so no rank
        blocks on a peer that will never answer.  The model is local (each
        rank revokes its own handle); in-flight requests are unaffected —
        they already carry their own failure path.
        """
        self.revoked = True

    def shrink(self, dead_nodes: Iterable[int]) -> Communicator:
        """MPI_Comm_shrink: a fresh communicator over the surviving nodes.

        ``dead_nodes`` are cluster node ids (e.g. from
        ``engine.sessions.dead_peers()``); ranks are renumbered densely in
        the survivors' original order.  The new communicator has a fresh
        matching scope, so no old-epoch traffic can match into it.
        """
        dead = set(dead_nodes)
        survivors = [n for n in self.ranks_to_nodes if n not in dead]
        if not survivors:
            raise MpiError(
                f"shrink of {self!r} leaves no survivors "
                f"(dead nodes: {sorted(dead)})"
            )
        return Communicator(survivors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator id={self.id} ranks={self.ranks_to_nodes}>"

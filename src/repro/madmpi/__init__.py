"""MAD-MPI: the paper's proof-of-concept MPI subset over NewMadeleine."""

from repro.madmpi.collectives import (
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.madmpi.comm import Communicator
from repro.madmpi.datatype import (
    BYTE,
    Contiguous,
    Datatype,
    Hindexed,
    Hvector,
    Indexed,
    Struct,
    Vector,
    indexed_small_large,
)
from repro.madmpi.mpi import ANY, MadMpi
from repro.madmpi.request import MpiRequest

__all__ = [
    "ANY",
    "BYTE",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scatter",
    "Communicator",
    "Contiguous",
    "Datatype",
    "Hindexed",
    "Hvector",
    "Indexed",
    "MadMpi",
    "MpiRequest",
    "Struct",
    "Vector",
    "indexed_small_large",
]

"""MPI derived datatypes.

Paper §3.4: "MAD-MPI also implements some optimizations mechanisms for
derived datatypes.  MPI derived datatypes deal with noncontiguous memory
locations."  The §5.3 experiment exchanges an *indexed* datatype describing
"a sequence of two data blocks, one small block (64 bytes) followed by a
large data block (256 KBytes)".

A datatype here is a byte-level *typemap*: a recipe producing the list of
``(displacement, length)`` blocks a buffer of that type occupies.  The full
MPI constructor algebra is implemented (contiguous, vector, hvector,
indexed, hindexed, struct, and arbitrary nesting); :meth:`Datatype.flatten`
normalizes to displacement order and merges adjacent blocks — the same
canonicalization real MPI dataloop code performs before choosing a pack
path.

Displacements and lengths are in bytes (the base unit is :data:`BYTE`);
typed elements are expressed by contiguous runs, which loses no generality
for the communication layer (it only ever sees bytes).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DatatypeError

__all__ = [
    "Datatype",
    "BYTE",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Hindexed",
    "Struct",
    "indexed_small_large",
]


class Datatype:
    """Base class: a typemap with a size (bytes of data) and an extent."""

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        """Raw ``(displacement, length)`` list, unnormalized."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of data bytes (sum of block lengths)."""
        return sum(length for _, length in self.blocks())

    @property
    def extent(self) -> int:
        """Span from the start of the buffer to the end of the last byte."""
        blks = self.blocks()
        if not blks:
            return 0
        return max(d + l for d, l in blks)

    def flatten(self, offset: int = 0) -> list[tuple[int, int]]:
        """Normalized blocks: sorted by displacement, adjacent runs merged.

        Raises :class:`DatatypeError` on overlapping blocks — an overlap
        means the same byte would be sent twice, which is a construction
        error.
        """
        blks = sorted(b for b in self.blocks(offset) if b[1] > 0)
        merged: list[tuple[int, int]] = []
        for disp, length in blks:
            if merged:
                last_disp, last_len = merged[-1]
                if disp < last_disp + last_len:
                    raise DatatypeError(
                        f"overlapping blocks at displacement {disp} "
                        f"(previous block ends at {last_disp + last_len})"
                    )
                if disp == last_disp + last_len:
                    merged[-1] = (last_disp, last_len + length)
                    continue
            merged.append((disp, length))
        return merged

    @property
    def is_contiguous(self) -> bool:
        """True when the flattened typemap is a single run from offset 0."""
        flat = self.flatten()
        return len(flat) == 0 or (len(flat) == 1 and flat[0][0] == 0)

    # -- pack / unpack on real buffers (used by tests and baselines) --------
    def pack(self, buffer: bytes | bytearray | memoryview) -> bytes:
        """Gather the typed bytes of ``buffer`` into a contiguous string."""
        view = memoryview(buffer)
        if view.nbytes < self.extent:
            raise DatatypeError(
                f"buffer of {view.nbytes}B smaller than extent {self.extent}B"
            )
        return b"".join(
            view[disp:disp + length].tobytes() for disp, length in self.flatten()
        )

    def unpack(self, data: bytes, buffer: bytearray | memoryview) -> None:
        """Scatter a contiguous string back into a typed buffer."""
        view = memoryview(buffer)
        if view.nbytes < self.extent:
            raise DatatypeError(
                f"buffer of {view.nbytes}B smaller than extent {self.extent}B"
            )
        if len(data) != self.size:
            raise DatatypeError(
                f"packed data is {len(data)}B, datatype size is {self.size}B"
            )
        cursor = 0
        for disp, length in self.flatten():
            view[disp:disp + length] = data[cursor:cursor + length]
            cursor += length

    # -- constructor algebra -------------------------------------------------
    def __mul__(self, count: int) -> Contiguous:
        """``dtype * n`` is ``Contiguous(n, dtype)``."""
        return Contiguous(count, self)

    __rmul__ = __mul__


class _Byte(Datatype):
    """The base unit: one byte at displacement zero."""

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        return [(offset, 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BYTE"


BYTE = _Byte()


def _check_count(count: int, what: str) -> None:
    if count < 0:
        raise DatatypeError(f"negative {what}: {count}")


class Contiguous(Datatype):
    """``count`` consecutive copies of ``base`` (MPI_Type_contiguous)."""

    def __init__(self, count: int, base: Datatype = BYTE) -> None:
        _check_count(count, "count")
        self.count = count
        self.base = base

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        if self.count == 0:
            return []
        base_blocks = self.base.blocks(0)
        if not base_blocks:
            return []
        stride = max(d + l for d, l in base_blocks)
        # Fast path: a gap-free base tiles into a single run.  Without this
        # a 256 KB byte block would materialize 262144 one-byte tuples.
        if len(base_blocks) == 1 and base_blocks[0] == (0, stride):
            return [(offset, self.count * stride)]
        out: list[tuple[int, int]] = []
        for i in range(self.count):
            start = offset + i * stride
            out.extend((start + d, l) for d, l in base_blocks)
        return out


class Hvector(Datatype):
    """``count`` blocks of ``blocklen`` bases, byte stride (MPI_Type_create_hvector)."""

    def __init__(self, count: int, blocklen: int, stride_bytes: int,
                 base: Datatype = BYTE) -> None:
        _check_count(count, "count")
        _check_count(blocklen, "blocklen")
        self.count = count
        self.blocklen = blocklen
        self.stride_bytes = stride_bytes
        self.base = base

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        block = Contiguous(self.blocklen, self.base)
        out: list[tuple[int, int]] = []
        for i in range(self.count):
            out.extend(block.blocks(offset + i * self.stride_bytes))
        return out


class Vector(Hvector):
    """Like :class:`Hvector` but the stride counts base extents (MPI_Type_vector)."""

    def __init__(self, count: int, blocklen: int, stride: int,
                 base: Datatype = BYTE) -> None:
        super().__init__(count, blocklen, stride * base.extent, base)


class Hindexed(Datatype):
    """Blocks of varying length at byte displacements (MPI_Type_create_hindexed)."""

    def __init__(self, blocklens: Sequence[int], displs_bytes: Sequence[int],
                 base: Datatype = BYTE) -> None:
        if len(blocklens) != len(displs_bytes):
            raise DatatypeError(
                f"{len(blocklens)} block lengths vs {len(displs_bytes)} "
                "displacements"
            )
        for b in blocklens:
            _check_count(b, "blocklen")
        self.blocklens = list(blocklens)
        self.displs_bytes = list(displs_bytes)
        self.base = base

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for blocklen, disp in zip(self.blocklens, self.displs_bytes,
                                  strict=True):
            out.extend(Contiguous(blocklen, self.base).blocks(offset + disp))
        return out


class Indexed(Hindexed):
    """Like :class:`Hindexed` with displacements in base extents (MPI_Type_indexed)."""

    def __init__(self, blocklens: Sequence[int], displs: Sequence[int],
                 base: Datatype = BYTE) -> None:
        super().__init__(blocklens, [d * base.extent for d in displs], base)


class Struct(Datatype):
    """Heterogeneous blocks: per-block base types (MPI_Type_create_struct)."""

    def __init__(self, blocklens: Sequence[int], displs_bytes: Sequence[int],
                 types: Sequence[Datatype]) -> None:
        if not (len(blocklens) == len(displs_bytes) == len(types)):
            raise DatatypeError("blocklens, displacements and types must align")
        for b in blocklens:
            _check_count(b, "blocklen")
        self.blocklens = list(blocklens)
        self.displs_bytes = list(displs_bytes)
        self.types = list(types)

    def blocks(self, offset: int = 0) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for blocklen, disp, base in zip(self.blocklens, self.displs_bytes,
                                        self.types, strict=True):
            out.extend(Contiguous(blocklen, base).blocks(offset + disp))
        return out


def indexed_small_large(
    repeats: int,
    small: int = 64,
    large: int = 256 * 1024,
    gap: int = 64,
) -> Hindexed:
    """The paper's §5.3 indexed datatype, parameterized.

    Each repeat is "one small block (64 bytes) followed by a large data
    block (256 KBytes)", with a ``gap`` of untyped bytes between blocks so
    the layout is genuinely non-contiguous (otherwise flatten() would merge
    the pairs and there would be nothing to optimize).
    """
    if repeats < 1:
        raise DatatypeError(f"need at least one repeat, got {repeats}")
    blocklens: list[int] = []
    displs: list[int] = []
    cursor = 0
    for _ in range(repeats):
        blocklens.append(small)
        displs.append(cursor)
        cursor += small + gap
        blocklens.append(large)
        displs.append(cursor)
        cursor += large + gap
    return Hindexed(blocklens, displs)

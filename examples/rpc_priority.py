#!/usr/bin/env python
"""RPC-style flow: the paper's motivating example for priorities (§2).

An RPC request is "multiple fragments (service request, arguments, targeted
object) of a remote method invocation": the tiny service id must arrive
*early* — the receiver needs it "for preparing the data areas to receive
the service arguments" — while the bulk arguments follow.

This example sends a backlog of low-priority bulk traffic, then an RPC
whose service id carries a high priority.  With the priority-aware
aggregation strategy, the service id overtakes the queued bulk and lands
first; the server prepares its buffers while the arguments are still on the
wire.  The same run with plain FIFO shows the id stuck behind the backlog.

Run:  python examples/rpc_priority.py
"""

from repro.core import AggregationStrategy, NmadEngine, begin_pack
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator

RPC_FLOW = 7
BULK_FLOW = 1


def run(strategy, label):
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=2, rails=(MX_MYRI10G,))
    client = NmadEngine(cluster.node(0), strategy=strategy)
    server = NmadEngine(cluster.node(1), strategy=strategy)
    timeline = {}

    def client_app():
        # A backlog of unrelated bulk packets is already queued...
        for i in range(6):
            client.isend(1, b"x" * 4096, tag=i, flow=BULK_FLOW, priority=0)
        # ...when the RPC is issued: service id first (high priority), then
        # the arguments, which depend on the id having been scheduled.
        rpc = begin_pack(client, dest=1, tag=0, flow=RPC_FLOW)
        sid = rpc.pack(b"service:42", priority=10)
        rpc.pack(b"A" * 8192, priority=0)
        yield rpc.end_pack()

    def server_app():
        sid_req = server.irecv(src=0, tag=0, flow=RPC_FLOW)
        yield sid_req.done
        timeline["service_id"] = sim.now
        # Now the server knows which method is called and can set up the
        # argument landing area before the arguments finish arriving.
        args_req = server.irecv(src=0, tag=0, flow=RPC_FLOW)
        yield args_req.done
        timeline["arguments"] = sim.now
        # Drain the bulk traffic.
        for _ in range(6):
            req = server.irecv(src=0, flow=BULK_FLOW)
            yield req.done
        timeline["bulk_done"] = sim.now

    sim.spawn(client_app())
    sim.run_process(server_app())
    print(f"{label:32s} service id at {timeline['service_id']:7.2f}us, "
          f"arguments at {timeline['arguments']:7.2f}us, "
          f"bulk backlog drained at {timeline['bulk_done']:7.2f}us")
    return timeline


def main() -> None:
    print("RPC over a congested link - when does the service id arrive?\n")
    prio = run(AggregationStrategy(by_priority=True),
               "aggregation(by_priority=True):")
    fifo = run("fifo", "fifo (no optimization):")
    speedup = fifo["service_id"] / prio["service_id"]
    print(f"\nPriority scheduling delivered the service id "
          f"{speedup:.1f}x earlier.")
    assert prio["service_id"] < fifo["service_id"]


if __name__ == "__main__":
    main()

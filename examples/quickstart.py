#!/usr/bin/env python
"""Quickstart: two nodes, one engine each, and the optimization window at work.

Builds a simulated two-node Myri-10G cluster, runs NewMadeleine on both
nodes, and shows the headline behaviour of the paper: a burst of small
sends from different logical flows leaves the node as a *single* physical
packet, coalesced just-in-time when the NIC becomes idle.

Run:  python examples/quickstart.py
"""

from repro.core import NmadEngine
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator, Tracer


def main() -> None:
    sim = Simulator()
    tracer = Tracer(enabled=True)
    cluster = Cluster(sim, n_nodes=2, rails=(MX_MYRI10G,), tracer=tracer)
    sender = NmadEngine(cluster.node(0), strategy="aggregation")
    receiver = NmadEngine(cluster.node(1))

    messages = {tag: f"message-{tag}".encode() for tag in range(8)}

    def app():
        # Post the receives (one per tag)...
        recvs = {tag: receiver.irecv(src=0, tag=tag) for tag in messages}
        # ...then submit eight independent sends in one burst.  The engine
        # accumulates them in its optimization window and synthesizes one
        # aggregate packet for the idle NIC.
        for tag, payload in messages.items():
            sender.isend(1, payload, tag=tag)
        yield sim.all_of([r.done for r in recvs.values()])
        return recvs

    recvs = sim.run_process(app())

    print("Received messages:")
    for tag, req in recvs.items():
        print(f"  tag={tag}: {req.data.tobytes().decode()!r}")
    print(f"All {len(recvs)} messages delivered by t={sim.now:.2f}us")

    s = sender.stats
    print(f"\nSender statistics: {s.phys_packets} physical packet(s) carried "
          f"{s.items_sent} segments ({s.eager_bytes} payload bytes, "
          f"{s.wire_bytes} on the wire including headers)")
    assert s.phys_packets == 1, "the whole burst coalesced"

    print("\nNIC-level timeline (what actually happened):")
    for rec in tracer.of_kind("tx_start") + tracer.of_kind("send_plan"):
        print(f"  {rec}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Communication/computation overlap (paper §2's third preference).

"A preference for communication overlap may be more suitable for computing
intensive applications."  Because NewMadeleine unties request processing
from the application workflow, an ``isend`` returns immediately and the
engine drives the NICs while the application computes; the paper's three
preferences (latency / bandwidth / overlap) are all reachable from the same
API.

This example pipelines a stencil-like loop — compute a block, send halo,
compute next block — and compares the makespan against the same loop
without overlap (wait for each send before computing on).

Run:  python examples/compute_overlap.py
"""

from repro.core import NmadEngine, VirtualData
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator

BLOCKS = 10
HALO_BYTES = 24_000       # ~20us on the wire
COMPUTE_US = 22.0         # per block, similar to the transfer time


def run(overlap: bool) -> float:
    sim = Simulator()
    cluster = Cluster(sim, rails=(MX_MYRI10G,))
    worker = NmadEngine(cluster.node(0))
    neighbour = NmadEngine(cluster.node(1))

    def neighbour_app():
        for i in range(BLOCKS):
            req = neighbour.irecv(src=0, tag=i)
            yield req.done

    def worker_app():
        pending = []
        for i in range(BLOCKS):
            yield sim.timeout(COMPUTE_US)          # compute block i
            req = worker.isend(1, VirtualData(HALO_BYTES), tag=i)
            if overlap:
                pending.append(req)                # keep computing
            else:
                yield req.done                     # synchronous style
        for req in pending:
            yield req.done
        return sim.now

    sim.spawn(neighbour_app())
    return sim.run_process(worker_app())


def main() -> None:
    t_sync = run(overlap=False)
    t_overlap = run(overlap=True)
    ideal = BLOCKS * COMPUTE_US
    print(f"{BLOCKS} blocks of {COMPUTE_US}us compute + {HALO_BYTES}B halo "
          "exchange:")
    print(f"  synchronous sends:  {t_sync:8.1f} us")
    print(f"  overlapped sends:   {t_overlap:8.1f} us")
    print(f"  pure compute bound: {ideal:8.1f} us")
    hidden = 100.0 * (t_sync - t_overlap) / (t_sync - ideal)
    print(f"\nOverlap hid {hidden:.0f}% of the communication time behind "
          "computation.")
    assert t_overlap < t_sync


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Extending the strategy database at runtime (paper abstract: "the database
of optimizing strategies may be dynamically extended").

Implements a deliberately quirky strategy — *smallest-first* — in ~20 lines:
when the NIC goes idle it sends the smallest waiting wrap first (a
shortest-job-first packet scheduler).  The point is the plumbing: subclass
:class:`Strategy`, decorate with :func:`register`, and every engine can use
it by name, mid-run, next to the built-ins.

Run:  python examples/custom_strategy.py
"""

from repro.core import (
    NmadEngine,
    SchedulingContext,
    SendPlan,
    SegItem,
    Strategy,
    available_strategies,
    register,
    unregister,
)
from repro.core.tactics import deps_satisfied
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator


@register
class SmallestFirstStrategy(Strategy):
    """Shortest-job-first: always elect the smallest sendable wrap."""

    name = "smallest_first"

    def select(self, ctx: SchedulingContext):
        candidates = [w for w in ctx.window.eligible(ctx.rail)
                      if deps_satisfied(w, ctx.sent_wraps)
                      and w.length <= ctx.rdv_threshold]
        if not candidates:
            return None
        wrap = min(candidates, key=lambda w: w.length)
        item = SegItem(src=ctx.src_node, flow=wrap.flow, tag=wrap.tag,
                       seq=wrap.seq, data=wrap.data)
        return SendPlan(dest=wrap.dest, items=[item], taken=[wrap])


def main() -> None:
    print("strategy database:", ", ".join(available_strategies()))

    sim = Simulator()
    cluster = Cluster(sim, n_nodes=2, rails=(MX_MYRI10G,))
    sender = NmadEngine(cluster.node(0), strategy="smallest_first")
    receiver = NmadEngine(cluster.node(1))

    sizes = [4096, 16, 1024, 64]  # deliberately shuffled submission order
    completion_order: list[int] = []

    def app():
        recvs = [receiver.irecv(src=0, flow=f) for f in range(len(sizes))]
        for f, size in enumerate(sizes):
            sender.isend(1, bytes(size), flow=f)
        for f, r in enumerate(recvs):
            r.done.add_callback(
                lambda _e, f=f: completion_order.append(sizes[f]))
        yield sim.all_of([r.done for r in recvs])

    sim.run_process(app())
    print("submission order (bytes):", sizes)
    print("delivery order (bytes):  ", completion_order)
    assert completion_order == sorted(sizes), "SJF should reorder the wire"

    unregister("smallest_first")
    print("strategy unregistered; database:",
          ", ".join(available_strategies()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Export a full engine exchange as a Chrome trace (chrome://tracing).

Runs the §5.3 derived-datatype exchange with tracing enabled and writes
``nmad_trace.json``.  Open it in any Chromium browser (chrome://tracing) or
https://ui.perfetto.dev to see, on parallel tracks, the NIC busy spans, the
scheduler's packet synthesis, the rendezvous handshake, and the bulk chunks
streaming — the paper's Figure 1 architecture, animated.

Run:  python examples/trace_timeline.py [output.json]
"""

import sys

from repro.core import NmadEngine, VirtualData
from repro.madmpi import Communicator, MadMpi, indexed_small_large
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator, Tracer
from repro.sim.chrometrace import write_chrome_trace


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "nmad_trace.json"
    sim = Simulator()
    tracer = Tracer(enabled=True)
    cluster = Cluster(sim, rails=(MX_MYRI10G,), tracer=tracer)
    world = Communicator([0, 1])
    m0 = MadMpi(NmadEngine(cluster.node(0), tracer=tracer), world)
    m1 = MadMpi(NmadEngine(cluster.node(1), tracer=tracer), world)

    dtype = indexed_small_large(repeats=2)

    def app():
        rreq = m1.irecv(source=0, datatype=dtype)
        m0.isend(VirtualData(dtype.extent), dest=1, datatype=dtype)
        yield rreq.done
        return sim.now

    elapsed = sim.run_process(app())
    n_events = write_chrome_trace(tracer, out_path)
    print(f"Exchanged a {dtype.size}-byte indexed datatype in "
          f"{elapsed:.1f} simulated us.")
    print(f"Wrote {n_events} trace events to {out_path}.")
    print("Open chrome://tracing (or ui.perfetto.dev) and load the file to "
          "see the schedule.")

    print("\nFirst few records:")
    for rec in tracer.records[:12]:
        print(f"  {rec}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multirail: one message split heterogeneously over MX + Quadrics (§4, §7).

The paper ships a "multi-rails [strategy] which balances the communication
flow over the set of available NICS, possibly by splitting messages in a
heterogeneous manner".  Here a single 4 MB message leaves node 0 over both
a Myri-10G rail (1250 MB/s) and a Quadrics rail (910 MB/s) simultaneously;
the receiver reassembles the chunks by offset.  The split is *greedy*: each
idle NIC pulls the next chunk, so the byte ratio converges to the bandwidth
ratio without any explicit ratio computation.

Run:  python examples/multirail_transfer.py
"""

from repro.core import EngineParams, NmadEngine, VirtualData
from repro.netsim import Cluster, MX_MYRI10G, QUADRICS_QM500
from repro.sim import Simulator

SIZE = 4 << 20  # 4 MB


def run(rails, strategy):
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=2, rails=rails)
    params = EngineParams(rdv_chunk_bytes=128 * 1024)
    sender = NmadEngine(cluster.node(0), strategy=strategy, params=params)
    receiver = NmadEngine(cluster.node(1), strategy=strategy, params=params)

    def app():
        req = receiver.irecv(src=0, tag=1)
        sender.isend(1, VirtualData(SIZE), tag=1)
        yield req.done
        return sim.now

    elapsed = sim.run_process(app())
    per_rail = [(nic.profile.name, nic.bytes_sent)
                for nic in cluster.node(0).nics]
    return elapsed, per_rail


def main() -> None:
    t_mx, _ = run((MX_MYRI10G,), "aggregation")
    t_q, _ = run((QUADRICS_QM500,), "aggregation")
    t_multi, split = run((MX_MYRI10G, QUADRICS_QM500), "multirail")

    print(f"4 MB transfer, one-way:")
    print(f"  MX rail alone:        {t_mx:9.1f} us  "
          f"({SIZE / t_mx:7.1f} MB/s)")
    print(f"  Quadrics rail alone:  {t_q:9.1f} us  ({SIZE / t_q:7.1f} MB/s)")
    print(f"  both rails (split):   {t_multi:9.1f} us  "
          f"({SIZE / t_multi:7.1f} MB/s)")
    print("\nPer-rail bytes of the split transfer:")
    total = sum(b for _, b in split)
    for name, nbytes in split:
        print(f"  {name:16s} {nbytes:>9} B  ({100.0 * nbytes / total:5.1f}%)")
    bw_share = MX_MYRI10G.bandwidth_mbps / (
        MX_MYRI10G.bandwidth_mbps + QUADRICS_QM500.bandwidth_mbps)
    print(f"\nBandwidth ratio predicts {100 * bw_share:.1f}% on MX; the "
          "greedy split converges to it without computing any ratio.")
    assert t_multi < t_mx < t_q


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Regenerate a quick preview of every paper figure as text tables.

This is the examples-sized version of the full benchmark harness (see
``benchmarks/``): a coarser size sweep so it finishes in seconds, printing
the same backend-vs-size tables the benches produce and the paper plots.

Run:  python examples/figure_preview.py
"""

from repro.bench import (
    find_series,
    render_gains,
    render_table,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.netsim import KB, MB, MX_MYRI10G, QUADRICS_QM500


def main() -> None:
    fig2_sizes = [4, 64, 1 * KB, 16 * KB, 256 * KB, 2 * MB]

    for profile, tag in ((MX_MYRI10G, "a/b"), (QUADRICS_QM500, "c/d")):
        series = run_figure2(profile, sizes=fig2_sizes, iters=2)
        print(render_table(
            f"\n== Figure 2({tag}) ping-pong latency over {profile.name} ==",
            series))
        print(render_table(
            f"-- derived bandwidth --",
            [s.to_bandwidth() for s in series]))

    for profile, nseg, panel in ((MX_MYRI10G, 8, "3a"), (MX_MYRI10G, 16, "3b"),
                                 (QUADRICS_QM500, 8, "3c"),
                                 (QUADRICS_QM500, 16, "3d")):
        top = 16 * KB if profile.tech == "mx" else 8 * KB
        sizes = [4, 64, 1 * KB, top]
        series = run_figure3(profile, n_segments=nseg, sizes=sizes, iters=2)
        print(render_table(
            f"\n== Figure {panel}: {nseg}-segment ping-pong over "
            f"{profile.name} ==", series))
        print(render_gains(series))

    for profile, panel in ((MX_MYRI10G, "4a"), (QUADRICS_QM500, "4b")):
        series = run_figure4(profile, sizes=[256 * KB, 1 * MB, 2 * MB],
                             iters=2)
        print(render_table(
            f"\n== Figure {panel}: indexed datatype over {profile.name} ==",
            series))
        print(render_gains(series))


if __name__ == "__main__":
    main()

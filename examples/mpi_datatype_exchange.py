#!/usr/bin/env python
"""MAD-MPI derived datatypes vs the MPICH pack model (the §5.3 story).

Exchanges the paper's indexed datatype — repeats of a 64 B block followed
by a 256 KB block — through three backends and prints where the time goes:

* MPICH packs everything into a contiguous buffer (copy #1), ships it in
  one transaction, receives into a temporary area and dispatches (copy #2).
* OpenMPI does the same but overlaps packing with injection, chunk by chunk.
* MAD-MPI issues one request per block: the engine aggregates the small
  blocks with the rendezvous requests of the large ones, and the large
  blocks land zero-copy at their final destination.

Run:  python examples/mpi_datatype_exchange.py
"""

from repro.bench import backend_label, make_backend_pair
from repro.core.data import VirtualData
from repro.madmpi import indexed_small_large
from repro.netsim import MX_MYRI10G

REPEATS = 4  # ~1 MB of data


def run(backend: str) -> tuple[str, float, int]:
    dtype = indexed_small_large(repeats=REPEATS)
    pair = make_backend_pair(backend, rails=(MX_MYRI10G,))
    m0, m1 = pair.m0, pair.m1
    sim = pair.sim

    def app():
        rreq = m1.irecv(source=0, datatype=dtype)
        m0.isend(VirtualData(dtype.extent), dest=1, datatype=dtype)
        yield rreq.done
        return sim.now

    elapsed = sim.run_process(app())
    copies = 0
    if backend.startswith("madmpi"):
        copies = pair.m1.engine.stats.recv_copy_bytes
    return backend_label(backend, MX_MYRI10G), elapsed, copies


def main() -> None:
    dtype = indexed_small_large(repeats=REPEATS)
    print(f"Indexed datatype: {REPEATS} x (64 B + 256 KB) blocks, "
          f"{dtype.size} data bytes, one-way transfer over MX:\n")
    results = [run(b) for b in ("madmpi", "openmpi", "mpich")]
    best = min(t for _, t, _ in results)
    for label, elapsed, copies in results:
        bar = "#" * int(40 * elapsed / max(t for _, t, _ in results))
        print(f"  {label:14s} {elapsed:9.1f} us  {bar}")
    mad = results[0][1]
    mpich = results[2][1]
    print(f"\nMAD-MPI gain over MPICH: {100 * (1 - mad / mpich):.0f}% "
          f"(paper 5.3: 'a gain of about 70 %')")
    print(f"Bytes copied on the MAD-MPI receive side: {results[0][2]} "
          f"(only the small blocks; the 256 KB blocks were zero-copy)")


if __name__ == "__main__":
    main()

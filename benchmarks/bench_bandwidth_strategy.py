"""Ablation: latency-favoring vs bandwidth-favoring scheduling (paper §2).

"The preferred optimization strategy may differ from favoring the latency,
and instead favoring the bandwidth may be a better bet for applications
using a remote storage system."  This bench streams spaced small records (a
storage-writeback pattern) under plain aggregation and under the bandwidth
strategy at several hold budgets, reporting the two sides of the trade:
physical packets (≈ per-packet costs ≈ achieved bandwidth) versus first-
delivery latency.
"""

import pytest

from repro.bench.backends import make_backend_pair
from repro.core import BandwidthStrategy
from repro.core.data import VirtualData
from repro.netsim import MX_MYRI10G

N_RECORDS = 40
RECORD = 256
SPACING_US = 0.9


def _stream(strategy):
    pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                             strategy="aggregation")
    if strategy != "aggregation":
        pair.m0.engine.set_strategy(strategy)
    sim, m0, m1 = pair.sim, pair.m0, pair.m1
    first = {}

    def app():
        recvs = [m1.irecv(source=0, tag=i) for i in range(N_RECORDS)]
        recvs[0].done.add_callback(lambda _e: first.setdefault("t", sim.now))
        for i in range(N_RECORDS):
            m0.isend(VirtualData(RECORD), dest=1, tag=i)
            yield sim.timeout(SPACING_US)
        yield sim.all_of([r.done for r in recvs])
        return sim.now

    makespan = sim.run_process(app())
    return {
        "packets": m0.engine.stats.phys_packets,
        "first_delivery": first["t"],
        "makespan": makespan,
        "wire_bytes": m0.engine.stats.wire_bytes,
    }


def test_bandwidth_vs_latency_tradeoff(benchmark, emit):
    def sweep():
        out = {"aggregation (no hold)": _stream("aggregation")}
        for hold in (2.0, 5.0, 20.0):
            out[f"bandwidth hold={hold}us"] = _stream(
                BandwidthStrategy(hold_us=hold))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"== {N_RECORDS}x{RECORD}B records every {SPACING_US}us "
             "(storage writeback pattern) =="]
    for label, r in out.items():
        lines.append(
            f"  {label:24s} packets {r['packets']:3d}   wire "
            f"{r['wire_bytes']:6d}B   first delivery {r['first_delivery']:7.2f} us"
        )
    emit("\n".join(lines))
    base = out["aggregation (no hold)"]
    held = out["bandwidth hold=20.0us"]
    # The trade: far fewer packets and less header overhead on the wire...
    assert held["packets"] < base["packets"] / 2
    assert held["wire_bytes"] < base["wire_bytes"]
    # ...for a bounded first-delivery latency cost.
    assert held["first_delivery"] > base["first_delivery"]
    assert held["first_delivery"] < base["first_delivery"] + 25.0
    # Longer holds monotonically reduce packet counts.
    packets = [out[k]["packets"] for k in
               ("aggregation (no hold)", "bandwidth hold=2.0us",
                "bandwidth hold=5.0us", "bandwidth hold=20.0us")]
    assert packets == sorted(packets, reverse=True)
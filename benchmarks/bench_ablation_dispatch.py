"""Ablation: the three dispatch policies of paper §3.2.

On-idle pulls pay the full optimization cost on the critical path every
time a NIC drains; anticipation pre-synthesizes one packet while the cards
are busy and re-feeds it instantly, at the price of freezing its contents
early; the backlog policy anticipates only under pressure.  This bench runs
a saturated small-message stream (the regime where refill latency shows)
and an idle-then-single-message stream (where anticipation can do nothing)
under each policy.
"""

import pytest

from repro.bench.backends import make_backend_pair
from repro.core import EngineParams
from repro.core.data import VirtualData
from repro.netsim import MX_MYRI10G

POLICIES = ("on_idle", "anticipate", "backlog")


def _saturated_stream(policy, n=60, size=512):
    params = EngineParams(dispatch_policy=policy, backlog_flush_threshold=2)
    pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                             engine_params=params)
    sim, m0, m1 = pair.sim, pair.m0, pair.m1

    def app():
        recvs = [m1.irecv(source=0, tag=i) for i in range(n)]
        for i in range(n):
            m0.isend(VirtualData(size), dest=1, tag=i)
            yield sim.timeout(0.05)   # continuous pressure
        yield sim.all_of([r.done for r in recvs])
        return sim.now

    elapsed = sim.run_process(app())
    return elapsed, m0.engine.stats.anticipated_hits


def test_dispatch_policy_comparison(benchmark, emit):
    out = benchmark.pedantic(
        lambda: {p: _saturated_stream(p) for p in POLICIES},
        rounds=1, iterations=1)
    lines = ["== Dispatch policies on a saturated 60x512B stream =="]
    for policy, (t, hits) in out.items():
        lines.append(f"  {policy:12s} makespan {t:9.2f} us   "
                     f"anticipated refills: {hits}")
    emit("\n".join(lines))
    # Anticipation must actually trigger under saturation...
    assert out["anticipate"][1] > 0
    assert out["backlog"][1] > 0
    # ...and must not lose to on_idle (same schedule, cheaper refills).
    assert out["anticipate"][0] <= out["on_idle"][0] * 1.02
    assert out["on_idle"][1] == 0

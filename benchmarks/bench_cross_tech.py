"""Cross-technology sweep: the engine over every §4 port.

Paper §4: "A NewMadeleine prototype has been implemented over GM/MYRINET,
MX/MYRINET, ELAN/QUADRICS, SISCI/SCI and TCP/ETHERNET", with strategies
"independent from the network technology ... any strategy can be directly
combined with any network protocol".  This bench runs the multi-segment
aggregation workload over all five profiles and checks the
technology-independence claim: aggregation wins over direct mapping on
every network, with the margin scaling with each NIC's per-message cost.
"""

import pytest

from repro.bench import Series, pingpong_multiseg, render_table
from repro.netsim import (
    GM_MYRINET,
    MX_MYRI10G,
    QUADRICS_QM500,
    SISCI_SCI,
    TCP_GIGE,
)

ALL_PROFILES = (MX_MYRI10G, QUADRICS_QM500, GM_MYRINET, SISCI_SCI, TCP_GIGE)
SEG, N_SEG = 64, 16


def test_aggregation_wins_on_every_technology(benchmark, emit):
    def sweep():
        out = {}
        for profile in ALL_PROFILES:
            agg = pingpong_multiseg("madmpi", profile, SEG, N_SEG, iters=2)
            fifo = pingpong_multiseg("madmpi-fifo", profile, SEG, N_SEG,
                                     iters=2)
            out[profile.name] = (agg, fifo)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"== {N_SEG}x{SEG}B burst: engine aggregation vs direct "
             "mapping, every port (paper 4) =="]
    for name, (agg, fifo) in out.items():
        lines.append(f"  {name:16s} aggregation {agg:9.2f} us   "
                     f"fifo {fifo:9.2f} us   ({fifo / agg:4.1f}x)")
    emit("\n".join(lines))
    for name, (agg, fifo) in out.items():
        assert agg < fifo, f"aggregation must win on {name}"
    factors = {name: fifo / agg for name, (agg, fifo) in out.items()}
    # A solid factor everywhere — the strategy really is tech-independent.
    assert all(f > 1.5 for f in factors.values()), factors
    # NICs without hardware gather/scatter (GM, SCI) pay staging copies for
    # each aggregate, so their factor is the smallest.
    assert max(factors["gm_myrinet"], factors["sisci_sci"]) < min(
        factors["mx_myri10g"], factors["quadrics_qm500"])


def test_latency_ordering_matches_technology(benchmark, emit):
    from repro.bench import pingpong_single

    def sweep():
        return {p.name: pingpong_single("madmpi", p, 4, iters=2)
                for p in ALL_PROFILES}

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = [Series(label="MadMPI 4B latency", backend="madmpi",
                     sizes=list(range(len(out))), values=list(out.values()))]
    emit("== 4B one-way latency per technology ==\n" + "\n".join(
        f"  {name:16s} {t:8.2f} us" for name, t in out.items()))
    # 2006 reality check: Quadrics < MX < SCI < GM < TCP.
    assert out["quadrics_qm500"] < out["mx_myri10g"] < out["sisci_sci"] \
        < out["gm_myrinet"] < out["tcp_gige"]

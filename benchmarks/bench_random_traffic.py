"""Beyond the paper's regular ping-pongs: irregular multi-flow traffic.

Paper §1-2 motivates NewMadeleine with "the irregular and multi-flow
communication schemes" of real applications.  This bench replays seeded
random traffic (mixed sizes, bursts, several flows) through the engine
under each strategy and through the baselines, reporting makespan and
packet counts.  The aggregation strategy should win on bursty small-message
mixes and never lose badly elsewhere — the paper's "negligible overhead on
basic requests, much better performance on complex schemes" thesis, on a
workload the original evaluation never ran.
"""

import pytest

from repro.bench.backends import make_backend_pair
from repro.bench.workloads import TrafficSpec, generate_messages, replay
from repro.netsim import KB, MX_MYRI10G

SEEDS = (1, 2, 3)

BURSTY = TrafficSpec(n_messages=60, n_flows=6, n_tags=4, min_size=16,
                     max_size=2 * KB, large_fraction=0.05, burst_prob=0.9)
SPARSE = TrafficSpec(n_messages=40, n_flows=2, n_tags=2, min_size=64,
                     max_size=8 * KB, large_fraction=0.1, burst_prob=0.1,
                     max_gap_us=50.0)


def _makespan(backend, strategy, spec, seed):
    pair = make_backend_pair(backend, rails=(MX_MYRI10G,), strategy=strategy)
    replay(pair, generate_messages(spec, seed=seed), verify_content=False)
    packets = pair.m0.engine.stats.phys_packets \
        if backend.startswith("madmpi") else pair.m0.frames_sent
    return pair.sim.now, packets


def test_bursty_traffic_strategy_comparison(benchmark, emit):
    def sweep():
        out = {}
        for label, backend, strategy in (
            ("engine+aggregation", "madmpi", "aggregation"),
            ("engine+adaptive", "madmpi", "adaptive"),
            ("engine+fifo", "madmpi", "fifo"),
            ("MPICH model", "mpich", "aggregation"),
        ):
            times, packets = zip(*(_makespan(backend, strategy, BURSTY, s)
                                   for s in SEEDS))
            out[label] = (sum(times) / len(times),
                          sum(packets) / len(packets))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"== Irregular bursty traffic ({BURSTY.n_messages} msgs, "
             f"{BURSTY.n_flows} flows, 3 seeds) =="]
    for label, (t, pkts) in out.items():
        lines.append(f"  {label:22s} makespan {t:9.1f} us   "
                     f"{pkts:6.1f} physical packets")
    emit("\n".join(lines))
    # Aggregation beats direct mapping on bursty small-message mixes...
    assert out["engine+aggregation"][0] < out["engine+fifo"][0]
    # ...and uses far fewer physical packets.
    assert out["engine+aggregation"][1] < 0.6 * out["engine+fifo"][1]
    # Adaptive tracks aggregation under backlog (within 15%).
    assert out["engine+adaptive"][0] < 1.15 * out["engine+aggregation"][0]


def test_sparse_traffic_negligible_overhead(benchmark, emit):
    """With no optimization opportunity the window must cost ~nothing."""

    def sweep():
        agg = [_makespan("madmpi", "aggregation", SPARSE, s)[0]
               for s in SEEDS]
        fifo = [_makespan("madmpi", "fifo", SPARSE, s)[0] for s in SEEDS]
        return sum(agg) / len(agg), sum(fifo) / len(fifo)

    t_agg, t_fifo = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"== Sparse traffic: aggregation {t_agg:.1f} us vs fifo "
         f"{t_fifo:.1f} us (overhead {100 * (t_agg / t_fifo - 1):+.2f}%) ==")
    assert t_agg <= t_fifo * 1.02, (
        "the optimization window must be near-free when there is nothing "
        "to optimize (paper section 5.1)"
    )

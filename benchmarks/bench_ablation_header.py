"""Ablation: the engine's packet header (one §5.1 overhead source).

NewMadeleine systematically adds a header "for allowing the reordering and
the multiplexing of the packets", so its packets are "slightly larger with
NewMadeleine than with MPICH-MX".  Sweeping the header size isolates that
overhead component: at 4 B payloads the header dominates wire bytes; at
2 MB it vanishes.
"""

import pytest

from repro.bench import Series, pingpong_single, render_table
from repro.core import EngineParams, HeaderSpec
from repro.core.data import VirtualData
from repro.netsim import MB, MX_MYRI10G

HEADER_SIZES = [0, 16, 64, 256]


def _latency(global_hdr, seg_hdr, size):
    from repro.bench.backends import make_backend_pair

    params = EngineParams(hdr=HeaderSpec(global_header=global_hdr,
                                         seg_header=seg_hdr))
    pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                             engine_params=params)
    sim, m0, m1 = pair.sim, pair.m0, pair.m1

    def app():
        for _ in range(3):
            sreq = m0.isend(VirtualData(size), dest=1)
            rreq = m1.irecv(source=0)
            yield rreq.done
            yield sreq.done
        t0 = sim.now
        sreq = m0.isend(VirtualData(size), dest=1)
        rreq = m1.irecv(source=0)
        yield rreq.done
        return sim.now - t0

    return sim.run_process(app())


def test_header_cost_visible_only_for_small_messages(benchmark, emit):
    def sweep():
        out = {}
        for hdr in HEADER_SIZES:
            out[hdr] = (_latency(hdr, hdr, 4), _latency(hdr, hdr, 2 * MB))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    small = Series(label="4B message", backend="madmpi",
                   sizes=HEADER_SIZES, values=[v[0] for v in out.values()])
    large = Series(label="2MB message", backend="madmpi",
                   sizes=HEADER_SIZES, values=[v[1] for v in out.values()])
    emit(render_table(
        "== Ablation: engine header bytes (size axis) vs one-way time ==",
        [small, large]))
    # Small messages: header bytes show up directly on the wire.
    assert small.values[-1] > small.values[0]
    # Large messages: the header is noise (< 0.1% effect).
    assert large.values[-1] == pytest.approx(large.values[0], rel=1e-3)
    # The default 16B header costs well under the paper's 0.5us budget.
    assert small.values[1] - small.values[0] < 0.5

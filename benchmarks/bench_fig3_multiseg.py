"""Figure 3: multi-segment ping-pong (aggregation of small messages, §5.2).

Each ping is a series of 8 or 16 independent ``MPI_Isend``s on separate
communicators.  Neither baseline coalesces; MPICH pipelines the series very
efficiently — and MAD-MPI still beats both by coalescing across flows.

Shape assertions (paper claims):
* MadMPI wins at small segment sizes on every panel.
* "up to 70 % faster than other implementations of MPI over MX-10G":
  the peak gain over the slower baseline (OpenMPI) reaches deep into the
  50-75 % band on the 16-segment panel.
* "up to 50 % faster that MPICH over QUADRICS".
* The advantage shrinks as segments grow toward the rendezvous threshold
  (aggregation budget exhausts), so curves converge at the right edge.
"""

import pytest

from repro.bench import find_series, gain_percent, render_gains, render_table, run_figure3
from repro.bench.plot import render_plot
from repro.netsim import MX_MYRI10G, QUADRICS_QM500


def _sweep(sweep_cache, profile, nseg):
    key = ("fig3", profile.name, nseg)
    if key not in sweep_cache:
        sweep_cache[key] = run_figure3(profile, n_segments=nseg, iters=3)
    return sweep_cache[key]


def _peak_gain(series, over: str) -> float:
    mad = find_series(series, "madmpi")
    other = find_series(series, over)
    return max(gain_percent(b, m) for b, m in zip(other.values, mad.values))


def _assert_shape(series, profile, peak_vs_mpich: tuple[float, float],
                  small_sizes=(4, 8, 16, 32, 64)):
    mad = find_series(series, "madmpi")
    mpich = find_series(series, "mpich")
    for s in small_sizes:
        assert mad.at(s) < mpich.at(s), (
            f"MadMPI must win at {s}B segments: {mad.at(s)} vs {mpich.at(s)}"
        )
    peak = _peak_gain(series, "mpich")
    lo, hi = peak_vs_mpich
    assert lo <= peak <= hi, (
        f"peak gain over MPICH {peak:.1f}% outside [{lo}, {hi}]"
    )
    # Convergence: at the largest segment size the gap has collapsed.
    last = series[0].sizes[-1]
    final_gap = abs(gain_percent(mpich.at(last), mad.at(last)))
    assert final_gap < 20.0, (
        f"curves must converge near the rendezvous threshold, got "
        f"{final_gap:.1f}% at {last}B"
    )


def test_fig3a_8seg_mx(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G, 8), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 3(a): 8-segment ping-pong latency over MX/Myrinet ==",
        series))
    emit(render_gains(series))
    _assert_shape(series, MX_MYRI10G, peak_vs_mpich=(25.0, 60.0))


def test_fig3b_16seg_mx(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G, 16), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 3(b): 16-segment ping-pong latency over MX/Myrinet ==",
        series))
    emit(render_plot("Figure 3(b) as a log-log plot:", series))
    emit(render_gains(series))
    _assert_shape(series, MX_MYRI10G, peak_vs_mpich=(35.0, 70.0))
    # Paper: "up to 70 % faster than other implementations of MPI over
    # MX-10G" — the slower baseline is OpenMPI.
    peak_openmpi = _peak_gain(series, "openmpi")
    assert 55.0 <= peak_openmpi <= 80.0, (
        f"peak gain over OpenMPI {peak_openmpi:.1f}% should approach the "
        "paper's 70%"
    )


def test_fig3c_8seg_quadrics(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, QUADRICS_QM500, 8), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 3(c): 8-segment ping-pong latency over Elan/Quadrics ==",
        series))
    emit(render_gains(series))
    _assert_shape(series, QUADRICS_QM500, peak_vs_mpich=(20.0, 55.0))


def test_fig3d_16seg_quadrics(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, QUADRICS_QM500, 16), rounds=1,
        iterations=1)
    emit(render_table(
        "== Figure 3(d): 16-segment ping-pong latency over Elan/Quadrics ==",
        series))
    emit(render_gains(series))
    # Paper: "up to 50 % faster that MPICH over QUADRICS".
    _assert_shape(series, QUADRICS_QM500, peak_vs_mpich=(35.0, 65.0))


def test_fig3_more_segments_larger_gain(benchmark, emit, sweep_cache):
    """16 segments benefit more from aggregation than 8 (both networks)."""

    def peaks():
        out = {}
        for profile in (MX_MYRI10G, QUADRICS_QM500):
            for nseg in (8, 16):
                series = _sweep(sweep_cache, profile, nseg)
                out[(profile.name, nseg)] = _peak_gain(series, "mpich")
        return out

    out = benchmark.pedantic(peaks, rounds=1, iterations=1)
    for profile in (MX_MYRI10G, QUADRICS_QM500):
        assert out[(profile.name, 16)] > out[(profile.name, 8)], (
            f"{profile.name}: more segments should mean a larger "
            f"aggregation win, got {out}"
        )

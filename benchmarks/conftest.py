"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark prints its paper-style table through :func:`emit` (bypassing
pytest's capture so the series appear in ``pytest benchmarks/
--benchmark-only`` output) and records the sweeps in a module cache so the
latency and derived-bandwidth panels of one figure measure the sweep once.
"""

from __future__ import annotations

import pytest

_SWEEP_CACHE: dict = {}


@pytest.fixture()
def emit(capsys):
    """Print ``text`` directly to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _emit


@pytest.fixture()
def sweep_cache():
    """Session-wide cache so sibling panels reuse one sweep."""
    return _SWEEP_CACHE

"""Figure 4: indexed-datatype ping-pong (derived datatypes, §5.3).

The exchanged datatype repeats (64 B small block, 256 KB large block)
pairs; total data size sweeps 256 KB .. 2 MB.  MPICH packs/unpacks the full
message (two size-proportional copies); OpenMPI pipelines the pack; MAD-MPI
issues per-block requests so small blocks aggregate with the rendezvous
requests of large blocks, which land zero-copy.

Shape assertions (paper claims):
* "a gain of about 70 % in comparison with MPICH ... over MX" — we accept
  55-80 %, and it must hold across the whole sweep (the advantage is
  proportional, not a crossover).
* "about 50 % with OPENMPI" over MX — we accept 40-65 %.
* "until about 70 % versus MPICH over QUADRICS" — we accept 45-75 %.
* Ordering everywhere: MadMPI < OpenMPI < MPICH transfer time.
"""

import pytest

from repro.bench.plot import render_plot
from repro.bench import (
    find_series,
    gain_percent,
    render_gains,
    render_table,
    run_figure4,
)
from repro.netsim import MX_MYRI10G, QUADRICS_QM500


def _sweep(sweep_cache, profile):
    key = ("fig4", profile.name)
    if key not in sweep_cache:
        sweep_cache[key] = run_figure4(profile, iters=3)
    return sweep_cache[key]


def _gains(series, over: str) -> list[float]:
    mad = find_series(series, "madmpi")
    other = find_series(series, over)
    return [gain_percent(b, m) for b, m in zip(other.values, mad.values)]


def test_fig4a_datatype_mx(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 4(a): indexed datatype transfer time over MX/Myrinet ==",
        series))
    emit(render_plot("Figure 4(a) as a log-log plot:", series))
    emit(render_gains(series))
    gains_mpich = _gains(series, "mpich")
    assert all(55.0 <= g <= 80.0 for g in gains_mpich), (
        f"gain vs MPICH-MX should be 'about 70%', got {gains_mpich}"
    )
    gains_openmpi = _gains(series, "openmpi")
    assert all(40.0 <= g <= 65.0 for g in gains_openmpi), (
        f"gain vs OpenMPI-MX should be 'about 50%', got {gains_openmpi}"
    )
    # Ordering: zero-copy < pipelined pack < full pack.
    mad = find_series(series, "madmpi")
    omp = find_series(series, "openmpi")
    mpich = find_series(series, "mpich")
    for idx in range(len(mad.sizes)):
        assert mad.values[idx] < omp.values[idx] < mpich.values[idx]


def test_fig4b_datatype_quadrics(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, QUADRICS_QM500), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 4(b): indexed datatype transfer time over Elan/Quadrics ==",
        series))
    emit(render_gains(series))
    gains = _gains(series, "mpich")
    assert all(45.0 <= g <= 75.0 for g in gains), (
        f"gain vs MPICH-Quadrics should approach the paper's 70%, got "
        f"{gains}"
    )


def test_fig4_transfer_time_scales_linearly(benchmark, emit, sweep_cache):
    """Doubling the data roughly doubles every backend's transfer time."""
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G), rounds=1, iterations=1)
    for s in series:
        for (sz_a, t_a), (sz_b, t_b) in zip(
                zip(s.sizes, s.values), zip(s.sizes[1:], s.values[1:])):
            ratio = t_b / t_a
            assert 1.6 <= ratio <= 2.4, (
                f"{s.label}: time {t_a:.0f}->{t_b:.0f}us for "
                f"{sz_a}->{sz_b}B is not ~linear"
            )

"""The §5.3 crossover: when is packing the *right* thing to do?

Paper §5.3 on MPICH's pack-into-contiguous-buffer approach: "This behaviour
is certainly optimized when dealing with a small overall data size as the
memcpy operations for each of the data blocks will cost less than the
multiple communication operations.  However, the cost of a memory copy
operation being proportional to the size of the data, this behaviour is no
longer optimized when dealing with bigger blocks."

The "multiple communication operations" packing is compared against are
*naive per-block sends* — one network operation per block, which is what
``madmpi-fifo`` (per-block requests, no optimization window) produces.
This bench sweeps the large-block size of the indexed datatype and shows
all three schemes:

* **MPICH pack** beats naive per-block sends for small blocks and loses for
  big ones — the paper's crossover, reproduced;
* **MAD-MPI with aggregation** is the paper's resolution of the dilemma:
  per-block requests whose small blocks coalesce, so it tracks the better
  of the two at both ends (and beats packing even in pack-friendly
  territory).
"""

import pytest

from repro.bench import Series, pingpong_datatype, render_table
from repro.netsim import KB, MX_MYRI10G

#: Large-block sizes swept (small block fixed at 64 B, 8 block pairs).
LARGE_BLOCKS = [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB]
REPEATS = 8

SCHEMES = {
    "madmpi": "MAD-MPI (window)",
    "madmpi-fifo": "naive per-block",
    "mpich": "MPICH pack",
}


def _transfer_time(backend, large):
    total = REPEATS * (64 + large)
    return pingpong_datatype(backend, MX_MYRI10G, total, small=64,
                             large=large, iters=2)


def test_datatype_crossover(benchmark, emit):
    def sweep():
        return {
            backend: [_transfer_time(backend, lb) for lb in LARGE_BLOCKS]
            for backend in SCHEMES
        }

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = [Series(label=label, backend=backend, sizes=LARGE_BLOCKS,
                     values=out[backend])
              for backend, label in SCHEMES.items()]
    emit(render_table(
        f"== Indexed datatype, {REPEATS}x(64B + large) pairs: transfer time "
        "vs large-block size ==", series))
    pack = out["mpich"]
    naive = out["madmpi-fifo"]
    window = out["madmpi"]
    # The paper's §5.3 rationale: packing beats naive per-block sends for
    # small blocks...
    assert pack[0] < naive[0], (
        f"pack should beat naive per-block at 256B blocks: "
        f"{pack[0]:.1f} vs {naive[0]:.1f}"
    )
    # ...and is "no longer optimized" for big blocks (the crossover).
    assert pack[-1] > 2.0 * naive[-1]
    crossover_exists = any(
        pack[i] < naive[i] and pack[i + 1] > naive[i + 1]
        for i in range(len(LARGE_BLOCKS) - 1)
    )
    assert crossover_exists, (
        f"no pack/per-block crossover found: pack={pack} naive={naive}"
    )
    # The engine's window resolves the dilemma: near the better scheme at
    # both ends, and strictly better than packing everywhere.
    for idx in range(len(LARGE_BLOCKS)):
        assert window[idx] < pack[idx]
        assert window[idx] < 1.4 * naive[idx]


def test_all_small_blocks_pack_beats_naive(benchmark, emit):
    """A datatype of *only* tiny blocks: pack crushes naive per-block sends,
    and the optimization window rescues the per-block approach."""

    def run():
        # 128 blocks of 64 B.
        return {
            backend: pingpong_datatype(backend, MX_MYRI10G, 128 * 64,
                                       small=64, large=64, iters=2)
            for backend in SCHEMES
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"== 128x64B all-small datatype: window {out['madmpi']:.2f} us, "
         f"pack {out['mpich']:.2f} us, naive per-block "
         f"{out['madmpi-fifo']:.2f} us ==")
    # Paper 5.3: "the memcpy operations ... will cost less than the
    # multiple communication operations".
    assert out["mpich"] < out["madmpi-fifo"] / 1.5
    # And the window makes per-block requests cheaper than both.
    assert out["madmpi"] < out["mpich"]

"""Multirail bench: the paper's second strategy and its §7 future work.

Streams large messages over (a) the MX rail alone, (b) the Quadrics rail
alone, and (c) both under the multirail strategy, which splits granted
rendezvous transfers greedily across idle NICs.  Checks that the split
aggregates bandwidth and converges to the rails' bandwidth ratio.
"""

import pytest

from repro.bench import Series, render_table
from repro.bench.backends import make_backend_pair
from repro.core import EngineParams
from repro.core.data import VirtualData
from repro.netsim import MB, MX_MYRI10G, QUADRICS_QM500

SIZES = [1 * MB, 2 * MB, 4 * MB]
CHUNK = 128 * 1024


def _one_way(rails, strategy, size):
    pair = make_backend_pair(
        "madmpi", rails=rails, strategy=strategy,
        engine_params=EngineParams(rdv_chunk_bytes=CHUNK))
    sim, m0, m1 = pair.sim, pair.m0, pair.m1

    def app():
        req = m1.irecv(source=0)
        m0.isend(VirtualData(size), dest=1)
        yield req.done
        return sim.now

    elapsed = sim.run_process(app())
    split = [nic.bytes_sent for nic in pair.cluster.node(0).nics]
    return elapsed, split


def test_multirail_aggregates_bandwidth(benchmark, emit):
    def sweep():
        out = {}
        for label, rails, strategy in (
            ("MX only", (MX_MYRI10G,), "aggregation"),
            ("Quadrics only", (QUADRICS_QM500,), "aggregation"),
            ("MX+Quadrics", (MX_MYRI10G, QUADRICS_QM500), "multirail"),
        ):
            out[label] = [_one_way(rails, strategy, s)[0] for s in SIZES]
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = [Series(label=k, backend=k, sizes=SIZES, values=v)
              for k, v in out.items()]
    emit(render_table("== Multirail: one-way transfer time ==", series))
    bw = [Series(label=k, backend=k, sizes=SIZES,
                 values=[s / t for s, t in zip(SIZES, v)], unit="MB/s")
          for k, v in out.items()]
    emit(render_table("-- derived bandwidth --", bw))
    for idx in range(len(SIZES)):
        assert out["MX+Quadrics"][idx] < out["MX only"][idx] \
            < out["Quadrics only"][idx]
    # At 4MB the aggregate bandwidth approaches the sum of the rails.
    agg_bw = SIZES[-1] / out["MX+Quadrics"][-1]
    assert agg_bw > 0.80 * (MX_MYRI10G.bandwidth_mbps
                            + QUADRICS_QM500.bandwidth_mbps)


def test_split_ratio_tracks_bandwidth_ratio(benchmark, emit):
    elapsed, split = benchmark.pedantic(
        lambda: _one_way((MX_MYRI10G, QUADRICS_QM500), "multirail", 4 * MB),
        rounds=1, iterations=1)
    total = sum(split)
    mx_share = split[0] / total
    expected = MX_MYRI10G.bandwidth_mbps / (
        MX_MYRI10G.bandwidth_mbps + QUADRICS_QM500.bandwidth_mbps)
    emit(f"4MB split: MX carried {100 * mx_share:.1f}% "
         f"(bandwidth ratio predicts {100 * expected:.1f}%)")
    assert mx_share == pytest.approx(expected, abs=0.08)

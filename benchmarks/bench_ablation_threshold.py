"""Ablation: the rendezvous threshold as the aggregation budget (§4).

The aggregation strategy "accumulates communication requests as long as the
cumulated length does not require to switch to the rendez-vous protocol" —
so the NIC's rendezvous threshold *is* the aggregation budget.  Sweeping it
over a 16 x 1 KB burst exposes both cliffs:

* a threshold **below the segment size** forces every segment through a
  rendezvous handshake — by far the worst choice;
* among eager regimes, a *larger* budget means larger aggregates, which
  arrive as one block and then drain the receive-copy queue serially,
  while smaller aggregates pipeline copies with arrivals.  The budget
  controls a real trade, it is not "bigger is better".

The companion invariant test proves no eager aggregate ever crosses the
switch point regardless of the setting.
"""

import pytest

from repro.bench import Series, pingpong_multiseg, render_table
from repro.netsim import KB, MX_MYRI10G

THRESHOLDS = [512, 2 * KB, 8 * KB, 32 * KB]
SEG = 1 * KB
N_SEG = 16


def test_threshold_sweep(benchmark, emit):
    def sweep():
        out = {}
        for thr in THRESHOLDS:
            profile = MX_MYRI10G.with_overrides(rdv_threshold=thr)
            out[thr] = pingpong_multiseg("madmpi", profile, SEG, N_SEG,
                                         iters=3)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = [Series(label="madmpi", backend="madmpi",
                     sizes=list(out), values=list(out.values()))]
    emit(render_table(
        f"== Ablation: rendezvous threshold vs {N_SEG}x{SEG}B burst latency "
        "(threshold on the size axis) ==", series))
    # A threshold below the segment size forces a handshake per segment —
    # clearly worse than a well-sized budget (the handshakes pipeline, so
    # the penalty is real but not catastrophic).
    assert out[512] > 1.3 * out[2 * KB]
    # Among eager regimes, giant aggregates serialize the receive-copy
    # queue behind one big arrival: the largest budget is not the fastest.
    assert out[2 * KB] < out[32 * KB]


def test_aggregate_never_exceeds_threshold(benchmark, emit):
    """Invariant under the sweep: no eager aggregate crosses the switch."""
    from repro.bench.backends import make_backend_pair
    from repro.core.data import VirtualData

    def run(thr):
        profile = MX_MYRI10G.with_overrides(rdv_threshold=thr)
        pair = make_backend_pair("madmpi", rails=(profile,))
        sim, m0, m1 = pair.sim, pair.m0, pair.m1
        comms = [pair.world.dup() for _ in range(N_SEG)]

        def app():
            recvs = [m1.irecv(source=0, comm=c) for c in comms]
            for c in comms:
                m0.isend(VirtualData(SEG), dest=1, comm=c)
            yield sim.all_of([r.done for r in recvs])

        sim.run_process(app())
        stats = m0.engine.stats
        assert stats.eager_bytes + stats.rdv_bytes == N_SEG * SEG
        return stats.phys_packets

    packets = benchmark.pedantic(
        lambda: {thr: run(thr) for thr in THRESHOLDS}, rounds=1, iterations=1)
    emit(f"physical packets per threshold: {packets}")
    # Smaller budget -> more physical packets (monotone).
    values = [packets[t] for t in THRESHOLDS]
    assert values == sorted(values, reverse=True)

"""Extension bench: collectives over the engine (paper §7 future work).

The paper leaves "porting a full featured MPI implementation" to future
work; the collectives layered on MAD-MPI's point-to-point subset are our
step in that direction.  This bench scales broadcast and allreduce over
cluster size and checks the log-P behaviour of the tree algorithms, plus
the engine's aggregation benefit on alltoall bursts.
"""

import pytest

from repro.core import NmadEngine
from repro.madmpi import Communicator, MadMpi, allreduce, alltoall, bcast
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator


def make_world(n, strategy="aggregation"):
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=n, rails=(MX_MYRI10G,))
    world = Communicator(list(range(n)))
    mpis = [MadMpi(NmadEngine(cluster.node(i), strategy=strategy), world)
            for i in range(n)]
    return sim, mpis


def run_spmd(sim, mpis, fn):
    procs = [sim.spawn(fn(mpis[r], r), name=f"rank{r}")
             for r in range(len(mpis))]
    sim.run()
    assert all(p.triggered and p.ok for p in procs)
    return sim.now


def _bcast_time(n, size):
    sim, mpis = make_world(n)
    payload = bytes(size)

    def fn(mpi, rank):
        yield from bcast(mpi, payload if rank == 0 else None, root=0)

    return run_spmd(sim, mpis, fn)


def _allreduce_time(n):
    sim, mpis = make_world(n)

    def int_sum(a, b):
        return (int.from_bytes(a, "little")
                + int.from_bytes(b, "little")).to_bytes(8, "little")

    def fn(mpi, rank):
        yield from allreduce(mpi, rank.to_bytes(8, "little"), int_sum)

    return run_spmd(sim, mpis, fn)


def test_bcast_scales_logarithmically(benchmark, emit):
    sizes = (2, 4, 8, 16)
    times = benchmark.pedantic(
        lambda: {n: _bcast_time(n, 1024) for n in sizes},
        rounds=1, iterations=1)
    emit("== Broadcast (1KB) completion time vs cluster size ==\n"
         + "\n".join(f"  P={n:<3} {t:8.2f} us" for n, t in times.items()))
    # Binomial tree: 16 ranks take 4 rounds vs 2 rounds for 4 ranks, so the
    # ratio sits near 2 (plus root-side injection serialization) — a linear
    # algorithm would be 5x (15 vs 3 sends from the root).
    assert times[16] < 3.0 * times[4]
    # And strictly grows with P.
    vals = list(times.values())
    assert vals == sorted(vals)


def test_allreduce_scales(benchmark, emit):
    sizes = (2, 4, 8)
    times = benchmark.pedantic(
        lambda: {n: _allreduce_time(n) for n in sizes}, rounds=1,
        iterations=1)
    emit("== Allreduce (8B sum) completion time vs cluster size ==\n"
         + "\n".join(f"  P={n:<3} {t:8.2f} us" for n, t in times.items()))
    # Reduce+bcast is 2x(log P) rounds: 8 ranks ~3x the 2-rank time, where
    # a linear gather+bcast would be ~7x.
    assert times[8] < 4.0 * times[2]


def test_alltoall_packet_count_with_aggregation(benchmark, emit):
    n = 6

    def count(strategy):
        sim, mpis = make_world(n, strategy=strategy)

        def fn(mpi, rank):
            yield from alltoall(mpi, [bytes(32)] * n)

        run_spmd(sim, mpis, fn)
        return sum(m.engine.stats.phys_packets for m in mpis)

    counts = benchmark.pedantic(
        lambda: {s: count(s) for s in ("aggregation", "fifo")},
        rounds=1, iterations=1)
    emit(f"== Alltoall (P={n}, 32B chunks) total physical packets: "
         f"{counts} ==")
    assert counts["aggregation"] <= counts["fifo"]

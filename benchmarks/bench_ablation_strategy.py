"""Ablation: what does the optimization window buy? (aggregation vs fifo)

Runs the Figure-3 workload on the *same engine* with aggregation switched
off (the ``fifo`` strategy: one request, one packet — a classical
synchronous library).  The delta is exactly the contribution of paper §3.1's
optimization window, isolated from every other constant.
"""

import pytest

from repro.bench import backend_label, pingpong_multiseg, render_table, Series
from repro.bench.backends import make_backend_pair
from repro.core.data import VirtualData
from repro.netsim import KB, MX_MYRI10G

SIZES = [4, 16, 64, 256, 1 * KB, 4 * KB]
N_SEG = 16


def _run(strategy_backend: str) -> list[float]:
    return [
        pingpong_multiseg(strategy_backend, MX_MYRI10G, s, N_SEG, iters=3)
        for s in SIZES
    ]


def test_window_vs_direct_mapping(benchmark, emit):
    def sweep():
        return {
            "aggregation": _run("madmpi"),
            "fifo": _run("madmpi-fifo"),
        }

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = [
        Series(label=f"engine+{name}", backend=name, sizes=SIZES, values=vals)
        for name, vals in out.items()
    ]
    emit(render_table(
        f"== Ablation: {N_SEG}-segment burst, optimization window on/off ==",
        series))
    # Overhead-bound regime (tiny segments): the window wins big — the
    # per-packet fixed costs dominate and coalescing removes them.
    for idx, size in enumerate(SIZES):
        agg, fifo = out["aggregation"][idx], out["fifo"][idx]
        if size <= 256:
            assert agg < fifo, (
                f"window must win at {size}B: {agg:.2f} vs {fifo:.2f}"
            )
    assert out["fifo"][0] / out["aggregation"][0] > 1.5
    # Copy-bound regime (KB segments): one giant aggregate arrives as a
    # block and then drains the receive-copy queue serially, while direct
    # mapping pipelines copies with arrivals — aggregation's advantage
    # legitimately fades, but it must stay within a bounded penalty.
    for idx, size in enumerate(SIZES):
        agg, fifo = out["aggregation"][idx], out["fifo"][idx]
        assert agg < 1.5 * fifo, (
            f"window must never lose badly: {agg:.2f} vs {fifo:.2f} at {size}B"
        )


def test_aggregation_reduces_physical_packets(benchmark, emit):
    """The mechanism, observed directly: 16 wraps -> few physical packets."""

    def count_packets(strategy: str) -> int:
        pair = make_backend_pair("madmpi", rails=(MX_MYRI10G,),
                                 strategy=strategy)
        sim, m0, m1 = pair.sim, pair.m0, pair.m1
        comms = [pair.world.dup() for _ in range(N_SEG)]

        def app():
            recvs = [m1.irecv(source=0, comm=c) for c in comms]
            for c in comms:
                m0.isend(VirtualData(64), dest=1, comm=c)
            yield sim.all_of([r.done for r in recvs])

        sim.run_process(app())
        return m0.engine.stats.phys_packets

    results = benchmark.pedantic(
        lambda: {s: count_packets(s) for s in ("aggregation", "fifo")},
        rounds=1, iterations=1)
    emit(f"physical packets for a {N_SEG}-segment burst: {results}")
    assert results["fifo"] == N_SEG
    assert results["aggregation"] == 1

"""Figure 2: raw point-to-point ping-pong (overhead of NewMadeleine, §5.1).

Four panels: latency and bandwidth over MX/Myrinet (MadMPI vs MPICH-MX vs
OpenMPI-MX) and over Elan/Quadrics (MadMPI vs MPICH-Quadrics), message
sizes 4 B .. 2 MB.

Shape assertions (the paper's claims):
* MadMPI sits a constant < 0.5 us above the best baseline at small sizes
  ("a constant overhead of less than 0,5 us").
* Peak bandwidth lands in the right band: ~1155 MB/s over MX and ~835 MB/s
  over Quadrics, a few percent below the corresponding MPICH.
* OpenMPI-MX is the slowest at small sizes (visible in Figure 2(a)).
"""

import pytest

from repro.bench.plot import render_plot
from repro.bench import (
    FIG2_SIZES,
    find_series,
    pingpong_single,
    render_table,
    run_figure2,
)
from repro.netsim import MB, MX_MYRI10G, QUADRICS_QM500

SMALL_SIZES = [s for s in FIG2_SIZES if s <= 64]


def _sweep(sweep_cache, profile):
    key = ("fig2", profile.name)
    if key not in sweep_cache:
        sweep_cache[key] = run_figure2(profile, iters=3)
    return sweep_cache[key]


def _assert_latency_shape(series, n_backends):
    mad = find_series(series, "madmpi")
    mpich = find_series(series, "mpich")
    overheads = [mad.at(s) - mpich.at(s) for s in SMALL_SIZES]
    assert all(0.0 < o < 0.5 for o in overheads), (
        f"MadMPI small-message overhead must be a constant < 0.5us over "
        f"MPICH, got {overheads}"
    )
    # Constant: spread across small sizes is tiny.
    assert max(overheads) - min(overheads) < 0.2
    if n_backends == 3:
        openmpi = find_series(series, "openmpi")
        for s in SMALL_SIZES:
            assert openmpi.at(s) > mad.at(s) > mpich.at(s)


def _assert_bandwidth_shape(series, mad_band, ratio_band):
    mad = find_series(series, "madmpi").to_bandwidth()
    mpich = find_series(series, "mpich").to_bandwidth()
    peak_mad = mad.at(2 * MB)
    peak_mpich = mpich.at(2 * MB)
    lo, hi = mad_band
    assert lo <= peak_mad <= hi, (
        f"MadMPI peak bandwidth {peak_mad:.0f} MB/s outside [{lo}, {hi}]"
    )
    rlo, rhi = ratio_band
    assert rlo <= peak_mad / peak_mpich <= rhi, (
        f"MadMPI/MPICH bandwidth ratio {peak_mad / peak_mpich:.3f} outside "
        f"[{rlo}, {rhi}] (the engine's data-path cost, paper 5.1)"
    )


def test_fig2a_latency_mx(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G), rounds=1, iterations=1)
    emit(render_table("== Figure 2(a): ping-pong latency over MX/Myrinet ==",
                      series))
    emit(render_plot("Figure 2(a) as a log-log plot:", series))
    _assert_latency_shape(series, n_backends=3)


def test_fig2b_bandwidth_mx(benchmark, emit, sweep_cache):
    # Benchmark the headline point (2 MB transfer) on its own; the table
    # derives from the cached sweep.
    benchmark.pedantic(
        lambda: pingpong_single("madmpi", MX_MYRI10G, 2 * MB, iters=1),
        rounds=1, iterations=1)
    series = _sweep(sweep_cache, MX_MYRI10G)
    bw = [s.to_bandwidth() for s in series]
    emit(render_table("== Figure 2(b): ping-pong bandwidth over MX/Myrinet ==",
                      bw))
    # Paper: "reaches 1155 Mbytes/s in bandwidth over MYRI-10G".
    _assert_bandwidth_shape(series, mad_band=(1100, 1250),
                            ratio_band=(0.92, 0.99))


def test_fig2c_latency_quadrics(benchmark, emit, sweep_cache):
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, QUADRICS_QM500), rounds=1, iterations=1)
    emit(render_table(
        "== Figure 2(c): ping-pong latency over Elan/Quadrics ==", series))
    _assert_latency_shape(series, n_backends=2)


def test_fig2d_bandwidth_quadrics(benchmark, emit, sweep_cache):
    benchmark.pedantic(
        lambda: pingpong_single("madmpi", QUADRICS_QM500, 2 * MB, iters=1),
        rounds=1, iterations=1)
    series = _sweep(sweep_cache, QUADRICS_QM500)
    bw = [s.to_bandwidth() for s in series]
    emit(render_table(
        "== Figure 2(d): ping-pong bandwidth over Elan/Quadrics ==", bw))
    # Paper: "835 Mbytes/s over QUADRICS".
    _assert_bandwidth_shape(series, mad_band=(790, 880),
                            ratio_band=(0.88, 0.97))


def test_fig2_latency_monotone_in_size(emit, sweep_cache, benchmark):
    """Sanity shape shared by all panels: latency grows with size.

    One local dip is legitimate: at the eager/rendezvous threshold the
    protocol switches from "wire + receive-side copy" to "handshake +
    zero-copy", so the first rendezvous point can undercut the last eager
    point (real measured curves show the same notch).  We therefore allow
    up to a 15% dip per step but require global growth.
    """
    series = benchmark.pedantic(
        lambda: _sweep(sweep_cache, MX_MYRI10G), rounds=1, iterations=1)
    for s in series:
        pairs = list(zip(s.values, s.values[1:]))
        assert all(b >= a * 0.85 for a, b in pairs), (
            f"{s.label}: latency not near-monotone in message size"
        )
        assert s.values[-1] > s.values[0] * 100, (
            f"{s.label}: 2MB must dwarf 4B latency"
        )

"""End-to-end host cost: wall-clock of full engine workloads.

Two probes of the whole stack (MAD-MPI interface, matcher, collect layer,
optimization window, strategies, transfer layer, NIC models):

* a 1 KB ping-pong loop — the latency-critical path with an almost empty
  window, where the paper demands "negligible overhead on basic requests";
* a seeded irregular multi-flow replay — deep windows and aggregation,
  where the O(1) accounting work actually earns its keep.

Each reports host wall-clock *and* the simulated result, so a perf
regression and a fidelity regression are distinguishable at a glance.
"""

from repro.bench.perf import bench_pingpong, bench_random_traffic


def test_pingpong_wallclock(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_pingpong(iters=100, size=1024), rounds=1, iterations=1)
    emit(f"== Ping-pong host cost ({result['size']}B x {result['iters']}) ==\n"
         f"  {result['exchanges_per_s']:>12,.1f} exchanges/s wall-clock\n"
         f"  {result['sim_us_oneway']:>12.3f} us simulated one-way")
    assert result["exchanges_per_s"] > 100
    # Fidelity guard: host-side tuning must not move the simulated answer.
    assert 0 < result["sim_us_oneway"] < 1000


def test_random_traffic_wallclock(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_random_traffic(n_messages=200), rounds=1, iterations=1)
    emit(f"== Random-traffic host cost ({result['messages']} msgs) ==\n"
         f"  {result['messages_per_s']:>12,.1f} messages/s wall-clock\n"
         f"  {result['sim_us_makespan']:>12.1f} us simulated makespan")
    assert result["messages_per_s"] > 50

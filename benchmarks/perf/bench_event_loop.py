"""Raw simulation-kernel throughput (events processed per wall second).

The engine's fidelity work all happens inside :class:`repro.sim.Simulator`
callbacks, so the kernel's dispatch overhead is a floor under every other
wall-clock number in this suite.  Two profiles:

* a long self-refilling cascade of plain callbacks and Timeout events
  (serial dispatch, one event live at a time), and
* the completion storm — bursts of same-timestamp completions posted via
  ``schedule_batch`` the way the NIC layer posts them, measured on both
  the live calendar-queue kernel and the frozen seed heap kernel.  The
  storm's >= 10x speedup is the calendar-queue overhaul's headline claim.
"""

from repro.bench.perf import (
    STORM_SPEEDUP_FLOOR,
    bench_event_loop,
    bench_kernel_storm,
)


def test_event_loop_throughput(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_event_loop(n_events=100_000), rounds=1, iterations=1)
    emit(f"== Simulation kernel ==\n"
         f"  {result['events_per_s']:>12,.0f} events/s "
         f"({result['events']} events in {result['wall_s']:.3f}s)")
    # Sanity floor: even a loaded CI box clears 50k events/s; a regression
    # to linear queue behaviour would land far below this.
    assert result["events_per_s"] > 50_000


def test_kernel_storm_speedup(benchmark, emit):
    def storm_pair():
        # Interleaved best-of reps: host contention hits both kernels'
        # sample sets, and each best estimates uncontended capacity.
        new = bench_kernel_storm(rounds=600, reps=1)
        old = bench_kernel_storm(rounds=120, kernel="legacy", reps=1)
        for _ in range(3):
            n = bench_kernel_storm(rounds=600, reps=1)
            if n["events_per_s"] > new["events_per_s"]:
                new = n
            o = bench_kernel_storm(rounds=120, kernel="legacy", reps=1)
            if o["events_per_s"] > old["events_per_s"]:
                old = o
        return new, old

    new, old = benchmark.pedantic(storm_pair, rounds=1, iterations=1)
    speedup = new["events_per_s"] / old["events_per_s"]
    emit(f"== Completion storm (fanout {new['fanout']}) ==\n"
         f"  live   {new['events_per_s']:>12,.0f} completions/s\n"
         f"  legacy {old['events_per_s']:>12,.0f} completions/s\n"
         f"  speedup {speedup:.1f}x (floor {STORM_SPEEDUP_FLOOR:.0f}x)")
    assert speedup >= STORM_SPEEDUP_FLOOR

"""Raw simulation-kernel throughput (events processed per wall second).

The engine's fidelity work all happens inside :class:`repro.sim.Simulator`
callbacks, so the kernel's dispatch overhead is a floor under every other
wall-clock number in this suite.  This bench drains a long self-refilling
cascade of plain callbacks and Timeout events through ``run()``.
"""

from repro.bench.perf import bench_event_loop


def test_event_loop_throughput(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_event_loop(n_events=100_000), rounds=1, iterations=1)
    emit(f"== Simulation kernel ==\n"
         f"  {result['events_per_s']:>12,.0f} events/s "
         f"({result['events']} events in {result['wall_s']:.3f}s)")
    # Sanity floor: even a loaded CI box clears 50k events/s; a regression
    # to linear queue behaviour would land far below this.
    assert result["events_per_s"] > 50_000

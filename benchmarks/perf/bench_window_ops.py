"""Host-side window churn: the tentpole O(1)-accounting claim, measured.

Unlike the figure benches (simulated microseconds on the modeled 2006
testbed) this measures *wall-clock* cost of the optimization window's pull
path.  At a held backlog of 1000 wraps the live dict-indexed window must
beat the frozen legacy deque implementation by at least 2x — in practice
the gap is two orders of magnitude, because ``take`` went from a linear
``deque.remove`` to a hash delete and the byte/backlog counters are
incremental instead of full sums.
"""

import pytest

from repro.bench.perf import LegacyWindow, bench_window_ops
from repro.core.window import OptimizationWindow

BACKLOGS = (100, 1000)


@pytest.mark.parametrize("backlog", BACKLOGS)
def test_window_ops_vs_legacy(benchmark, emit, backlog):
    def run():
        new = bench_window_ops(OptimizationWindow, backlog=backlog,
                               rounds=2000)
        old = bench_window_ops(LegacyWindow, backlog=backlog, rounds=2000)
        return new, old

    new, old = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = new["ops_per_s"] / old["ops_per_s"]
    emit(f"== Window take+submit+query @ backlog {backlog} ==\n"
         f"  indexed window {new['ops_per_s']:>12,.0f} ops/s\n"
         f"  legacy window  {old['ops_per_s']:>12,.0f} ops/s\n"
         f"  speedup        {speedup:>12.1f}x")
    # The acceptance bar: the deep-backlog case must be at least 2x faster.
    if backlog >= 1000:
        assert speedup >= 2.0


def test_window_ops_scales_flat(benchmark, emit):
    """Throughput must not collapse with backlog depth (the O(1) claim)."""

    def run():
        return {b: bench_window_ops(OptimizationWindow, backlog=b,
                                    rounds=2000)["ops_per_s"]
                for b in (100, 1000, 5000)}

    by_backlog = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Indexed window throughput vs backlog depth =="]
    for b, ops in by_backlog.items():
        lines.append(f"  backlog {b:>5}: {ops:>12,.0f} ops/s")
    emit("\n".join(lines))
    # 50x deeper backlog may cost some cache locality but not an
    # asymptotic slowdown.  The legacy window degrades ~linearly here.
    assert by_backlog[5000] > by_backlog[100] / 5

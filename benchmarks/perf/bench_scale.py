"""Large-cluster scale bench: random traffic on a sparse 256-1024 hypercube.

The paper's testbeds stop at a handful of nodes; this bench asks how fast
the kernel chews through a *big* cluster's traffic.  A full-mesh
:class:`~repro.netsim.topology.Cluster` would need O(N^2) links, so
:mod:`repro.bench.scale` wires NICs into a hypercube (log2 N links per
node) and forwards seeded random frames hop by hop.  Makespans are
deterministic; only the wall clock varies.
"""

from repro.bench.scale import bench_scale


def test_scale_256_nodes(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_scale(n_nodes=256, n_frames=10_000),
        rounds=1, iterations=1)
    emit(f"== Scale: 256-node hypercube ==\n"
         f"  {result['events_per_s']:>12,.0f} events/s "
         f"({result['delivered']} frames delivered, "
         f"{result['forwarded']} forwards, "
         f"sim makespan {result['sim_us_makespan']:.1f} us)")
    assert result["delivered"] == result["n_frames"]
    # Loaded-CI floor; a regression to O(links) or O(queue) behaviour in
    # the kernel or NIC paths lands far below this.
    assert result["events_per_s"] > 20_000


def test_scale_1024_nodes(benchmark, emit):
    result = benchmark.pedantic(
        lambda: bench_scale(n_nodes=1024, n_frames=10_000),
        rounds=1, iterations=1)
    emit(f"== Scale: 1024-node hypercube ==\n"
         f"  {result['events_per_s']:>12,.0f} events/s "
         f"({result['delivered']} frames delivered, "
         f"{result['forwarded']} forwards, "
         f"sim makespan {result['sim_us_makespan']:.1f} us)")
    assert result["delivered"] == result["n_frames"]
    assert result["events_per_s"] > 20_000

"""NM502: frame-kind exhaustiveness (interprocedural).

Frame kinds are free-form strings by design (the NIC layer never inspects
them), so the failure mode is always the same: a kind that exists in the
registry but that some stage of the receive funnel silently ignores.  The
per-file NM304 catches typo'd *literals*; NM502 checks the round trip for
every **registered** kind, resolving evidence across module boundaries:

* **registry** — the ``FrameKind`` string-constant class is the source of
  truth; for the real tree (``repro/netsim/frames.py``) it must also stay
  in lockstep with the checker's own ``lifecycle.FRAME_KINDS`` mirror.
* **demux evidence** — some handler dispatches on the kind: a
  ``.kind ==``/``!=`` comparison (literal or ``FrameKind.X``), a
  ``.kind in NAME`` membership where ``NAME`` resolves to a string set
  (e.g. ``_SESSION_KINDS``), or membership in the *payload demux table*:
  ``data``/``rdv_req``/``rdv_ack``/``rdv_data`` frames are demultiplexed
  structurally by item type in ``TransferLayer.demux_frame``, so the rule
  verifies that function exists rather than expecting a kind comparison.
* **producer + header accounting** — at least one engine-side
  (``repro/core/``) ``Frame(kind=...)`` construction whose ``wire_size=``
  expression traces to header-spec fields or a ``wire_size()`` call
  (through plain local assignments).  Kind arguments passed as function
  *parameters* (``_send_session_frame(st, FrameKind.SESSION_HELLO)``) are
  resolved through the call graph.  ``rdv_req``/``rdv_ack`` are exempt:
  in the engine they ride as items inside DATA frames; standalone frames
  of those kinds exist only in the baseline models.
* **stats counter** — the kind's declared counter (below) is bumped in a
  module that produces it, so a frame class cannot silently vanish from
  the engine reports.  Handshake kinds are exempt by design (session
  traffic is accounted by ``heartbeats_sent`` alone; hello/welcome occur
  O(peers) times and would drown in the counters they'd need).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.analysis.base import Violation
from tools.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    kwarg_to_param,
    resolve_str_expr,
)
from tools.analysis.lifecycle import CHAOS_FAULT_KINDS, FRAME_KINDS

#: The real registry module; mirror coherence is only enforced there (a
#: fixture registry under another virtual path skips the mirror check).
REGISTRY_MODULE = "repro/netsim/frames.py"
REGISTRY_CLASS = "FrameKind"

#: Kinds demultiplexed structurally (by payload item type) in this
#: function — no ``.kind`` comparison exists for them by design.
PAYLOAD_DEMUX_KINDS = frozenset({"data", "rdv_req", "rdv_ack", "rdv_data"})
PAYLOAD_DEMUX_MODULE = "repro/core/transfer.py"
PAYLOAD_DEMUX_FUNCTION = "demux_frame"

#: Kinds with no engine-side standalone producer: rendezvous control
#: records ride inside DATA frames; only the baselines send them bare.
NO_ENGINE_PRODUCER = frozenset({"rdv_req", "rdv_ack"})

#: kind -> the EngineStats counter that accounts for it (None = exempt,
#: with the justification in the module docstring).
KIND_STATS: dict[str, str | None] = {
    "data": "phys_packets",
    "rdv_data": "rdv_bytes",
    "rel_ack": "acks_sent",
    "credit": "credits_granted",
    "nack": "nacks_sent",
    "heartbeat": "heartbeats_sent",
    "rdv_req": None,
    "rdv_ack": None,
    "session_hello": None,
    "session_welcome": None,
}

#: Attribute names that count as header-size accounting in a
#: ``wire_size=`` expression (HeaderSpec fields + Packet.wire_size()).
HEADER_ATTRS = frozenset({
    "global_header", "seg_header", "rdv_req", "rdv_ack", "rdv_data_header",
    "rel_header", "checksum", "credit_header", "session_header",
    "wire_size",
})

ENGINE_SCOPE = "repro/core/"


@dataclass
class _Evidence:
    """What the project shows for one kind."""

    consumed: bool = False
    produced_in_engine: bool = False
    header_accounted: bool = False
    stats_modules: set[str] = field(default_factory=set)
    #: Module + line of the registry constant (violation anchor).
    anchor: tuple[str, int] | None = None


class FrameKindRule:
    """Registered frame kinds round-trip through the receive funnel."""

    name = "framekinds"
    codes = {
        "NM502": "frame kind missing demux/producer/header/stats evidence "
                 "or used without being registered",
    }
    scope = ("repro/",)

    def __init__(self, project: Project) -> None:
        self.project = project
        self.violations: list[Violation] = []

    # -- driver ---------------------------------------------------------------
    def run(self) -> list[Violation]:
        registry = self._collect_registry()
        if not registry:
            return []
        evidence = {kind: _Evidence(anchor=anchor)
                    for kind, anchor in registry.items()}
        self._check_mirror(registry)
        for mod in self.project.modules.values():
            if not mod.path.startswith("repro/"):
                continue
            self._scan_module(mod, evidence)
        self._apply_payload_demux(evidence)
        for kind in sorted(evidence):
            self._judge(kind, evidence[kind])
        return self.violations

    # -- registry -------------------------------------------------------------
    def _collect_registry(self) -> dict[str, tuple[str, int]]:
        """kind -> (report path, line) from every ``FrameKind`` class."""
        out: dict[str, tuple[str, int]] = {}
        for mod in self.project.modules.values():
            if REGISTRY_CLASS not in mod.str_const_classes:
                continue
            for node in mod.tree.body:
                if not (isinstance(node, ast.ClassDef)
                        and node.name == REGISTRY_CLASS):
                    continue
                for item in node.body:
                    if (isinstance(item, ast.Assign)
                            and len(item.targets) == 1
                            and isinstance(item.targets[0], ast.Name)
                            and isinstance(item.value, ast.Constant)
                            and isinstance(item.value.value, str)):
                        out.setdefault(item.value.value,
                                       (mod.report_path, item.lineno))
        return out

    def _check_mirror(self, registry: dict[str, tuple[str, int]]) -> None:
        """The checker's own FRAME_KINDS mirror must match the real class."""
        real = self.project.modules.get(REGISTRY_MODULE)
        if real is None or REGISTRY_CLASS not in real.str_const_classes:
            return
        declared = frozenset(
            real.str_const_classes[REGISTRY_CLASS].values())
        for kind in sorted(declared - FRAME_KINDS):
            path, line = registry[kind]
            self.violations.append(Violation(
                path=path, line=line, col=0, code="NM502",
                message=f"frame kind {kind!r} is not mirrored in "
                        "tools/analysis/lifecycle.FRAME_KINDS; the NM304 "
                        "literal check cannot see it",
                checker=self.name))
        for kind in sorted(FRAME_KINDS - declared):
            self.violations.append(Violation(
                path=real.report_path, line=1, col=0, code="NM502",
                message=f"tools/analysis/lifecycle.FRAME_KINDS registers "
                        f"{kind!r} but FrameKind no longer defines it "
                        "(stale mirror entry)",
                checker=self.name))

    # -- evidence collection --------------------------------------------------
    def _scan_module(
        self, mod: ModuleInfo, evidence: dict[str, _Evidence]
    ) -> None:
        for info in _functions_of(mod):
            for node in ast.walk(info.node):
                if isinstance(node, ast.Compare):
                    self._scan_compare(mod, info, node, evidence)
                elif isinstance(node, ast.Call):
                    self._scan_call(mod, info, node, evidence)

    def _scan_compare(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        node: ast.Compare,
        evidence: dict[str, _Evidence],
    ) -> None:
        operands = [node.left, *node.comparators]
        if not any(isinstance(o, ast.Attribute) and o.attr == "kind"
                   for o in operands):
            return
        for op, operand in zip(node.ops, node.comparators, strict=False):
            resolved: frozenset[str] | None = None
            if isinstance(op, (ast.Eq, ast.NotEq)):
                one = resolve_str_expr(self.project, mod, operand)
                if one is None and isinstance(node.left, ast.expr):
                    one = resolve_str_expr(self.project, mod, node.left)
                if one is not None:
                    resolved = frozenset({one})
            elif isinstance(op, (ast.In, ast.NotIn)):
                if isinstance(operand, ast.Name):
                    resolved = self.project.resolve_str_set(mod, operand.id)
            if resolved is None:
                continue
            for kind in resolved:
                ev = evidence.get(kind)
                if ev is None:
                    # ``.kind`` is also the field name of chaos *fault*
                    # records — a separate namespace policed by NM305.
                    if kind in CHAOS_FAULT_KINDS:
                        continue
                    self.violations.append(Violation(
                        path=mod.report_path, line=node.lineno,
                        col=node.col_offset, code="NM502",
                        message=f"handler dispatches on frame kind {kind!r} "
                                "which is not registered in FrameKind",
                        checker=self.name))
                else:
                    ev.consumed = True

    def _scan_call(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        node: ast.Call,
        evidence: dict[str, _Evidence],
    ) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name != "Frame":
            return
        kind_expr = None
        wire_expr = None
        for kw in node.keywords:
            if kw.arg == "kind":
                kind_expr = kw.value
            elif kw.arg == "wire_size":
                wire_expr = kw.value
        if kind_expr is None:
            return
        kinds = self._resolve_kind_expr(mod, info, kind_expr)
        accounted = wire_expr is not None and \
            self._is_header_accounted(info, wire_expr)
        in_engine = mod.path.startswith(ENGINE_SCOPE)
        for kind in kinds:
            ev = evidence.get(kind)
            if ev is None:
                self.violations.append(Violation(
                    path=mod.report_path, line=node.lineno,
                    col=node.col_offset, code="NM502",
                    message=f"Frame constructed with kind {kind!r} which is "
                            "not registered in FrameKind",
                    checker=self.name))
                continue
            if in_engine:
                ev.produced_in_engine = True
                ev.stats_modules.add(mod.path)
                if accounted:
                    ev.header_accounted = True

    def _resolve_kind_expr(
        self, mod: ModuleInfo, info: FunctionInfo, expr: ast.expr
    ) -> frozenset[str]:
        direct = resolve_str_expr(self.project, mod, expr)
        if direct is not None:
            return frozenset({direct})
        # A parameter of the enclosing function: resolve through call sites
        # (e.g. ``_send_session_frame(st, FrameKind.SESSION_HELLO)``).
        if isinstance(expr, ast.Name) and expr.id in info.params:
            return self._kinds_from_call_sites(info, expr.id)
        return frozenset()

    def _kinds_from_call_sites(
        self, callee: FunctionInfo, param: str
    ) -> frozenset[str]:
        out: set[str] = set()
        position = callee.params.index(param)
        for mod in self.project.modules.values():
            for info in _functions_of(mod):
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    if callee not in self.project.resolve_callable(
                            mod, info.cls, node.func):
                        continue
                    offset = 1 if (isinstance(node.func, ast.Attribute)
                                   and callee.is_method) else 0
                    idx = position - offset
                    arg: ast.expr | None = None
                    if 0 <= idx < len(node.args):
                        arg = node.args[idx]
                    else:
                        for kw in node.keywords:
                            if kw.arg == param:
                                arg = kw.value
                    if arg is None:
                        continue
                    value = resolve_str_expr(self.project, mod, arg)
                    if value is not None:
                        out.add(value)
        return frozenset(out)

    def _is_header_accounted(
        self, info: FunctionInfo, expr: ast.expr
    ) -> bool:
        """``wire_size=`` traces to header fields or a wire_size() call."""
        seen: set[str] = set()

        def check(e: ast.expr, depth: int) -> bool:
            if depth > 4:
                return False
            for node in ast.walk(e):
                if isinstance(node, ast.Attribute) \
                        and node.attr in HEADER_ATTRS:
                    return True
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Name) \
                        and node.func.id == "wire_size":
                    return True
            # Plain local name: follow its assignment in this function.
            for node in ast.walk(e):
                if isinstance(node, ast.Name) and node.id not in seen:
                    seen.add(node.id)
                    for stmt in ast.walk(info.node):
                        if isinstance(stmt, ast.Assign) \
                                and len(stmt.targets) == 1 \
                                and isinstance(stmt.targets[0], ast.Name) \
                                and stmt.targets[0].id == node.id \
                                and check(stmt.value, depth + 1):
                            return True
                        if isinstance(stmt, ast.AugAssign) \
                                and isinstance(stmt.target, ast.Name) \
                                and stmt.target.id == node.id \
                                and check(stmt.value, depth + 1):
                            return True
            return False

        return check(expr, 0)

    # -- judgment -------------------------------------------------------------
    def _apply_payload_demux(self, evidence: dict[str, _Evidence]) -> None:
        """Item-type-dispatched kinds count as consumed iff the declared
        demux function actually exists where the table says it does."""
        mod = self.project.modules.get(PAYLOAD_DEMUX_MODULE)
        if mod is None:
            return
        present = any(PAYLOAD_DEMUX_FUNCTION in methods
                      for methods in mod.classes.values()) \
            or PAYLOAD_DEMUX_FUNCTION in mod.functions
        if not present:
            return
        for kind in PAYLOAD_DEMUX_KINDS:
            ev = evidence.get(kind)
            if ev is not None:
                ev.consumed = True

    def _judge(self, kind: str, ev: _Evidence) -> None:
        missing: list[str] = []
        if not ev.consumed:
            missing.append("no demux handler dispatches on it")
        if not ev.produced_in_engine and kind not in NO_ENGINE_PRODUCER:
            missing.append("no engine-side Frame(kind=...) producer")
        elif ev.produced_in_engine and not ev.header_accounted:
            missing.append("no producer charges header bytes in wire_size=")
        counter = KIND_STATS.get(kind, "")
        if counter and ev.produced_in_engine \
                and not self._counter_bumped(counter, ev.stats_modules):
            missing.append(f"producing module never bumps stats.{counter}")
        if not missing:
            return
        path, line = ev.anchor if ev.anchor is not None else ("<registry>", 1)
        self.violations.append(Violation(
            path=path, line=line, col=0, code="NM502",
            message=f"registered frame kind {kind!r}: " + "; ".join(missing),
            checker=self.name))

    def _counter_bumped(self, counter: str, modules: set[str]) -> bool:
        for path in modules:
            mod = self.project.modules.get(path)
            if mod is None:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.AugAssign) \
                        and isinstance(node.target, ast.Attribute) \
                        and node.target.attr == counter:
                    return True
        return False


def _functions_of(mod: ModuleInfo) -> list[FunctionInfo]:
    out = list(mod.functions.values())
    for methods in mod.classes.values():
        out.extend(methods.values())
    return out

"""Event-loop hygiene checker (NM4xx).

Everything under ``repro/core``, ``repro/sim`` and ``repro/netsim`` runs
inside (or is reachable from) simulator callbacks: NIC idle hooks, frame
arrival handlers, retransmit timers.  A single blocking call there stalls
the *host* process while the simulated clock stands still — the classic
"simulation that takes a day because a print sat in the frame handler".
The rule:

* **NM401** — no blocking or I/O-performing calls in the scheduling core:
  ``time.sleep``, ``input()``, ``open()``, ``print()``, ``breakpoint()``,
  ``os.system``, any ``subprocess.*`` / ``socket.*`` use.  Reporting
  belongs in the CLI/bench layers; trace *export* helpers that run after
  the event loop may suppress with a justification
  (``# nm: allow[NM401] -- …``).
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker, attr_chain_root

_BLOCKING_BUILTINS = frozenset({"input", "open", "print", "breakpoint"})
_BLOCKING_MODULES = frozenset({"subprocess", "socket"})
_BLOCKING_ATTRS = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"system", "popen", "fork", "wait", "waitpid"}),
}


class BlockingChecker(Checker):
    name = "blocking"
    codes = {
        "NM401": "blocking or I/O call reachable from kernel callbacks",
    }
    scope = ("repro/core/", "repro/sim/", "repro/netsim/")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_BUILTINS:
            self.report(node, "NM401",
                        f"{func.id}() in the scheduling core: kernel "
                        "callbacks must never block or perform I/O")
        elif isinstance(func, ast.Attribute):
            root = attr_chain_root(func)
            if isinstance(root, ast.Name):
                if root.id in _BLOCKING_MODULES:
                    self.report(node, "NM401",
                                f"{root.id}.{func.attr}() in the scheduling "
                                "core: kernel callbacks must never block or "
                                "perform I/O")
                elif func.attr in _BLOCKING_ATTRS.get(root.id, ()):
                    self.report(node, "NM401",
                                f"{root.id}.{func.attr}() in the scheduling "
                                "core: kernel callbacks must never block or "
                                "perform I/O")
        self.generic_visit(node)

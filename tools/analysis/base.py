"""Shared machinery for the engine-invariant checkers.

A checker is an :class:`ast.NodeVisitor` that walks one parsed module and
reports :class:`Violation` records.  Checkers are *scoped*: each declares
which repo-relative module paths it applies to (the determinism rules bind
the scheduling core, not the wall-clock benchmarks), and the engine skips
files outside a checker's scope.

Paths are always **virtual repo-relative POSIX paths** such as
``repro/core/window.py`` — the ``src/`` prefix is stripped, so scope rules
and fixtures speak the same language.  A fixture file can impersonate any
location in the tree with a ``# nm-path: repro/core/strategies/evil.py``
comment in its first lines (see ``tests/analysis/fixtures/``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a place in the tree that breaks an engine invariant."""

    path: str
    line: int
    col: int
    code: str
    message: str
    checker: str = ""
    suppressed: bool = False
    justification: str = ""

    def render(self) -> str:
        tail = f"  [suppressed: {self.justification}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}{tail}"


@dataclass
class FileContext:
    """Everything a checker may consult about the module under analysis."""

    path: str                       # virtual repo-relative POSIX path
    source: str
    tree: ast.Module
    real_path: str = ""             # on-disk path (for reporting)

    @property
    def report_path(self) -> str:
        return self.real_path or self.path


class Checker(ast.NodeVisitor):
    """Base class: subclass, set ``name``/``codes``, visit, ``report()``.

    ``scope`` is a tuple of virtual-path prefixes the checker applies to;
    an empty tuple means the whole tree.  ``codes`` maps each code the
    checker may emit to a one-line description (used by ``--list`` and the
    docs test).
    """

    name: str = ""
    codes: dict[str, str] = {}
    scope: tuple[str, ...] = ()

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: list[Violation] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not cls.scope:
            return True
        return any(path.startswith(prefix) for prefix in cls.scope)

    def report(self, node: ast.AST, code: str, message: str) -> None:
        if code not in self.codes:
            raise ValueError(f"{self.name} emitted undeclared code {code}")
        self.violations.append(Violation(
            path=self.ctx.report_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            checker=self.name,
        ))

    def run(self) -> list[Violation]:
        self.visit(self.ctx.tree)
        return self.violations


def attr_chain_root(node: ast.expr) -> ast.expr:
    """The leftmost expression of an attribute chain (``a`` in ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node


def is_self_access(node: ast.Attribute) -> bool:
    """True for ``self.X`` / ``cls.X`` (direct, not ``self.other.X``)."""
    return isinstance(node.value, ast.Name) and node.value.id in ("self", "cls")


def assignment_targets(node: ast.AST) -> list[ast.expr]:
    """The expressions written to by an assignment-like statement."""
    if isinstance(node, ast.Assign):
        out: list[ast.expr] = []
        for target in node.targets:
            out.extend(_flatten_target(target))
        return out
    if isinstance(node, ast.AugAssign | ast.AnnAssign):
        return _flatten_target(node.target)
    if isinstance(node, ast.Delete):
        out = []
        for target in node.targets:
            out.extend(_flatten_target(target))
        return out
    return []


def _flatten_target(target: ast.expr) -> list[ast.expr]:
    if isinstance(target, ast.Tuple | ast.List):
        out: list[ast.expr] = []
        for elt in target.elts:
            out.extend(_flatten_target(elt))
        return out
    if isinstance(target, ast.Starred):
        return _flatten_target(target.value)
    return [target]


@dataclass
class ClassStack:
    """Tracks whether the visitor currently sits inside a class body."""

    classes: list[str] = field(default_factory=list)

    @property
    def in_class_body(self) -> bool:
        return bool(self.classes)

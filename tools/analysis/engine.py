"""The analysis engine: file walking, suppression comments, reporting.

Run the whole pass with ``python -m tools.analysis [paths…]`` (defaults to
``src/repro``), or call :func:`check_source` / :func:`check_paths` from
tests.  Exit status is non-zero when any unsuppressed violation exists.

Suppression
-----------
A finding is suppressed by a trailing comment **on the flagged line**::

    with open(path, "w") as fh:  # nm: allow[NM401] -- export runs after run()

The justification after ``--`` is mandatory; a bare ``# nm: allow[NM401]``
is itself a violation (**NM001**) so suppressions stay auditable.  Files
that fail to parse report **NM000**.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from tools.analysis.base import Checker, FileContext, Violation
from tools.analysis.blocking import BlockingChecker
from tools.analysis.counters import CounterChecker
from tools.analysis.determinism import DeterminismChecker
from tools.analysis.lifecycle import LifecycleChecker

ALL_CHECKERS: tuple[type[Checker], ...] = (
    DeterminismChecker,
    CounterChecker,
    LifecycleChecker,
    BlockingChecker,
)

#: Engine-level codes (not tied to one checker).
ENGINE_CODES = {
    "NM000": "file does not parse",
    "NM001": "suppression comment without a justification",
}

_SUPPRESS_RE = re.compile(
    r"#\s*nm:\s*allow\[(?P<codes>[A-Z0-9, ]+)\]\s*(?:--\s*(?P<why>.*\S))?"
)

#: First-lines marker letting a fixture impersonate a tree location.
_VPATH_RE = re.compile(r"^#\s*nm-path:\s*(?P<path>\S+)\s*$", re.MULTILINE)


@dataclass
class Suppression:
    line: int
    codes: tuple[str, ...]
    justification: str


@dataclass
class Report:
    """Outcome of one analysis run."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: Report) -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def _parse_suppressions(source: str, path: str) -> tuple[dict[int, Suppression], list[Violation]]:
    """Per-line suppressions plus violations for malformed ones."""
    out: dict[int, Suppression] = {}
    bad: list[Violation] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            codes = tuple(c.strip() for c in m.group("codes").split(",") if c.strip())
            why = (m.group("why") or "").strip()
            line = tok.start[0]
            if not why:
                bad.append(Violation(
                    path=path, line=line, col=tok.start[1], code="NM001",
                    message="suppression without a justification: write "
                            "`# nm: allow[CODE] -- why this is safe`",
                    checker="engine",
                ))
                continue
            out[line] = Suppression(line=line, codes=codes, justification=why)
    except tokenize.TokenizeError:
        pass  # the parse error is reported as NM000 by check_source
    return out, bad


def virtual_path(source: str, fallback: str) -> str:
    """The tree location this module claims (``# nm-path:``) or ``fallback``."""
    m = _VPATH_RE.search(source[:2048])
    if m:
        return m.group("path")
    return fallback


def check_source(
    source: str,
    path: str,
    checkers: Sequence[type[Checker]] = ALL_CHECKERS,
    real_path: str = "",
) -> Report:
    """Analyze one module's source; ``path`` is the virtual repo path."""
    report = Report(files_checked=1)
    display = real_path or path
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        report.violations.append(Violation(
            path=display, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            code="NM000", message=f"file does not parse: {exc.msg}",
            checker="engine",
        ))
        return report
    suppressions, bad = _parse_suppressions(source, display)
    report.violations.extend(bad)
    ctx = FileContext(path=path, source=source, tree=tree, real_path=real_path)
    for cls in checkers:
        if not cls.applies_to(path):
            continue
        for violation in cls(ctx).run():
            sup = suppressions.get(violation.line)
            if sup is not None and violation.code in sup.codes:
                report.suppressed.append(Violation(
                    path=violation.path, line=violation.line,
                    col=violation.col, code=violation.code,
                    message=violation.message, checker=violation.checker,
                    suppressed=True, justification=sup.justification,
                ))
            else:
                report.violations.append(violation)
    return report


def check_file(
    filename: str,
    root: str = ".",
    checkers: Sequence[type[Checker]] = ALL_CHECKERS,
) -> Report:
    """Analyze one file; its virtual path is derived from ``root``."""
    with open(filename, encoding="utf-8") as fh:
        source = fh.read()
    rel = os.path.relpath(os.path.abspath(filename), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    return check_source(source, virtual_path(source, rel), checkers,
                        real_path=filename)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__"
                                     and not d.startswith("."))
                out.extend(os.path.join(dirpath, f)
                           for f in sorted(filenames) if f.endswith(".py"))
        else:
            out.append(path)
    return out


def check_paths(
    paths: Sequence[str],
    root: str = ".",
    checkers: Sequence[type[Checker]] = ALL_CHECKERS,
) -> Report:
    """Analyze every ``.py`` file under ``paths``."""
    report = Report()
    for filename in iter_python_files(paths):
        report.merge(check_file(filename, root=root, checkers=checkers))
    return report


def describe_checkers(checkers: Sequence[type[Checker]] | None = None) -> str:
    """Human-readable catalogue of checkers, codes, and scopes.

    Covers the per-file checkers AND the interprocedural (NM5xx) rules —
    imported lazily, because the interprocedural modules import this one.
    """
    if checkers is None:
        from tools.analysis.interproc import INTERPROC_CHECKERS

        checkers = (*ALL_CHECKERS, *INTERPROC_CHECKERS)
    lines = []
    for cls in checkers:
        scope = ", ".join(cls.scope) if cls.scope else "whole tree"
        lines.append(f"{cls.name}  (scope: {scope})")
        for code, desc in sorted(cls.codes.items()):
            lines.append(f"  {code}  {desc}")
    lines.append("engine")
    for code, desc in sorted(ENGINE_CODES.items()):
        lines.append(f"  {code}  {desc}")
    return "\n".join(lines)

"""Engine invariant checker: a repo-specific static-analysis pass.

The scheduling engine's correctness rests on invariants no general-purpose
linter knows about — deterministic simulation, paired incremental window
counters, API-only lifecycle transitions, non-blocking kernel callbacks.
This package makes them machine-checked on every PR:

    python -m tools.analysis              # analyze src/repro
    python -m tools.analysis --list       # catalogue of checkers and codes

See ``docs/STATIC_ANALYSIS.md`` for the invariant rationale and the
suppression syntax.
"""

from tools.analysis.base import Checker, FileContext, Violation
from tools.analysis.blocking import BlockingChecker
from tools.analysis.counters import CounterChecker
from tools.analysis.determinism import DeterminismChecker
from tools.analysis.engine import (
    ALL_CHECKERS,
    ENGINE_CODES,
    Report,
    check_file,
    check_paths,
    check_source,
    describe_checkers,
)
from tools.analysis.lifecycle import LifecycleChecker

__all__ = [
    "ALL_CHECKERS",
    "ENGINE_CODES",
    "BlockingChecker",
    "Checker",
    "CounterChecker",
    "DeterminismChecker",
    "FileContext",
    "LifecycleChecker",
    "Report",
    "Violation",
    "check_file",
    "check_paths",
    "check_source",
    "describe_checkers",
]

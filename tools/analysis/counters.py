"""Counter-pairing checker (NM2xx).

PR 2 replaced the window's linear accounting with incrementally-maintained
counters (global/per-rail byte totals, per-destination backlog).  Those
counters are only correct while **every** mutation goes through the paired
mutator methods (``OptimizationWindow._insert`` / ``take``) — one stray
``window._count = 0`` from a strategy and the O(1) bookkeeping silently
diverges from the real contents, which no test catches until a scheduling
decision goes wrong under load.  The rules:

* **NM201** — the window's private storage and counters
  (``_common``/``_dedicated``/``_by_dest``/byte totals) may be *written*
  only inside ``repro/core/window.py``, or via ``self`` in a class that
  owns fields of the same name (the perf harness's legacy window).
* **NM202** — ``pending_bytes`` / ``backlog`` / ``backlog_bytes`` are
  accessor *methods*; assigning an attribute of that name anywhere
  shadows the accessor and is always a bug.
* **NM203** — ``EngineStats`` counters are monotonic: only ``+=`` on a
  ``*.stats.<counter>`` target is a legal mutation.  Plain assignment
  (resets) would desynchronize A/B comparisons between engines.
* **NM204** — only the engine layers in ``repro/core/`` (and not the
  strategies) may bump ``EngineStats`` counters: strategies observe the
  window through :class:`SchedulingContext` and must stay side-effect
  free outside their own tuning state.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker, assignment_targets, is_self_access

#: Private storage + incremental counters of ``OptimizationWindow``.
WINDOW_PRIVATE = frozenset({
    "_common", "_dedicated", "_by_dest",
    "_count", "_total_bytes", "_common_bytes", "_dedicated_bytes",
    "_dest_bytes",
    "_blocked_dests", "_dest_exempt", "_exempt_floor", "_gated",
})

#: Read-only accessor methods of the window (never data attributes).
WINDOW_ACCESSORS = frozenset({"pending_bytes", "backlog", "backlog_bytes"})

#: The counters of ``repro.core.engine.EngineStats``.
STATS_COUNTERS = frozenset({
    "phys_packets", "items_sent", "aggregated_packets", "aggregated_segments",
    "anticipated_hits", "eager_bytes", "rdv_bytes", "wire_bytes",
    "recv_copies", "recv_copy_bytes",
    "retransmits", "duplicates_suppressed", "failovers", "rails_quarantined",
    "rails_reprobed", "acks_sent", "corrupt_discards", "transport_failures",
    "credit_stalls", "window_full_events", "unexpected_overflows",
    "credits_granted", "nacks_sent", "nack_resends",
    "peers_suspected", "peers_dead", "epochs_started",
    "stale_frames_fenced", "heartbeats_sent",
    "peers_recovered", "frames_parked",
    "rtt_samples", "rto_backoffs", "hedges_sent", "hedges_won",
    "deadlines_expired",
})

WINDOW_MODULE = "repro/core/window.py"

#: Modules allowed to increment EngineStats counters: the engine layers.
STATS_MUTATOR_PREFIX = "repro/core/"
STATS_FORBIDDEN_PREFIX = "repro/core/strategies/"


def _is_stats_attr(node: ast.Attribute) -> bool:
    """True for a syntactic ``<...>.stats.X`` or ``stats.X`` target."""
    base = node.value
    if isinstance(base, ast.Name):
        return base.id == "stats"
    if isinstance(base, ast.Attribute):
        return base.attr == "stats"
    return False


class CounterChecker(Checker):
    name = "counters"
    codes = {
        "NM201": "window-private counter/storage written outside window.py",
        "NM202": "window accessor method shadowed by attribute assignment",
        "NM203": "EngineStats counter mutated other than by +=",
        "NM204": "EngineStats counter bumped outside the core engine layers",
    }
    scope = ("repro/",)

    def _check_write(self, stmt: ast.AST, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        attr = target.attr
        if attr in WINDOW_PRIVATE:
            if self.ctx.path != WINDOW_MODULE and not is_self_access(target):
                self.report(target, "NM201",
                            f"write to window-private {attr!r} outside "
                            "repro/core/window.py; use submit()/take()/"
                            "restore() so the incremental counters stay "
                            "paired")
        if attr in WINDOW_ACCESSORS:
            self.report(target, "NM202",
                        f"assignment to {attr!r} shadows the window's O(1) "
                        "accessor method; counters may only change through "
                        "the paired mutators")
        if attr in STATS_COUNTERS and _is_stats_attr(target):
            if not (isinstance(stmt, ast.AugAssign)
                    and isinstance(stmt.op, ast.Add)):
                self.report(target, "NM203",
                            f"EngineStats.{attr} must only be incremented "
                            "(+=); resets/assignment desynchronize engine "
                            "comparisons")
            elif (self.ctx.path.startswith(STATS_FORBIDDEN_PREFIX)
                    or not self.ctx.path.startswith(STATS_MUTATOR_PREFIX)):
                self.report(target, "NM204",
                            f"EngineStats.{attr} bumped from "
                            f"{self.ctx.path}; only the core engine layers "
                            "account engine activity (strategies must stay "
                            "side-effect free)")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in assignment_targets(node):
            self._check_write(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(node, target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(node, target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in assignment_targets(node):
            self._check_write(node, target)
        self.generic_visit(node)

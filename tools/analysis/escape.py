"""NM501: write-owner escape (interprocedural).

The per-file owner rules (NM201/NM302) match *assignments to attributes*:
``win._by_dest[d] = q`` from a strategy never matches, because the
assignment target is a subscript; ``d = win._by_dest; d.pop(k)`` never
matches, because the mutation happens through a local alias; and
``helper(win._common)`` never matches if ``helper`` lives in another
module and does the ``append`` there.  NM501 closes all three holes: an
owned field of another layer may not be *container-mutated* outside its
owner module, whether directly, through an alias, or through a helper
chain (resolved via the project call graph's mutation summaries).

Owner groups reuse the per-file configuration so the two passes cannot
drift: the window's private storage, the event kernel's private state
(both sanctioned owner modules), and every ``_WRITE_OWNERS`` field group.
``self``-access is exempt, exactly as in NM201/NM301 — a layer may always
mutate its *own* state; the rule is about reaching across a boundary.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Violation, is_self_access
from tools.analysis.callgraph import (
    MUTATING_METHODS,
    FunctionInfo,
    ModuleInfo,
    Project,
    arg_to_param,
)
from tools.analysis.counters import WINDOW_MODULE, WINDOW_PRIVATE
from tools.analysis.lifecycle import _WRITE_OWNERS, EVENT_MODULES, EVENT_PRIVATE

#: (owner modules, owned fields, scope prefixes the rule applies to).
#: The narrowed scopes mirror NM302: baseline models legitimately reuse
#: engine field names for their own local state machines.
_NM302_SCOPE = ("repro/core/", "repro/madmpi/", "repro/chaos/")
OWNER_GROUPS: tuple[tuple[frozenset[str], frozenset[str],
                          tuple[str, ...]], ...] = (
    (frozenset({WINDOW_MODULE}), WINDOW_PRIVATE, ("repro/",)),
    (EVENT_MODULES, EVENT_PRIVATE, ("repro/",)),
    *(
        (frozenset({owner}), fields, _NM302_SCOPE)
        for owner, fields in sorted(_WRITE_OWNERS.items())
    ),
)


class WriteOwnerEscapeRule:
    """Container mutation of another layer's owned field (see module doc)."""

    name = "escape"
    codes = {
        "NM501": "owned field container-mutated outside its owner module "
                 "(directly, via an alias, or via a helper chain)",
    }
    scope = ("repro/",)

    def __init__(self, project: Project) -> None:
        self.project = project
        self.violations: list[Violation] = []

    def run(self) -> list[Violation]:
        summaries = self.project.mutation_summaries()
        for mod in self.project.modules.values():
            if not any(mod.path.startswith(p) for p in self.scope):
                continue
            for info in _functions_of(mod):
                self._check_function(mod, info, summaries)
        return self.violations

    # -- per-function analysis ----------------------------------------------
    def _owned_by_other(
        self, mod: ModuleInfo, node: ast.Attribute
    ) -> str | None:
        """The owner module if ``node`` names a field owned elsewhere."""
        if is_self_access(node):
            return None
        for owners, fields, scope in OWNER_GROUPS:
            if node.attr not in fields or mod.path in owners:
                continue
            if any(mod.path.startswith(p) for p in scope):
                return sorted(owners)[0]
        return None

    def _check_function(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        summaries: dict[int, frozenset[int]],
    ) -> None:
        #: local name -> (field, owner) for ``x = other.owned_field``.
        tainted: dict[str, tuple[str, str]] = {}

        def taint_of(expr: ast.expr) -> tuple[str, str] | None:
            if isinstance(expr, ast.Attribute):
                owner = self._owned_by_other(mod, expr)
                if owner is not None:
                    return (expr.attr, owner)
                return None
            if isinstance(expr, ast.Name):
                return tainted.get(expr.id)
            return None

        # ast.walk is breadth-first; taint tracking needs source order.
        nodes = sorted(
            ast.walk(info.node),
            key=lambda n: (getattr(n, "lineno", 0),
                           getattr(n, "col_offset", 0)),
        )
        for node in nodes:
            # Alias creation / invalidation.
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                source = taint_of(node.value)
                if source is not None and not isinstance(node.value, ast.Name):
                    tainted[name] = source
                elif isinstance(node.value, ast.Name) \
                        and node.value.id in tainted:
                    tainted[name] = tainted[node.value.id]
                elif name in tainted:
                    del tainted[name]
            # Direct or aliased mutating method call.
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_METHODS:
                hit = taint_of(node.func.value)
                if hit is not None:
                    field, owner = hit
                    self._report(mod, node, field, owner,
                                 f".{node.func.attr}() mutation")
            # Subscript store / delete / augassign through field or alias.
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = node.targets if not isinstance(node, ast.AugAssign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        hit = taint_of(target.value)
                        if hit is not None:
                            field, owner = hit
                            self._report(mod, target, field, owner,
                                         "subscript store")
            # Helper chain: owned field (or alias) passed to a mutator.
            if isinstance(node, ast.Call):
                callees = self.project.resolve_callable(mod, info.cls,
                                                        node.func)
                if not callees:
                    continue
                for i, arg in enumerate(node.args):
                    hit = taint_of(arg)
                    if hit is None:
                        continue
                    for callee in callees:
                        pos = arg_to_param(callee, node, i)
                        if pos is None:
                            continue
                        if pos in summaries.get(id(callee.node), ()):
                            field, owner = hit
                            self._report(
                                mod, node, field, owner,
                                f"helper chain via "
                                f"{callee.module}:{callee.qualname}()")
                            break

    def _report(self, mod: ModuleInfo, node: ast.AST, field: str,
                owner: str, how: str) -> None:
        self.violations.append(Violation(
            path=mod.report_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code="NM501",
            message=f"{how} of {field!r}, owned by {owner}; mutate it "
                    "through the owner's API (aliasing does not transfer "
                    "ownership)",
            checker=self.name,
        ))


def _functions_of(mod: ModuleInfo) -> list[FunctionInfo]:
    out = list(mod.functions.values())
    for methods in mod.classes.values():
        out.extend(methods.values())
    return out

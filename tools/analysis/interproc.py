"""Driver for the interprocedural (NM5xx) pass.

Unlike the per-file checkers, these rules need the whole project in view
— a symbol table and call graph built by :mod:`tools.analysis.callgraph`
— so they run as a separate pass over a :class:`Project` rather than a
:class:`FileContext`.  ``python -m tools.analysis --interprocedural``
adds this pass to the per-file one; tests call :func:`check_project`
directly so fixture directories can exercise one rule without the
per-file codes contaminating the result.

Suppression works exactly as in the per-file pass: a trailing
``# nm: allow[NM5xx] -- why`` on the flagged line.  Malformed
suppressions are NOT re-reported here (the per-file pass already emits
NM001 for them).
"""

from __future__ import annotations

from collections.abc import Sequence

from tools.analysis.base import Violation
from tools.analysis.callgraph import Project, build_project
from tools.analysis.engine import Report
from tools.analysis.escape import WriteOwnerEscapeRule
from tools.analysis.framekinds import FrameKindRule
from tools.analysis.statsbalance import StatsBalanceRule
from tools.analysis.timers import TimerGenRule

INTERPROC_CHECKERS = (
    WriteOwnerEscapeRule,
    FrameKindRule,
    TimerGenRule,
    StatsBalanceRule,
)


def check_project(
    paths: Sequence[str],
    root: str = ".",
    checkers: Sequence[type] = INTERPROC_CHECKERS,
) -> Report:
    """Run the interprocedural rules over every ``.py`` file in ``paths``."""
    project = build_project(list(paths), root=root)
    return run_rules(project, checkers)


def run_rules(
    project: Project,
    checkers: Sequence[type] = INTERPROC_CHECKERS,
) -> Report:
    report = Report(files_checked=len(project.modules))
    by_report_path = {mod.report_path: mod for mod in project.modules.values()}
    for cls in checkers:
        rule = cls(project)
        for violation in rule.run():
            mod = by_report_path.get(violation.path)
            sup = mod.suppressions.get(violation.line) if mod else None
            if sup is not None and violation.code in sup.codes:
                report.suppressed.append(Violation(
                    path=violation.path, line=violation.line,
                    col=violation.col, code=violation.code,
                    message=violation.message, checker=violation.checker,
                    suppressed=True, justification=sup.justification,
                ))
            else:
                report.violations.append(violation)
    return report

"""CLI for the engine invariant checker (``python -m tools.analysis``)."""

from __future__ import annotations

import argparse
import sys

from tools.analysis.engine import check_paths, describe_checkers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Static analysis of the nmad reproduction's engine "
                    "invariants (determinism, counter pairing, lifecycle "
                    "discipline, event-loop hygiene).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--list", action="store_true",
                        help="list checkers and violation codes, then exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "`# nm: allow[...]` comments")
    args = parser.parse_args(argv)

    if args.list:
        print(describe_checkers())
        return 0

    report = check_paths(args.paths or ["src/repro"])
    for violation in sorted(report.violations):
        print(violation.render())
    if args.show_suppressed:
        for violation in sorted(report.suppressed):
            print(violation.render())
    n = len(report.violations)
    summary = (
        f"{report.files_checked} file(s) checked, {n} violation(s), "
        f"{len(report.suppressed)} suppressed"
    )
    print(summary if n == 0 else f"FAILED: {summary}", file=sys.stderr)
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI for the engine invariant checker (``python -m tools.analysis``)."""

from __future__ import annotations

import argparse
import json
import sys

from tools.analysis.engine import Report, check_paths, describe_checkers


def report_to_json(report: Report) -> dict:
    """Stable machine-readable findings (the ``--json`` payload)."""
    return {
        "violations": [
            {
                "code": v.code,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
                "checker": v.checker,
            }
            for v in sorted(report.violations)
        ],
        "suppressed_count": len(report.suppressed),
        "files_checked": report.files_checked,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Static analysis of the nmad reproduction's engine "
                    "invariants (determinism, counter pairing, lifecycle "
                    "discipline, event-loop hygiene).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--list", action="store_true",
                        help="list checkers and violation codes, then exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "`# nm: allow[...]` comments")
    parser.add_argument("--interprocedural", action="store_true",
                        help="also run the project-wide NM5xx pass (call "
                             "graph, alias tracking, cross-module evidence)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON object on stdout "
                             "instead of text lines")
    args = parser.parse_args(argv)

    if args.list:
        print(describe_checkers())
        return 0

    report = check_paths(args.paths or ["src/repro"])
    if args.interprocedural:
        from tools.analysis.interproc import check_project

        # The interprocedural pass re-reads the same files into a project
        # model; its files_checked would double-count the per-file walk.
        inter = check_project(args.paths or ["src/repro"])
        report.violations.extend(inter.violations)
        report.suppressed.extend(inter.suppressed)

    if args.json:
        print(json.dumps(report_to_json(report), indent=2, sort_keys=True))
        return 1 if report.violations else 0

    for violation in sorted(report.violations):
        print(violation.render())
    if args.show_suppressed:
        for violation in sorted(report.suppressed):
            print(violation.render())
    n = len(report.violations)
    summary = (
        f"{report.files_checked} file(s) checked, {n} violation(s), "
        f"{len(report.suppressed)} suppressed"
    )
    print(summary if n == 0 else f"FAILED: {summary}", file=sys.stderr)
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())

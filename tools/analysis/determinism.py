"""Determinism checker (NM1xx).

The simulation kernel promises exact reproducibility: events at equal
timestamps fire in FIFO order, every benchmark series is replayable, and
the figures pipeline asserts bit-identical output across runs.  That
promise dies the moment scheduling-core code consults wall-clock time or
an unseeded global RNG, or iterates a ``set`` whose order depends on
``PYTHONHASHSEED``.  The rules:

* **NM101** — no ``time`` / ``datetime`` import in the scheduling core.
  Simulated time comes from ``Simulator.now``; there is no legitimate use
  of host clocks in ``repro/core``, ``repro/sim`` or ``repro/netsim``.
* **NM102** — no module-level ``random`` functions (``random.random()``,
  ``from random import choice`` …).  Constructing a seeded
  ``random.Random(seed)`` instance is allowed — that is the supported
  pattern (see ``repro/bench/workloads.py``).
* **NM103** — no direct iteration over a set display, ``set()`` /
  ``frozenset()`` call, or set comprehension — including through a plain
  local or module-level name the set was assigned to first
  (``s = set(peers); for p in s:``).  Iteration order of string sets
  varies per process; wrap the expression in ``sorted(...)`` instead.
  *Membership* tests (``p in s``) are order-independent and stay legal,
  as does rebinding the name to a non-set (which clears the mark).
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker

_CLOCK_MODULES = ("time", "datetime")
_ALLOWED_RANDOM_IMPORTS = ("Random", "SystemRandom")


class DeterminismChecker(Checker):
    name = "determinism"
    codes = {
        "NM101": "wall-clock module imported in the scheduling core",
        "NM102": "unseeded global random.* used in the scheduling core",
        "NM103": "iteration over a set (hash-order dependent)",
    }
    scope = ("repro/core/", "repro/sim/", "repro/netsim/")

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        #: Scope stack mapping names to "currently bound to a set?".  A
        #: False entry masks an outer True (a local rebind to sorted(...)
        #: shadows a module-level set); the innermost scope wins on lookup.
        self._set_names: list[dict[str, bool]] = [{}]

    # -- NM101 / NM102: imports ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in _CLOCK_MODULES:
                self.report(node, "NM101",
                            f"import of {alias.name!r}: the scheduling core "
                            "must use Simulator.now, never host clocks")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if node.level == 0 and module in _CLOCK_MODULES:
            self.report(node, "NM101",
                        f"import from {node.module!r}: the scheduling core "
                        "must use Simulator.now, never host clocks")
        if node.level == 0 and module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_IMPORTS:
                    self.report(node, "NM102",
                                f"from random import {alias.name}: only "
                                "seeded random.Random instances are "
                                "deterministic")
        self.generic_visit(node)

    # -- NM102: random.<fn>() calls -------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "random"
                and node.attr not in _ALLOWED_RANDOM_IMPORTS):
            self.report(node, "NM102",
                        f"random.{node.attr}: global RNG state is shared and "
                        "unseeded; use a random.Random(seed) instance")
        self.generic_visit(node)

    # -- NM103: set iteration --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        self._set_names.append({})
        self.generic_visit(node)
        self._set_names.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track plain-name bindings of set expressions (and aliases of
        # already-tracked names), so the intermediate-variable form of the
        # bug (``s = set(peers); for p in s:``) is caught too.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            self._set_names[-1][name] = self._is_set_expr(node.value) or (
                isinstance(node.value, ast.Name)
                and self._is_tracked(node.value.id))
        self.generic_visit(node)

    def _is_tracked(self, name: str) -> bool:
        for scope in reversed(self._set_names):
            if name in scope:
                return scope[name]
        return False

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, expr: ast.expr) -> None:
        if self._is_set_expr(expr):
            self.report(expr, "NM103",
                        "iterating a set: order depends on PYTHONHASHSEED; "
                        "wrap in sorted(...) to fix the order")
        elif isinstance(expr, ast.Name) and self._is_tracked(expr.id):
            self.report(expr, "NM103",
                        f"iterating {expr.id!r}, which holds a set: order "
                        "depends on PYTHONHASHSEED; wrap in sorted(...) to "
                        "fix the order")

    @staticmethod
    def _is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Set | ast.SetComp):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("set", "frozenset"))

"""Determinism checker (NM1xx).

The simulation kernel promises exact reproducibility: events at equal
timestamps fire in FIFO order, every benchmark series is replayable, and
the figures pipeline asserts bit-identical output across runs.  That
promise dies the moment scheduling-core code consults wall-clock time or
an unseeded global RNG, or iterates a ``set`` whose order depends on
``PYTHONHASHSEED``.  The rules:

* **NM101** — no ``time`` / ``datetime`` import in the scheduling core.
  Simulated time comes from ``Simulator.now``; there is no legitimate use
  of host clocks in ``repro/core``, ``repro/sim`` or ``repro/netsim``.
* **NM102** — no module-level ``random`` functions (``random.random()``,
  ``from random import choice`` …).  Constructing a seeded
  ``random.Random(seed)`` instance is allowed — that is the supported
  pattern (see ``repro/bench/workloads.py``).
* **NM103** — no direct iteration over a set display, ``set()`` /
  ``frozenset()`` call, or set comprehension.  Iteration order of string
  sets varies per process; wrap the expression in ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker

_CLOCK_MODULES = ("time", "datetime")
_ALLOWED_RANDOM_IMPORTS = ("Random", "SystemRandom")


class DeterminismChecker(Checker):
    name = "determinism"
    codes = {
        "NM101": "wall-clock module imported in the scheduling core",
        "NM102": "unseeded global random.* used in the scheduling core",
        "NM103": "iteration over a set (hash-order dependent)",
    }
    scope = ("repro/core/", "repro/sim/", "repro/netsim/")

    # -- NM101 / NM102: imports ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in _CLOCK_MODULES:
                self.report(node, "NM101",
                            f"import of {alias.name!r}: the scheduling core "
                            "must use Simulator.now, never host clocks")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if node.level == 0 and module in _CLOCK_MODULES:
            self.report(node, "NM101",
                        f"import from {node.module!r}: the scheduling core "
                        "must use Simulator.now, never host clocks")
        if node.level == 0 and module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_IMPORTS:
                    self.report(node, "NM102",
                                f"from random import {alias.name}: only "
                                "seeded random.Random instances are "
                                "deterministic")
        self.generic_visit(node)

    # -- NM102: random.<fn>() calls -------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "random"
                and node.attr not in _ALLOWED_RANDOM_IMPORTS):
            self.report(node, "NM102",
                        f"random.{node.attr}: global RNG state is shared and "
                        "unseeded; use a random.Random(seed) instance")
        self.generic_visit(node)

    # -- NM103: set iteration --------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, expr: ast.expr) -> None:
        if self._is_set_expr(expr):
            self.report(expr, "NM103",
                        "iterating a set: order depends on PYTHONHASHSEED; "
                        "wrap in sorted(...) to fix the order")

    @staticmethod
    def _is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Set | ast.SetComp):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("set", "frozenset"))

"""NM504: stats-balance on exception paths (interprocedural pass member).

Some ``EngineStats`` counters only make sense in pairs: a report that
shows ``aggregated_packets`` without the matching ``aggregated_segments``
(or ``recv_copies`` without ``recv_copy_bytes``) is internally
inconsistent, and the figure pipeline divides one by the other.  The bug
shape is a ``try`` body that bumps the first counter, then hits a
``raise`` before bumping the partner — the exception propagates with the
pair out of balance.

NM504 flags, per ``try`` body: counter A bumped, a ``raise`` statement
*after* the bump (source order), and the partner B's bump either absent
from the body or positioned after that raise — unless B is bumped in the
``finally`` clause, which runs on every path and rebalances the pair.

Approximation: source-position analysis, not path-sensitive — a raise
inside an ``if`` counts even when the condition never co-occurs with the
bump.  That errs towards reporting; restructure the code (bump both
counters adjacently, or move the raise above both) or suppress with a
justification.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Violation
from tools.analysis.callgraph import ModuleInfo, Project

#: Counter pairs that must stay balanced on every path (checked both ways).
STAT_PAIRS: tuple[tuple[str, str], ...] = (
    ("aggregated_packets", "aggregated_segments"),
    ("recv_copies", "recv_copy_bytes"),
)

_PAIRED = {a: b for a, b in STAT_PAIRS} | {b: a for a, b in STAT_PAIRS}


class StatsBalanceRule:
    """Paired counters must not be split by a raise inside a try body."""

    name = "statsbalance"
    codes = {
        "NM504": "paired stats counter bumped in a try body whose partner "
                 "is skipped by an early raise",
    }
    scope = ("repro/",)

    def __init__(self, project: Project) -> None:
        self.project = project
        self.violations: list[Violation] = []

    def run(self) -> list[Violation]:
        for mod in self.project.modules.values():
            if not mod.path.startswith("repro/"):
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Try):
                    self._check_try(mod, node)
        return self.violations

    def _check_try(self, mod: ModuleInfo, node: ast.Try) -> None:
        bumps = _counter_bumps(node.body)
        if not bumps:
            return
        raises = _raise_lines(node.body)
        if not raises:
            return
        finally_safe = {attr for _line, attr in _counter_bumps(node.finalbody)}
        lines_of: dict[str, list[int]] = {}
        for line, attr in bumps:
            lines_of.setdefault(attr, []).append(line)
        for line, attr in bumps:
            partner = _PAIRED[attr]
            if partner in finally_safe:
                continue
            raise_after = min((r for r in raises if r > line), default=None)
            if raise_after is None:
                continue
            partner_before = any(line < p < raise_after
                                 for p in lines_of.get(partner, []))
            if partner_before:
                continue
            self.violations.append(Violation(
                path=mod.report_path, line=line, col=0, code="NM504",
                message=f"stats.{attr} bumped at line {line} but the raise "
                        f"at line {raise_after} can skip the paired "
                        f"stats.{partner}; bump both before any raise or "
                        "rebalance in a finally clause",
                checker=self.name,
            ))


def _counter_bumps(body: list[ast.stmt]) -> list[tuple[int, str]]:
    """(line, counter) for every paired-counter AugAssign in ``body``,
    excluding nested function definitions (they run later, if at all)."""
    out: list[tuple[int, str]] = []
    for node in _walk_no_defs(body):
        if isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Attribute) \
                and node.target.attr in _PAIRED:
            out.append((node.lineno, node.target.attr))
    out.sort()
    return out


def _raise_lines(body: list[ast.stmt]) -> list[int]:
    return sorted(node.lineno for node in _walk_no_defs(body)
                  if isinstance(node, ast.Raise))


def _walk_no_defs(body: list[ast.stmt]):
    """Walk statements without descending into nested defs/classes or
    nested try bodies (an inner try is analyzed on its own)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda, ast.Try)):
            continue
        stack.extend(ast.iter_child_nodes(node))

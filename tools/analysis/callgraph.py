"""Project-wide symbol table and call graph for the NM5xx pass.

The per-file checkers (NM1xx–NM4xx) see one module at a time, which an
alias or a helper function silently defeats: ``d = win._by_dest`` followed
by ``d.pop(k)`` is invisible to a write-owner rule that only matches
attribute targets, and a frame kind passed as a *parameter* to the helper
that builds the Frame is invisible to a literal check.  This module builds
the whole-project view the interprocedural rules need:

* a **symbol table** per module: module-level functions, classes with
  their methods, module-level ``frozenset``/``set``/tuple constants of
  strings (e.g. ``_SESSION_KINDS``), and classes of string constants
  (e.g. ``FrameKind``);
* a **call graph**: best-effort resolution of ``name(...)``,
  ``self.meth(...)`` and ``obj.meth(...)`` call sites to project
  functions;
* **mutation summaries**: for every function, the set of positional
  parameters it mutates *as containers* (``append``/``pop``/subscript
  stores/…), propagated through calls to a fixpoint — this is what lets
  NM501 follow an owned container through a helper chain.

Known approximations (also documented in docs/STATIC_ANALYSIS.md):

* ``self.meth()`` resolves to the enclosing class first, then to *any*
  project method of that name; ``obj.meth()`` resolves by name across all
  classes.  Over-approximating receivers can only widen a summary, which
  errs towards reporting — and the repo's method names are distinctive
  enough that this is precise in practice.
* Aliases are tracked per function for plain local names only
  (``x = obj.field``); tuple unpacking, comprehension targets and
  attribute-to-attribute copies are not followed.
* Dynamic dispatch through values stored in containers and ``getattr``
  are invisible, as in any static pass.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from tools.analysis.engine import (
    Suppression,
    _parse_suppressions,
    iter_python_files,
    virtual_path,
)

#: Method names that mutate a list/set/dict/deque receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "popleft", "appendleft", "clear", "setdefault",
    "sort", "reverse",
})


@dataclass
class FunctionInfo:
    """One function or method in the analyzed project."""

    module: str                                 # virtual repo path
    name: str                                   # bare name
    cls: str | None                             # enclosing class, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...] = ()                # positional params, incl. self

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def is_method(self) -> bool:
        return self.cls is not None and bool(self.params) \
            and self.params[0] in ("self", "cls")


@dataclass
class ModuleInfo:
    """Symbol table for one module."""

    path: str                                   # virtual repo path
    real_path: str                              # on-disk path (reporting)
    tree: ast.Module
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    #: Module-level NAME = frozenset({...}) / set / tuple of resolvable strs.
    str_sets: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Classes of string constants: class name -> attr -> value.
    str_const_classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: line -> justified suppression on that line.
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def report_path(self) -> str:
        return self.real_path or self.path


class Project:
    """Every analyzed module plus the cross-module resolution indices."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.class_methods: dict[str, dict[str, FunctionInfo]] = {}
        self._summaries: dict[int, frozenset[int]] | None = None

    # -- construction -------------------------------------------------------
    def add_module(self, mod: ModuleInfo) -> None:
        self.modules[mod.path] = mod
        for info in mod.functions.values():
            self.functions_by_name.setdefault(info.name, []).append(info)
        for cls, methods in mod.classes.items():
            merged = self.class_methods.setdefault(cls, {})
            for name, info in methods.items():
                merged.setdefault(name, info)
                self.methods_by_name.setdefault(name, []).append(info)

    def all_functions(self) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for mod in self.modules.values():
            out.extend(mod.functions.values())
            for methods in mod.classes.values():
                out.extend(methods.values())
        return out

    # -- call resolution ----------------------------------------------------
    def resolve_callable(
        self,
        module: ModuleInfo,
        cls: str | None,
        func: ast.expr,
    ) -> list[FunctionInfo]:
        """Project functions a callable expression may refer to.

        Empty list means "unknown" (builtin, stdlib, or too dynamic); the
        rules treat unknown callees conservatively per-rule.
        """
        if isinstance(func, ast.Name):
            local = module.functions.get(func.id)
            if local is not None:
                return [local]
            return list(self.functions_by_name.get(func.id, []))
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls") and cls is not None):
                own = self.class_methods.get(cls, {}).get(func.attr)
                if own is not None:
                    return [own]
            return list(self.methods_by_name.get(func.attr, []))
        return []

    def resolve_str_set(
        self, module: ModuleInfo, name: str
    ) -> frozenset[str] | None:
        """Resolve ``NAME`` to a set of strings (local module first)."""
        if name in module.str_sets:
            return module.str_sets[name]
        for mod in self.modules.values():
            if name in mod.str_sets:
                return mod.str_sets[name]
        return None

    def resolve_class_str_const(self, cls: str, attr: str) -> str | None:
        """Resolve ``Cls.ATTR`` to its string value, searching all modules."""
        for mod in self.modules.values():
            table = mod.str_const_classes.get(cls)
            if table is not None and attr in table:
                return table[attr]
        return None

    # -- mutation summaries --------------------------------------------------
    def mutation_summaries(self) -> dict[int, frozenset[int]]:
        """``id(info.node) -> positional params mutated as containers``.

        Computed once to a fixpoint over the call graph, so a helper that
        forwards its argument to a second helper that mutates it is still
        summarized as mutating.
        """
        if self._summaries is None:
            self._summaries = _compute_summaries(self)
        return self._summaries


def arg_to_param(
    callee: FunctionInfo, call: ast.Call, arg_index: int
) -> int | None:
    """Map positional argument ``arg_index`` of ``call`` to a callee param.

    A bound call (``obj.meth(x)``) skips the callee's ``self``/``cls``.
    """
    offset = 1 if (isinstance(call.func, ast.Attribute)
                   and callee.is_method) else 0
    pos = arg_index + offset
    if pos < len(callee.params):
        return pos
    return None


def kwarg_to_param(callee: FunctionInfo, keyword: str) -> int | None:
    """Map a keyword argument name to the callee's positional param index."""
    try:
        return callee.params.index(keyword)
    except ValueError:
        return None


def resolve_str_expr(
    project: Project, module: ModuleInfo, expr: ast.expr
) -> str | None:
    """Resolve an expression to a string: a literal or ``Cls.CONST``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)):
        return project.resolve_class_str_const(expr.value.id, expr.attr)
    return None


def _resolve_str_collection(
    project: Project, module: ModuleInfo, expr: ast.expr
) -> frozenset[str] | None:
    """Resolve set/frozenset/tuple displays (possibly wrapped) of strings."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("frozenset", "set", "tuple") \
            and len(expr.args) == 1 and not expr.keywords:
        return _resolve_str_collection(project, module, expr.args[0])
    if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
        out = set()
        for elt in expr.elts:
            value = resolve_str_expr(project, module, elt)
            if value is None:
                return None
            out.add(value)
        return frozenset(out)
    return None


# -- project building ---------------------------------------------------------

def _collect_module(path: str, real_path: str, source: str) -> ModuleInfo:
    tree = ast.parse(source, filename=real_path or path)
    mod = ModuleInfo(path=path, real_path=real_path, tree=tree)
    suppressions, _bad = _parse_suppressions(source, mod.report_path)
    mod.suppressions = suppressions
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = FunctionInfo(
                module=path, name=node.name, cls=None, node=node,
                params=_positional_params(node))
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, FunctionInfo] = {}
            consts: dict[str, str] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = FunctionInfo(
                        module=path, name=item.name, cls=node.name,
                        node=item, params=_positional_params(item))
                elif (isinstance(item, ast.Assign)
                      and len(item.targets) == 1
                      and isinstance(item.targets[0], ast.Name)
                      and isinstance(item.value, ast.Constant)
                      and isinstance(item.value.value, str)):
                    consts[item.targets[0].id] = item.value.value
            mod.classes[node.name] = methods
            if consts:
                mod.str_const_classes[node.name] = consts
        elif (isinstance(node, ast.Assign) and len(node.targets) == 1
              and isinstance(node.targets[0], ast.Name)):
            # Collected in a second pass once the project exists (the
            # elements may be Cls.CONST references to another module).
            pass
    return mod


def _positional_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in (*args.posonlyargs, *args.args))


def _second_pass_constants(project: Project) -> None:
    """Resolve module-level string collections (may reference other modules)."""
    for mod in project.modules.values():
        for node in mod.tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                resolved = _resolve_str_collection(project, mod, node.value)
                if resolved is not None:
                    mod.str_sets[node.targets[0].id] = resolved


def build_project(paths: list[str], root: str = ".") -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    Files that fail to parse are skipped here — the per-file pass reports
    them as NM000, and a module that does not parse cannot contribute
    symbols anyway.
    """
    project = Project()
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        rel = os.path.relpath(os.path.abspath(filename), os.path.abspath(root))
        rel = rel.replace(os.sep, "/")
        if rel.startswith("src/"):
            rel = rel[len("src/"):]
        try:
            mod = _collect_module(virtual_path(source, rel), filename, source)
        except SyntaxError:
            continue
        project.add_module(mod)
    _second_pass_constants(project)
    return project


# -- mutation summaries --------------------------------------------------------

def _direct_mutations_and_forwards(
    info: FunctionInfo,
) -> tuple[set[int], list[tuple[ast.Call, int, int]]]:
    """Params directly container-mutated, plus (call, arg_idx, param_idx)
    triples where a param is forwarded as a plain positional argument."""
    params = {name: i for i, name in enumerate(info.params)}
    # Plain local aliases of params (``q = pending``) count as the param.
    aliases: dict[str, int] = {}

    def param_of(expr: ast.expr) -> int | None:
        if isinstance(expr, ast.Name):
            if expr.id in params:
                return params[expr.id]
            return aliases.get(expr.id)
        return None

    mutated: set[int] = set()
    forwards: list[tuple[ast.Call, int, int]] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            src = param_of(node.value)
            name = node.targets[0].id
            if src is not None and name not in params:
                aliases[name] = src
            elif name in aliases and src is None:
                del aliases[name]
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                idx = param_of(node.func.value)
                if idx is not None:
                    mutated.add(idx)
        if isinstance(node, ast.Call):
            for i, arg in enumerate(node.args):
                idx = param_of(arg)
                if idx is not None:
                    forwards.append((node, i, idx))
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target] if isinstance(node, ast.AugAssign) \
                else node.targets
            for target in targets:
                if isinstance(target, ast.Subscript):
                    idx = param_of(target.value)
                    if idx is not None:
                        mutated.add(idx)
    return mutated, forwards


def _compute_summaries(project: Project) -> dict[int, frozenset[int]]:
    infos = project.all_functions()
    direct: dict[int, set[int]] = {}
    forwards: dict[int, list[tuple[ast.Call, int, int]]] = {}
    for info in infos:
        d, f = _direct_mutations_and_forwards(info)
        direct[id(info.node)] = d
        forwards[id(info.node)] = f
    # Fixpoint: a forwarded param is mutated if any resolvable callee
    # mutates the receiving position.
    changed = True
    while changed:
        changed = False
        for info in infos:
            mod = project.modules[info.module]
            mine = direct[id(info.node)]
            for call, arg_idx, param_idx in forwards[id(info.node)]:
                if param_idx in mine:
                    continue
                for callee in project.resolve_callable(mod, info.cls,
                                                       call.func):
                    target = arg_to_param(callee, call, arg_idx)
                    if target is not None and \
                            target in direct.get(id(callee.node), ()):
                        mine.add(param_idx)
                        changed = True
                        break
    return {key: frozenset(val) for key, val in direct.items()}

"""NM503: timer-generation pairing (interprocedural).

The PR 5 ghost-timer bug class: a layer arms a callback and later resets
its state; the stale callback fires anyway and corrupts the new epoch.
The repo-wide idiom that prevents it is *generation capture*::

    gen = st.resend_gen                       # capture the epoch
    self.sim.schedule(d, lambda: self._resend(peer, item, gen))

    def _resend(self, peer, item, gen):
        if gen != st.resend_gen:              # guard FIRST
            return
        ...                                   # only now touch state

NM503 verifies the second half across module boundaries: any callback
armed via ``schedule``/``schedule_batch`` whose lambda passes a captured
``*_gen`` value must compare that parameter against a generation field
*before* any observable write (attribute/subscript store, augmented
assignment, or method call on an attribute).  Reads, plain local
assignments, and read-only conditionals before the guard are fine.

Known approximations: only ``lambda: callee(...)`` arming sites are
analyzed (the repo has no other shape); gen capture is recognized for
plain locals assigned from a ``gen``/``*_gen`` attribute; a call site
whose callee cannot be resolved in the project is skipped.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Violation
from tools.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    arg_to_param,
    kwarg_to_param,
)

SCHEDULE_METHODS = frozenset({"schedule", "schedule_batch"})


def _is_gen_attr(name: str) -> bool:
    return name == "gen" or name.endswith("_gen")


class TimerGenRule:
    """Armed callbacks capturing a generation must guard on it first."""

    name = "timers"
    codes = {
        "NM503": "callback armed with a captured generation touches state "
                 "before comparing the generation",
    }
    scope = ("repro/",)

    def __init__(self, project: Project) -> None:
        self.project = project
        self.violations: list[Violation] = []
        #: Callees already judged, to avoid duplicate reports per arm site.
        self._judged: set[tuple[int, str]] = set()

    def run(self) -> list[Violation]:
        for mod in self.project.modules.values():
            if not mod.path.startswith("repro/"):
                continue
            for info in _functions_of(mod):
                self._check_arming_function(mod, info)
        return self.violations

    # -- arm-site discovery ---------------------------------------------------
    def _check_arming_function(
        self, mod: ModuleInfo, info: FunctionInfo
    ) -> None:
        #: plain locals assigned from a gen-suffixed attribute, in order.
        gen_locals: set[str] = set()
        nodes = sorted(
            ast.walk(info.node),
            key=lambda n: (getattr(n, "lineno", 0),
                           getattr(n, "col_offset", 0)),
        )
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, ast.Attribute) \
                        and _is_gen_attr(node.value.attr):
                    gen_locals.add(name)
                else:
                    gen_locals.discard(name)
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in SCHEDULE_METHODS:
                for arg in ast.walk(node):
                    if isinstance(arg, ast.Lambda):
                        self._check_armed_lambda(mod, info, arg, gen_locals)

    def _check_armed_lambda(
        self,
        mod: ModuleInfo,
        info: FunctionInfo,
        lam: ast.Lambda,
        gen_locals: set[str],
    ) -> None:
        if not isinstance(lam.body, ast.Call):
            return
        call = lam.body
        gen_positions: list[tuple[int | None, str | None]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id in gen_locals:
                gen_positions.append((i, None))
        for kw in call.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id in gen_locals \
                    and kw.arg is not None:
                gen_positions.append((None, kw.arg))
        if not gen_positions:
            return
        for callee in self.project.resolve_callable(mod, info.cls, call.func):
            for arg_idx, kw_name in gen_positions:
                if kw_name is not None:
                    param_idx = kwarg_to_param(callee, kw_name)
                else:
                    assert arg_idx is not None
                    param_idx = arg_to_param(callee, call, arg_idx)
                if param_idx is None or param_idx >= len(callee.params):
                    continue
                param = callee.params[param_idx]
                key = (id(callee.node), param)
                if key in self._judged:
                    continue
                self._judged.add(key)
                self._check_callee(callee, param)

    # -- callee guard scan ----------------------------------------------------
    def _check_callee(self, callee: FunctionInfo, param: str) -> None:
        mod = self.project.modules[callee.module]
        for stmt in callee.node.body:
            if self._is_guard(stmt, param):
                return
            effect = _first_effect(stmt)
            if effect is not None:
                kind, node = effect
                self.violations.append(Violation(
                    path=mod.report_path,
                    line=getattr(node, "lineno", stmt.lineno),
                    col=getattr(node, "col_offset", 0),
                    code="NM503",
                    message=f"{callee.qualname}() receives generation "
                            f"{param!r} from an armed timer but performs "
                            f"{kind} before comparing it; a stale callback "
                            "can corrupt the current epoch",
                    checker=self.name,
                ))
                return

    def _is_guard(self, stmt: ast.stmt, param: str) -> bool:
        """An ``if`` comparing the gen param against a generation field."""
        if not isinstance(stmt, ast.If):
            return False
        reads_param = any(isinstance(n, ast.Name) and n.id == param
                          for n in ast.walk(stmt.test))
        reads_gen_attr = any(isinstance(n, ast.Attribute)
                             and _is_gen_attr(n.attr)
                             for n in ast.walk(stmt.test))
        return reads_param and reads_gen_attr


def _first_effect(stmt: ast.stmt) -> tuple[str, ast.AST] | None:
    """The first observable write inside ``stmt``, if any.

    Docstrings, plain local assignments and attribute *reads* are not
    effects; attribute/subscript stores, augmented assignments, deletes
    of attributes/subscripts, and method calls on attributes are.
    """
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return None
    for node in sorted(ast.walk(stmt),
                       key=lambda n: (getattr(n, "lineno", 0),
                                      getattr(n, "col_offset", 0))):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return ("an attribute/subscript store", target)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                return ("an augmented attribute store", node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return ("an attribute/subscript delete", target)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            return ("a method call", node)
    return None


def _functions_of(mod: ModuleInfo) -> list[FunctionInfo]:
    out = list(mod.functions.values())
    for methods in mod.classes.values():
        out.extend(methods.values())
    return out

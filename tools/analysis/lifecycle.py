"""Lifecycle-discipline checker (NM3xx).

Wrap, packet and request state transitions (submit → anticipate →
commit/dissolve → complete/cancel) must happen through the API surface —
``Event.succeed``/``fail``/``defuse``, ``RecvRequest.finish``,
``RendezvousManager``'s transition methods — never by poking the state
fields from outside the owning module.  The failure mode is exactly the
one cancel()/uncommit_anticipated() guards against: a half-applied
transition that leaves the window, the rendezvous table and the completion
event telling three different stories.  The rules:

* **NM301** — the kernel-private fields of :class:`repro.sim.core.Event`
  (``_ok``/``_value``/``_exc``/``_defused``/``_callbacks``/…) are
  touched only inside ``repro/sim/core.py``.  Outside the kernel, use
  ``triggered``/``ok``/``value``/``exception``/``defuse()``.
* **NM302** — rendezvous transfer state (``granted``/``next_offset``/
  ``bytes_sent``/``received``) transitions only inside
  ``repro/core/rendezvous.py``; receive results
  (``actual_src``/``actual_tag``/``actual_len``) only via
  ``RecvRequest.finish`` in ``repro/core/requests.py``.
* **NM303** — the window's private storage is not even *read* from
  outside ``repro/core/window.py``: strategies consume the
  ``eligible*``/``backlog*``/``pending_bytes`` accessors, which is what
  keeps the storage layout swappable (the deque→dict rewrite of PR 2
  touched nothing outside window.py precisely because of this).
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker, assignment_targets, is_self_access
from tools.analysis.counters import WINDOW_MODULE, WINDOW_PRIVATE

#: Kernel-private Event/Process/Condition state, owner repro/sim/core.py.
EVENT_PRIVATE = frozenset({
    "_ok", "_value", "_exc", "_defused", "_callbacks",
    "_gen", "_waiting_on", "_n_done",
})
EVENT_MODULE = "repro/sim/core.py"

#: NM302 applies where engine state objects circulate.  The baselines
#: (repro/baselines/) reimplement a classic library with their own local
#: state machines that reuse field names like ``next_offset``; they never
#: hold engine rendezvous/request objects, so they are out of scope.
_NM302_SCOPE = ("repro/core/", "repro/madmpi/")

#: Transition fields and the single module allowed to write them.
_WRITE_OWNERS: dict[str, frozenset[str]] = {
    "repro/core/rendezvous.py": frozenset({
        "granted", "next_offset", "bytes_sent", "received",
    }),
    "repro/core/requests.py": frozenset({
        "actual_src", "actual_tag", "actual_len",
    }),
}


class LifecycleChecker(Checker):
    name = "lifecycle"
    codes = {
        "NM301": "Event kernel-private state touched outside sim/core.py",
        "NM302": "lifecycle transition field written outside its owner module",
        "NM303": "window-private storage read outside window.py",
    }
    scope = ("repro/",)

    # -- NM301 / NM303: any access (read or write) -----------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if (attr in EVENT_PRIVATE and self.ctx.path != EVENT_MODULE
                and not is_self_access(node)):
            self.report(node, "NM301",
                        f"access to kernel-private {attr!r} outside the "
                        "simulation kernel; use the public Event API "
                        "(triggered/ok/value/exception/defuse)")
        if (attr in WINDOW_PRIVATE and self.ctx.path != WINDOW_MODULE
                and not is_self_access(node)
                and isinstance(node.ctx, ast.Load)):
            # Writes are NM201 (counters checker); this code covers reads.
            self.report(node, "NM303",
                        f"read of window-private {attr!r} outside "
                        "repro/core/window.py; consume the eligible*/"
                        "backlog*/pending_bytes accessors instead")
        self.generic_visit(node)

    # -- NM302: writes only ----------------------------------------------------
    def _check_write(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute) or is_self_access(target):
            return
        if not self.ctx.path.startswith(_NM302_SCOPE):
            return
        for owner, fields in _WRITE_OWNERS.items():
            if target.attr in fields and self.ctx.path != owner:
                self.report(target, "NM302",
                            f"write to transition field {target.attr!r} "
                            f"outside {owner}; state machines advance only "
                            "through their owner's API")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

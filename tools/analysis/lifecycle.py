"""Lifecycle-discipline checker (NM3xx).

Wrap, packet and request state transitions (submit → anticipate →
commit/dissolve → complete/cancel) must happen through the API surface —
``Event.succeed``/``fail``/``defuse``, ``RecvRequest.finish``,
``RendezvousManager``'s transition methods — never by poking the state
fields from outside the owning module.  The failure mode is exactly the
one cancel()/uncommit_anticipated() guards against: a half-applied
transition that leaves the window, the rendezvous table and the completion
event telling three different stories.  The rules:

* **NM301** — the kernel-private fields of :class:`repro.sim.core.Event`
  (``_ok``/``_value``/``_exc``/``_defused``/``_callbacks``/…) are
  touched only inside ``repro/sim/core.py``.  Outside the kernel, use
  ``triggered``/``ok``/``value``/``exception``/``defuse()``.
* **NM302** — rendezvous transfer state (``granted``/``next_offset``/
  ``bytes_sent``/``received``) transitions only inside
  ``repro/core/rendezvous.py``; receive results
  (``actual_src``/``actual_tag``/``actual_len``) only via
  ``RecvRequest.finish`` in ``repro/core/requests.py``.
* **NM303** — the window's private storage is not even *read* from
  outside ``repro/core/window.py``: strategies consume the
  ``eligible*``/``backlog*``/``pending_bytes`` accessors, which is what
  keeps the storage layout swappable (the deque→dict rewrite of PR 2
  touched nothing outside window.py precisely because of this).
* **NM304** — frame kinds are free-form strings by design (the NIC layer
  never inspects them), so a typo in a kind literal silently creates a
  frame no dispatcher matches.  Every kind used in a ``Frame(kind=...)``
  construction or a ``.kind == "..."`` comparison must be registered in
  :data:`FRAME_KINDS` (mirroring ``repro.netsim.frames.FrameKind``).
  Inside ``repro/chaos/`` the same comparison shape dispatches on
  :class:`~repro.chaos.schedule.ChaosFault` kinds instead, so literals
  there are checked against :data:`CHAOS_FAULT_KINDS`.
* **NM305** — the chaos auditor deliberately crosses layer boundaries
  (it cross-checks the flow-control ledgers against each other), which
  is safe only while that stays read-only and in one place.  Within
  ``repro/chaos/`` an underscore-private attribute of another object may
  be *read* only in ``repro/chaos/audit.py`` and *written* nowhere — the
  auditor inspects, never mutates.
"""

from __future__ import annotations

import ast

from tools.analysis.base import Checker, assignment_targets, is_self_access
from tools.analysis.counters import WINDOW_MODULE, WINDOW_PRIVATE

#: Kernel-private Event/Process/Condition state, owner repro/sim/core.py.
EVENT_PRIVATE = frozenset({
    "_ok", "_value", "_exc", "_defused", "_callbacks",
    "_gen", "_waiting_on", "_n_done",
})
#: repro/bench/legacy_kernel.py is the seed kernel frozen verbatim as the
#: perf baseline / ordering oracle; it owns its own (Legacy*) private state
#: with the same field names, so it is a second sanctioned owner.
EVENT_MODULES = frozenset({
    "repro/sim/core.py",
    "repro/bench/legacy_kernel.py",
})

#: NM302 applies where engine state objects circulate.  The baselines
#: (repro/baselines/) reimplement a classic library with their own local
#: state machines that reuse field names like ``next_offset``; they never
#: hold engine rendezvous/request objects, so they are out of scope.  The
#: chaos auditor *does* hold them (it cross-checks the ledgers), so it is in.
_NM302_SCOPE = ("repro/core/", "repro/madmpi/", "repro/chaos/")

#: Transition fields and the single module allowed to write them.
_WRITE_OWNERS: dict[str, frozenset[str]] = {
    "repro/core/rendezvous.py": frozenset({
        "granted", "next_offset", "bytes_sent", "received",
    }),
    "repro/core/requests.py": frozenset({
        "actual_src", "actual_tag", "actual_len",
    }),
    # Credit-conservation totals: monotonic cumulative counters whose
    # idempotence under duplicated grants depends on every mutation going
    # through FlowControlLayer's consume/refund/release/_apply_grant.
    "repro/core/flowcontrol.py": frozenset({
        "sent_bytes_total", "sent_wraps_total",
        "released_bytes_total", "released_wraps_total",
        "peer_released_bytes", "peer_released_wraps",
    }),
    # The matcher's unexpected-byte budget gauge (refusals depend on it).
    "repro/core/matching.py": frozenset({
        "unexpected_bytes",
    }),
    # Per-peer session state: the epoch fence is only sound while the
    # handshake state machine and liveness clocks advance exclusively
    # through SessionLayer (_establish/_declare_dead/_note_liveness) —
    # a stray write to peer_incarnation would let stale frames through.
    "repro/core/sessions.py": frozenset({
        "sess_state", "peer_incarnation", "last_heard_us", "last_tx_us",
    }),
}

#: Registered on-wire frame kinds; mirrors ``repro.netsim.frames.FrameKind``.
#: A new protocol (like PR 1's ``rel_ack`` or this PR's flow-control
#: ``credit``/``nack`` frames) registers its kinds here so a typo'd kind
#: literal cannot create a frame that every dispatcher silently ignores.
FRAME_KINDS = frozenset({
    "data", "rdv_req", "rdv_ack", "rdv_data",
    "rel_ack", "credit", "nack",
    "session_hello", "session_welcome", "heartbeat",
})

#: Registered chaos fault kinds; mirrors ``repro.chaos.schedule.FAULT_KINDS``.
#: Within repro/chaos/ a ``.kind == "..."`` comparison dispatches on
#: :class:`ChaosFault` records, not frames, so literals there are checked
#: against this vocabulary instead (same typo failure mode, NM304).
CHAOS_FAULT_KINDS = frozenset({
    "drop", "burst", "corrupt", "slow", "dup", "reorder",
    "jitter", "partition", "crash", "rack_partition", "switch_kill",
})

#: The chaos package (NM305 scope) and its one sanctioned inspector.
CHAOS_SCOPE = "repro/chaos/"
CHAOS_AUDIT_MODULE = "repro/chaos/audit.py"


class LifecycleChecker(Checker):
    name = "lifecycle"
    codes = {
        "NM301": "Event kernel-private state touched outside sim/core.py",
        "NM302": "lifecycle transition field written outside its owner module",
        "NM303": "window-private storage read outside window.py",
        "NM304": "unregistered frame-kind string literal",
        "NM305": "layer-private state touched in repro/chaos/ outside audit.py",
    }
    scope = ("repro/",)

    # -- NM301 / NM303 / NM305: any access (read or write) ---------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if (attr in EVENT_PRIVATE and self.ctx.path not in EVENT_MODULES
                and not is_self_access(node)):
            self.report(node, "NM301",
                        f"access to kernel-private {attr!r} outside the "
                        "simulation kernel; use the public Event API "
                        "(triggered/ok/value/exception/defuse)")
        if (attr in WINDOW_PRIVATE and self.ctx.path != WINDOW_MODULE
                and not is_self_access(node)
                and isinstance(node.ctx, ast.Load)):
            # Writes are NM201 (counters checker); this code covers reads.
            self.report(node, "NM303",
                        f"read of window-private {attr!r} outside "
                        "repro/core/window.py; consume the eligible*/"
                        "backlog*/pending_bytes accessors instead")
        if (self.ctx.path.startswith(CHAOS_SCOPE)
                and attr.startswith("_") and not attr.startswith("__")
                and not is_self_access(node)):
            if not isinstance(node.ctx, ast.Load):
                self.report(node, "NM305",
                            f"write to layer-private {attr!r} from the "
                            "chaos package; the auditor inspects engine "
                            "state, it never mutates it")
            elif self.ctx.path != CHAOS_AUDIT_MODULE:
                self.report(node, "NM305",
                            f"read of layer-private {attr!r} from "
                            f"{self.ctx.path}; only repro/chaos/audit.py "
                            "may cross layer boundaries (and read-only)")
        self.generic_visit(node)

    # -- NM304: frame-kind / chaos-fault-kind literals -------------------------
    def _check_kind_literal(self, node: ast.expr, frame_only: bool = False,
                            ) -> None:
        if not (isinstance(node, ast.Constant)
                and isinstance(node.value, str)):
            return
        if not frame_only and self.ctx.path.startswith(CHAOS_SCOPE):
            # ``.kind`` in the chaos package dispatches ChaosFault records.
            if node.value not in CHAOS_FAULT_KINDS:
                self.report(node, "NM304",
                            f"chaos fault kind {node.value!r} is not "
                            "registered; add it to schedule.FAULT_KINDS and "
                            "tools/analysis/lifecycle.CHAOS_FAULT_KINDS "
                            "(typo'd kinds dispatch nowhere)")
        elif node.value not in FRAME_KINDS:
            self.report(node, "NM304",
                        f"frame kind {node.value!r} is not registered; add "
                        "it to FrameKind and to tools/analysis/lifecycle."
                        "FRAME_KINDS (typo'd kinds dispatch nowhere)")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops) and any(
            isinstance(o, ast.Attribute) and o.attr == "kind"
            for o in operands
        ):
            for operand in operands:
                self._check_kind_literal(operand)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name == "Frame":
            for kw in node.keywords:
                if kw.arg == "kind":
                    self._check_kind_literal(kw.value, frame_only=True)
        self.generic_visit(node)

    # -- NM302: writes only ----------------------------------------------------
    def _check_write(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute) or is_self_access(target):
            return
        if not self.ctx.path.startswith(_NM302_SCOPE):
            return
        for owner, fields in _WRITE_OWNERS.items():
            if target.attr in fields and self.ctx.path != owner:
                self.report(target, "NM302",
                            f"write to transition field {target.attr!r} "
                            f"outside {owner}; state machines advance only "
                            "through their owner's API")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in assignment_targets(node):
            self._check_write(target)
        self.generic_visit(node)

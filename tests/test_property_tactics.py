"""Property-based tests for the scheduling tactics (pure functions)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.data import VirtualData
from repro.core.packet import PacketWrap
from repro.core.tactics import plan_aggregate, reorder_by_priority


@st.composite
def wrap_lists(draw, max_size=30):
    n = draw(st.integers(0, max_size))
    wraps = []
    for i in range(n):
        wraps.append(PacketWrap(
            dest=draw(st.integers(1, 3)),
            flow=draw(st.integers(0, 2)),
            tag=draw(st.integers(0, 2)),
            seq=i,
            data=VirtualData(draw(st.integers(0, 4096))),
            priority=draw(st.integers(0, 5)),
            allow_reorder=draw(st.booleans()),
        ))
    return wraps


class TestReorderProperties:
    @given(wrap_lists())
    def test_is_a_permutation(self, wraps):
        out = reorder_by_priority(wraps)
        assert sorted(w.wrap_id for w in out) == \
            sorted(w.wrap_id for w in wraps)

    @given(wrap_lists())
    def test_barriers_keep_absolute_position(self, wraps):
        out = reorder_by_priority(wraps)
        for idx, wrap in enumerate(wraps):
            if not wrap.allow_reorder:
                assert out[idx] is wrap

    @given(wrap_lists())
    def test_no_crossing_of_barriers(self, wraps):
        out = reorder_by_priority(wraps)
        barrier_positions = [i for i, w in enumerate(wraps)
                             if not w.allow_reorder]
        pos_in = {w.wrap_id: i for i, w in enumerate(wraps)}
        pos_out = {w.wrap_id: i for i, w in enumerate(out)}
        for b in barrier_positions:
            bid = wraps[b].wrap_id
            for w in wraps:
                if w.wrap_id == bid:
                    continue
                # Anything before the barrier stays before; after stays after.
                if pos_in[w.wrap_id] < b:
                    assert pos_out[w.wrap_id] < pos_out[bid]
                else:
                    assert pos_out[w.wrap_id] > pos_out[bid]

    @given(wrap_lists())
    def test_priorities_descend_between_barriers(self, wraps):
        out = reorder_by_priority(wraps)
        run = []
        for w in out:
            if not w.allow_reorder:
                run = []
                continue
            run.append(w.priority)
            assert run == sorted(run, reverse=True)

    @given(wrap_lists())
    def test_idempotent(self, wraps):
        once = reorder_by_priority(wraps)
        twice = reorder_by_priority(once)
        assert [w.wrap_id for w in once] == [w.wrap_id for w in twice]


class TestAggregateProperties:
    @given(wrap_lists(), st.integers(64, 8192), st.booleans())
    def test_eager_total_within_threshold(self, wraps, threshold, scan):
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set(), scan_past_blockage=scan)
        assert sum(w.length for w in choice.eager) <= threshold

    @given(wrap_lists(), st.integers(64, 8192))
    def test_announcements_are_exactly_the_oversized(self, wraps, threshold):
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set())
        for w in choice.announce:
            assert w.length > threshold
        for w in choice.eager:
            assert w.length <= threshold

    @given(wrap_lists(), st.integers(64, 8192), st.booleans())
    def test_only_requested_destination(self, wraps, threshold, scan):
        choice = plan_aggregate(wraps, dest=2, rdv_threshold=threshold,
                                sent=set(), scan_past_blockage=scan)
        assert all(w.dest == 2 for w in choice.all_wraps())

    @given(wrap_lists(), st.integers(64, 8192), st.booleans())
    def test_selection_is_subset_without_duplicates(self, wraps, threshold,
                                                    scan):
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set(), scan_past_blockage=scan)
        ids = [w.wrap_id for w in choice.all_wraps()]
        assert len(ids) == len(set(ids))
        assert set(ids) <= {w.wrap_id for w in wraps}

    @given(wrap_lists(), st.integers(64, 8192))
    def test_relative_order_preserved(self, wraps, threshold):
        # Within each output class the original submission order holds.
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set())
        order = {w.wrap_id: i for i, w in enumerate(wraps)}
        for group in (choice.eager, choice.announce):
            indices = [order[w.wrap_id] for w in group]
            assert indices == sorted(indices)

    @given(wrap_lists(), st.integers(64, 8192), st.integers(1, 5))
    def test_max_items_respected(self, wraps, threshold, cap):
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set(), max_items=cap)
        assert len(choice.all_wraps()) <= cap

    @given(wrap_lists(), st.integers(64, 8192))
    def test_no_scan_takes_a_prefix(self, wraps, threshold):
        # Without scanning, the eager choice is a prefix of the dest-1
        # candidates (stops at the first thing that does not fit).
        choice = plan_aggregate(wraps, dest=1, rdv_threshold=threshold,
                                sent=set(), scan_past_blockage=False)
        mine = [w for w in wraps if w.dest == 1]
        k = len(choice.all_wraps())
        # all_wraps() groups eager before announcements, so compare the
        # *set*: exactly the first k dest-1 candidates were chosen.
        assert {w.wrap_id for w in choice.all_wraps()} == \
            {w.wrap_id for w in mine[:k]}

"""Tests for the collective operations (over MAD-MPI and the baselines)."""

import operator

import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.baselines import MpichMpi
from repro.core import NmadEngine
from repro.errors import MpiError
from repro.madmpi import Communicator, MadMpi
from repro.madmpi.collectives import (
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.netsim import Cluster, MX_MYRI10G
from repro.sim import Simulator


def make_world(n, backend="madmpi", strategy="aggregation"):
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=n, rails=(MX_MYRI10G,))
    world = Communicator(list(range(n)))
    if backend == "madmpi":
        mpis = [MadMpi(NmadEngine(cluster.node(i), strategy=strategy), world)
                for i in range(n)]
    else:
        mpis = [MpichMpi(cluster.node(i), world) for i in range(n)]
    return sim, world, mpis


def run_spmd(sim, mpis, fn):
    """Run ``fn(mpi, rank)`` as one process per rank; return results."""
    results = [None] * len(mpis)

    def wrap(rank):
        results[rank] = yield from fn(mpis[rank], rank)

    procs = [sim.spawn(wrap(r), name=f"rank{r}") for r in range(len(mpis))]
    sim.run()
    for p in procs:
        assert p.triggered and p.ok, f"rank process died: {p}"
    return results


def int_sum(a: bytes, b: bytes) -> bytes:
    return (int.from_bytes(a, "little") + int.from_bytes(b, "little")) \
        .to_bytes(8, "little")


class TestBcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_all_ranks_receive(self, n):
        sim, _, mpis = make_world(n)
        payload = b"broadcast-me"

        def fn(mpi, rank):
            data = payload if rank == 0 else None
            out = yield from bcast(mpi, data, root=0)
            return out

        results = run_spmd(sim, mpis, fn)
        assert results == [payload] * n

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        sim, _, mpis = make_world(4)

        def fn(mpi, rank):
            data = b"from-root" if rank == root else None
            return (yield from bcast(mpi, data, root=root))

        assert run_spmd(sim, mpis, fn) == [b"from-root"] * 4

    def test_root_without_data_rejected(self):
        sim, _, mpis = make_world(2)

        def fn(mpi, rank):
            if rank == 0:
                with pytest.raises(MpiError):
                    yield from bcast(mpi, None, root=0)
                # Unblock rank 1 afterwards.
                yield from bcast(mpi, b"x", root=0)
            else:
                return (yield from bcast(mpi, None, root=0))

        run_spmd(sim, mpis, fn)

    def test_bad_root_rejected(self):
        sim, _, mpis = make_world(2)

        def fn(mpi, rank):
            with pytest.raises(MpiError):
                yield from bcast(mpi, b"x", root=9)
            return None
            yield  # pragma: no cover

        # Only rank 0 runs; the error is raised before any communication.
        sim.run_process(fn(mpis[0], 0))

    def test_works_over_baseline(self):
        sim, _, mpis = make_world(4, backend="mpich")

        def fn(mpi, rank):
            data = b"baseline" if rank == 0 else None
            return (yield from bcast(mpi, data, root=0))

        assert run_spmd(sim, mpis, fn) == [b"baseline"] * 4


class TestGatherScatter:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_gather_collects_in_rank_order(self, n):
        sim, _, mpis = make_world(n)

        def fn(mpi, rank):
            return (yield from gather(mpi, bytes([rank]) * 4, root=0))

        results = run_spmd(sim, mpis, fn)
        assert results[0] == [bytes([r]) * 4 for r in range(n)]
        assert all(r is None for r in results[1:])

    def test_scatter_distributes(self):
        n = 4
        sim, _, mpis = make_world(n)
        chunks = [bytes([10 + r]) * 8 for r in range(n)]

        def fn(mpi, rank):
            data = chunks if rank == 0 else None
            return (yield from scatter(mpi, data, root=0))

        assert run_spmd(sim, mpis, fn) == chunks

    def test_scatter_wrong_chunk_count(self):
        sim, _, mpis = make_world(2)

        def fn(mpi, rank):
            with pytest.raises(MpiError, match="chunks"):
                yield from scatter(mpi, [b"only-one"], root=0)
            yield from scatter(mpi, [b"a", b"b"], root=0)

        def fn1(mpi, rank):
            return (yield from scatter(mpi, None, root=0))

        sim.spawn(fn1(mpis[1], 1))
        sim.run_process(fn(mpis[0], 0))

    def test_gather_scatter_roundtrip(self):
        n = 4
        sim, _, mpis = make_world(n)

        def fn(mpi, rank):
            mine = bytes([rank]) * 4
            gathered = yield from gather(mpi, mine, root=2)
            redistributed = yield from scatter(mpi, gathered, root=2)
            return redistributed

        assert run_spmd(sim, mpis, fn) == [bytes([r]) * 4 for r in range(n)]


class TestReduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_sum_reduction(self, n):
        sim, _, mpis = make_world(n)

        def fn(mpi, rank):
            value = (rank + 1).to_bytes(8, "little")
            return (yield from reduce(mpi, value, int_sum, root=0))

        results = run_spmd(sim, mpis, fn)
        assert int.from_bytes(results[0], "little") == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    def test_noncommutative_op_order(self):
        # Concatenation exposes operand ordering: with op(lower, higher)
        # on a binomial tree the result is rank order for P=2.
        sim, _, mpis = make_world(2)

        def fn(mpi, rank):
            return (yield from reduce(mpi, bytes([65 + rank]),
                                      operator.add, root=0))

        results = run_spmd(sim, mpis, fn)
        assert results[0] == b"AB"

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_allreduce_everyone_gets_sum(self, n):
        sim, _, mpis = make_world(n)

        def fn(mpi, rank):
            value = (rank + 1).to_bytes(8, "little")
            out = yield from allreduce(mpi, value, int_sum)
            return int.from_bytes(out, "little")

        assert run_spmd(sim, mpis, fn) == [n * (n + 1) // 2] * n


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_no_rank_escapes_early(self, n):
        sim, _, mpis = make_world(n)
        entered = {}
        left = {}

        def fn(mpi, rank):
            # Stagger arrival: rank r arrives at t = 10*r.
            yield mpi.sim.timeout(10.0 * rank) if hasattr(mpi, "sim") \
                else sim.timeout(10.0 * rank)
            entered[rank] = sim.now
            yield from barrier(mpi)
            left[rank] = sim.now
            return None

        run_spmd(sim, mpis, fn)
        # Nobody leaves before the last rank has entered.
        assert min(left.values()) >= max(entered.values())

    def test_two_consecutive_barriers(self):
        sim, _, mpis = make_world(3)

        def fn(mpi, rank):
            yield from barrier(mpi)
            yield from barrier(mpi)
            return sim.now

        run_spmd(sim, mpis, fn)  # no deadlock, no tag confusion


class TestAlltoall:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_full_exchange(self, n):
        sim, _, mpis = make_world(n)

        def fn(mpi, rank):
            chunks = [bytes([rank, dest]) for dest in range(n)]
            return (yield from alltoall(mpi, chunks))

        results = run_spmd(sim, mpis, fn)
        for me in range(n):
            assert results[me] == [bytes([frm, me]) for frm in range(n)]

    def test_wrong_chunk_count(self):
        sim, _, mpis = make_world(2)

        def fn(mpi, rank):
            with pytest.raises(MpiError):
                yield from alltoall(mpi, [b"x"] * 5)
            return None
            yield  # pragma: no cover

        sim.run_process(fn(mpis[0], 0))


class TestCollectivesBenefitFromAggregation:
    def test_alltoall_fewer_packets_with_window(self):
        # Rank 0's engine sends n-1 chunks; with aggregation they coalesce
        # per destination... across destinations each needs its own packet,
        # but the barrier-tag control and data still shrink packet count
        # versus fifo when multiple small sends target the same peer.
        n = 4
        counts = {}
        for strategy in ("aggregation", "fifo"):
            sim, _, mpis = make_world(n, strategy=strategy)

            def fn(mpi, rank):
                # Two back-to-back alltoalls: with aggregation the second
                # round's chunk to a peer can share a packet with barrier
                # traffic / retries to the same peer.
                a = yield from alltoall(mpi, [bytes(16)] * n)
                b = yield from alltoall(mpi, [bytes(16)] * n)
                return a and b and None

            run_spmd(sim, mpis, fn)
            counts[strategy] = sum(m.engine.stats.phys_packets for m in mpis)
        assert counts["aggregation"] <= counts["fifo"]

"""Unit tests for the NIC/link/node/topology substrate."""

import pytest

from repro.errors import NetworkError
from repro.netsim import (
    Cluster,
    Frame,
    FrameKind,
    MX_MYRI10G,
    QUADRICS_QM500,
    TCP_GIGE,
    NicProfile,
)
from repro.sim import Simulator, Tracer


@pytest.fixture()
def sim():
    return Simulator()


def make_cluster(sim, rails=(MX_MYRI10G,), n_nodes=2, tracer=None):
    return Cluster(sim, n_nodes=n_nodes, rails=rails, tracer=tracer)


def frame(src=0, dst=1, size=1000, payload=None, kind=FrameKind.DATA):
    return Frame(src_node=src, dst_node=dst, kind=kind,
                 wire_size=size, payload=payload, payload_size=size)


class TestFrame:
    def test_header_size(self):
        f = Frame(src_node=0, dst_node=1, kind="data", wire_size=120,
                  payload_size=100)
        assert f.header_size == 20

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Frame(src_node=0, dst_node=1, kind="d", wire_size=-1)
        with pytest.raises(ValueError):
            Frame(src_node=0, dst_node=1, kind="d", wire_size=10, payload_size=-1)

    def test_payload_cannot_exceed_wire(self):
        with pytest.raises(ValueError):
            Frame(src_node=0, dst_node=1, kind="d", wire_size=10, payload_size=11)

    def test_frame_ids_unique(self):
        ids = {frame().frame_id for _ in range(100)}
        assert len(ids) == 100


class TestDelivery:
    def test_frame_arrives_with_payload(self, sim):
        cluster = make_cluster(sim)
        got = []
        cluster.node(1).nic().set_receive_handler(lambda f: got.append(f))
        f = frame(payload={"hello": "world"})
        cluster.node(0).nic().post_send(f)
        sim.run()
        assert len(got) == 1
        assert got[0].payload == {"hello": "world"}
        assert cluster.conservation_ok()

    def test_arrival_time_includes_all_components(self, sim):
        p = MX_MYRI10G
        cluster = make_cluster(sim, rails=(p,))
        times = []
        cluster.node(1).nic().set_receive_handler(lambda f: times.append(sim.now))
        size = 10_000
        cluster.node(0).nic().post_send(frame(size=size))
        sim.run()
        expected = (
            p.send_overhead_us + size / p.bandwidth_mbps + p.latency_us
            + p.recv_overhead_us
        )
        assert times[0] == pytest.approx(expected)

    def test_cpu_gap_delays_transmission(self, sim):
        cluster = make_cluster(sim)
        times = []
        cluster.node(1).nic().set_receive_handler(lambda f: times.append(sim.now))
        cluster.node(0).nic().post_send(frame(size=100), cpu_gap_us=5.0)
        sim.run()
        base = make_time_without_gap = None
        # Re-run a fresh sim without the gap to compare.
        sim2 = Simulator()
        cluster2 = make_cluster(sim2)
        times2 = []
        cluster2.node(1).nic().set_receive_handler(lambda f: times2.append(sim2.now))
        cluster2.node(0).nic().post_send(frame(size=100))
        sim2.run()
        assert times[0] == pytest.approx(times2[0] + 5.0)

    def test_in_order_delivery(self, sim):
        cluster = make_cluster(sim)
        got = []
        cluster.node(1).nic().set_receive_handler(lambda f: got.append(f.payload))
        nic0 = cluster.node(0).nic()
        for i in range(10):
            nic0.post_send(frame(size=100 + i, payload=i))
        sim.run()
        assert got == list(range(10))

    def test_bidirectional_links(self, sim):
        cluster = make_cluster(sim)
        got0, got1 = [], []
        cluster.node(0).nic().set_receive_handler(lambda f: got0.append(f.payload))
        cluster.node(1).nic().set_receive_handler(lambda f: got1.append(f.payload))
        cluster.node(0).nic().post_send(frame(0, 1, payload="a"))
        cluster.node(1).nic().post_send(frame(1, 0, payload="b"))
        sim.run()
        assert got0 == ["b"] and got1 == ["a"]

    def test_full_duplex_rx_does_not_block_tx(self, sim):
        # Node 0 streams to node 1 while node 1 streams to node 0; total
        # time must be ~one direction's time, not the sum.
        cluster = make_cluster(sim)
        n = 20
        for src, dst in ((0, 1), (1, 0)):
            nic = cluster.node(src).nic()
            for _ in range(n):
                nic.post_send(frame(src, dst, size=10_000))
        cluster.node(0).nic().set_receive_handler(lambda f: None)
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        end = sim.run()
        p = MX_MYRI10G
        one_way_serialization = n * 10_000 / p.bandwidth_mbps
        assert end < 1.5 * one_way_serialization + 20.0

    def test_no_handler_raises(self, sim):
        cluster = make_cluster(sim)
        cluster.node(0).nic().post_send(frame())
        with pytest.raises(NetworkError, match="no receive handler"):
            sim.run()

    def test_wrong_src_node_rejected(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError, match="src node"):
            cluster.node(0).nic().post_send(frame(src=1, dst=0))

    def test_unconnected_destination_rejected(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError, match="no link"):
            cluster.node(0).nic().post_send(frame(dst=7))

    def test_negative_cpu_gap_rejected(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError):
            cluster.node(0).nic().post_send(frame(), cpu_gap_us=-1.0)


class TestBusyIdle:
    def test_nic_busy_during_tx(self, sim):
        cluster = make_cluster(sim)
        nic = cluster.node(0).nic()
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        assert nic.idle
        nic.post_send(frame(size=100_000))
        assert not nic.idle
        sim.run()
        assert nic.idle

    def test_idle_callback_fires_after_each_drain(self, sim):
        cluster = make_cluster(sim)
        nic = cluster.node(0).nic()
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        idles = []
        nic.add_idle_callback(lambda n: idles.append(sim.now))
        nic.post_send(frame(size=1000))
        sim.run()
        assert len(idles) == 1
        nic.post_send(frame(size=1000))
        sim.run()
        assert len(idles) == 2

    def test_idle_callback_skipped_if_requeued_meanwhile(self, sim):
        # A send posted at the exact drain instant must suppress the stale
        # idle notification (the callback checks nic.idle).
        cluster = make_cluster(sim)
        nic = cluster.node(0).nic()
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        calls = []
        nic.add_idle_callback(lambda n: calls.append(n.idle))
        done = nic.post_send(frame(size=1000))
        done.add_callback(lambda e: nic.post_send(frame(size=1000)))
        sim.run()
        # Two drains happened; callbacks only ever observed a truly idle NIC.
        assert all(calls)

    def test_pipelined_burst_uses_gap_not_full_overhead(self, sim):
        # A queued burst must be faster than the same frames sent one at a
        # time with a full injection overhead each (MPICH's efficient
        # pipelining from paper 5.2).
        p = MX_MYRI10G.with_overrides(pipeline_gap_us=0.1, send_overhead_us=2.0)
        sim1 = Simulator()
        c1 = make_cluster(sim1, rails=(p,))
        c1.node(1).nic().set_receive_handler(lambda f: None)
        n = 10
        for _ in range(n):
            c1.node(0).nic().post_send(
                Frame(src_node=0, dst_node=1, kind="data", wire_size=64,
                      payload_size=64))
        t_burst = sim1.run()
        per_frame_solo = p.send_overhead_us + 64 / p.bandwidth_mbps
        t_solo = n * per_frame_solo
        assert t_burst < t_solo

    def test_busy_time_accounting(self, sim):
        cluster = make_cluster(sim)
        nic = cluster.node(0).nic()
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        nic.post_send(frame(size=125_000))  # 100us at 1250MB/s
        sim.run()
        assert nic.busy_time == pytest.approx(
            MX_MYRI10G.send_overhead_us + 125_000 / MX_MYRI10G.bandwidth_mbps
        )

    def test_stats_counters(self, sim):
        cluster = make_cluster(sim)
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        nic0 = cluster.node(0).nic()
        for _ in range(3):
            nic0.post_send(frame(size=500))
        sim.run()
        assert nic0.frames_sent == 3
        assert nic0.bytes_sent == 1500
        assert cluster.node(1).nic().frames_received == 3
        assert cluster.node(1).nic().bytes_received == 1500


class TestTopology:
    def test_multi_rail_cluster(self, sim):
        cluster = make_cluster(sim, rails=(MX_MYRI10G, QUADRICS_QM500))
        assert len(cluster.node(0).nics) == 2
        assert cluster.node(0).nic(1).profile is QUADRICS_QM500
        assert cluster.rail_index("elan") == 1
        assert cluster.rail_index("mx_myri10g") == 0

    def test_rail_index_unknown(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError):
            cluster.rail_index("infiniband")

    def test_three_node_full_mesh(self, sim):
        cluster = make_cluster(sim, n_nodes=3)
        got = []
        for node in cluster.nodes:
            node.nic().set_receive_handler(
                lambda f, nid=node.node_id: got.append((f.src_node, nid)))
        cluster.node(0).nic().post_send(frame(0, 2))
        cluster.node(2).nic().post_send(frame(2, 1))
        sim.run()
        assert sorted(got) == [(0, 2), (2, 1)]

    def test_rails_are_independent(self, sim):
        cluster = make_cluster(sim, rails=(MX_MYRI10G, TCP_GIGE))
        arrivals = {}
        for rail in (0, 1):
            cluster.node(1).nic(rail).set_receive_handler(
                lambda f, r=rail: arrivals.setdefault(r, sim.now))
        for rail in (0, 1):
            cluster.node(0).nic(rail).post_send(frame(size=10_000))
        sim.run()
        assert arrivals[0] < arrivals[1]  # MX far faster than TCP

    def test_cluster_validation(self, sim):
        with pytest.raises(NetworkError):
            Cluster(sim, n_nodes=1, rails=(MX_MYRI10G,))
        with pytest.raises(NetworkError):
            Cluster(sim, n_nodes=2, rails=())
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError):
            cluster.node(9)

    def test_node_nic_validation(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(NetworkError):
            cluster.node(0).nic(3)

    def test_tracer_sees_tx_rx(self, sim):
        tracer = Tracer(enabled=True)
        cluster = make_cluster(sim, tracer=tracer)
        cluster.node(1).nic().set_receive_handler(lambda f: None)
        cluster.node(0).nic().post_send(frame(size=100))
        sim.run()
        kinds = {r.kind for r in tracer}
        assert {"tx_start", "tx_done", "wire_enter", "wire_exit",
                "rx_start", "rx_done", "idle"} <= kinds


class TestProfileValidation:
    def test_profile_rejects_bad_values(self):
        with pytest.raises(ValueError):
            NicProfile(name="x", tech="x", latency_us=-1, bandwidth_mbps=100,
                       send_overhead_us=0, recv_overhead_us=0, mtu_bytes=1000,
                       rdv_threshold=1000, gather_scatter=False, rdma=False,
                       pipeline_gap_us=0)
        with pytest.raises(ValueError):
            NicProfile(name="x", tech="x", latency_us=1, bandwidth_mbps=100,
                       send_overhead_us=0, recv_overhead_us=0, mtu_bytes=0,
                       rdv_threshold=1000, gather_scatter=False, rdma=False,
                       pipeline_gap_us=0)

    def test_with_overrides(self):
        p = MX_MYRI10G.with_overrides(bandwidth_mbps=100.0)
        assert p.bandwidth_mbps == 100.0
        assert p.latency_us == MX_MYRI10G.latency_us
        assert MX_MYRI10G.bandwidth_mbps == 1250.0  # original untouched

    def test_profile_lookup(self):
        from repro.netsim import profile_by_name

        assert profile_by_name("mx_myri10g") is MX_MYRI10G
        with pytest.raises(KeyError):
            profile_by_name("nope")

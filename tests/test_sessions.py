"""Failure detection, session epochs and crash/restart recovery.

Covers the opt-in ``sessions="epoch"`` subsystem end to end — the
hello/welcome handshake, the virtual-time heartbeat failure detector, the
atomic per-peer teardown (reliability windows, credit ledgers, rendezvous
transfers, matcher state and their timers), stale-epoch fencing across a
crash/restart, and the ULFM-style revoke/shrink surface — plus the
guarantee the default mode stays inert (every new counter zero, engines
never halted, no session frames on the wire).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EngineParams, NmadEngine, VirtualData
from repro.errors import CommRevokedError, PeerDeadError, SimulationError
from repro.madmpi import Communicator, MadMpi
from repro.netsim import MX_MYRI10G, Cluster, FaultPlan
from repro.netsim.frames import Frame, FrameKind
from repro.sim import Simulator


def make_pair(params, n_nodes=2):
    sim = Simulator()
    cluster = Cluster(sim, n_nodes=n_nodes, rails=(MX_MYRI10G,))
    engines = [NmadEngine(cluster.node(i), params=params)
               for i in range(n_nodes)]
    return sim, cluster, engines


#: Paper-faithful reliability + sessions, with a detection window small
#: enough that tests stay fast but large enough that live traffic (acks,
#: pongs) always refreshes liveness well inside hb_timeout_us.
EPOCH = dict(sessions="epoch", reliability="ack",
             rel_timeout_us=100.0, rel_ack_delay_us=10.0,
             hb_interval_us=50.0, hb_timeout_us=200.0)

SESSION_COUNTERS = ("peers_suspected", "peers_dead", "epochs_started",
                    "stale_frames_fenced", "heartbeats_sent")

#: Worst-case detection latency: a full silence timeout plus up to two
#: monitor ticks of scheduling quantization.
def detection_bound(params):
    return params.hb_timeout_us + 2 * params.hb_interval_us + 25.0


class TestDefaultsStayPaperFaithful:
    def test_off_mode_runs_with_all_counters_zero(self):
        sim, cluster, (e0, e1) = make_pair(EngineParams())
        for i in range(20):
            e0.isend(1, VirtualData(1024), tag=i)

        def rx():
            for i in range(20):
                yield from e1.recv(src=0, tag=i)

        sim.run_process(rx())
        sim.run()
        assert cluster.conservation_ok()
        for engine in (e0, e1):
            assert not engine.sessions.active
            assert engine.halted is False
            for counter in SESSION_COUNTERS:
                assert getattr(engine.stats, counter) == 0

    def test_off_mode_node_crash_does_not_halt_the_engine(self):
        # Without the opt-in, no crash hook is installed: the engine keeps
        # the paper's everyone-lives model (and its exact event stream).
        sim, cluster, (e0, e1) = make_pair(EngineParams())
        sim.schedule(10.0, cluster.node(1).crash)
        sim.run()
        assert e1.halted is False
        assert e1.stats.peers_dead == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            EngineParams(sessions="lease")
        with pytest.raises(ValueError):
            EngineParams(sessions="epoch", hb_interval_us=0.0)
        with pytest.raises(ValueError):
            # Timeout below two monitor ticks: no probe could round-trip.
            EngineParams(sessions="epoch",
                         hb_interval_us=50.0, hb_timeout_us=90.0)
        EngineParams(sessions="epoch",
                     hb_interval_us=50.0, hb_timeout_us=100.0)

    def test_session_header_is_accounted_on_stamp(self):
        # The fencing guarantee is not free: every stamped frame carries
        # the session header on the wire (exactly once — idempotent).
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        frame = Frame(src_node=0, dst_node=1, kind=FrameKind.DATA,
                      wire_size=100)
        e0.sessions.stamp(frame)
        assert frame.session == (0, -1)  # receiver incarnation unknown
        assert frame.wire_size == 100 + params.hdr.session_header
        e0.sessions.stamp(frame)
        assert frame.wire_size == 100 + params.hdr.session_header

    def test_off_mode_never_stamps(self):
        sim, cluster, (e0, e1) = make_pair(EngineParams())
        frame = Frame(src_node=0, dst_node=1, kind=FrameKind.DATA,
                      wire_size=100)
        e0.sessions.stamp(frame)
        assert frame.session is None
        assert frame.wire_size == 100


class TestHandshake:
    def test_first_contact_runs_hello_welcome(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        payload = bytes(range(256)) * 8

        def app():
            e0.isend(1, payload, tag=3)
            req = yield from e1.recv(src=0, tag=3)
            return req

        req = sim.run_process(app())
        assert req.data.tobytes() == payload
        # One epoch opened on each side; nothing fenced, nobody suspected.
        assert e0.stats.epochs_started == 1
        assert e1.stats.epochs_started == 1
        assert e0.stats.stale_frames_fenced == 0
        assert e0.stats.peers_suspected == 0
        assert e0.sessions.quiesced and e1.sessions.quiesced
        assert cluster.conservation_ok()

    def test_sends_deferred_behind_handshake_flush_in_order(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        n = 10
        reqs = [e1.irecv(src=0) for _ in range(n)]  # wildcard tag
        for i in range(n):
            e0.isend(1, VirtualData(1024), tag=i)
        # Everything above queued at t=0: the data sits in deferred_tx
        # until the welcome lands, then flushes in submission order.
        sim.run(until=2_000.0)
        assert [r.actual_tag for r in reqs] == list(range(n))
        assert e0.sessions.n_deferred_tx == 0
        assert e0.sessions.quiesced
        assert cluster.conservation_ok()


class TestFailureDetection:
    def test_sender_detects_crashed_receiver_within_timeout(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        crash_at = 2.0
        cluster.schedule_node_fault(1, FaultPlan(node_crash_at=crash_at))
        outcome = {}

        def driver():
            reqs = [e0.isend(1, VirtualData(2048), tag=i) for i in range(20)]
            while not e0.sessions.is_dead(1) and sim.now < 5_000.0:
                yield sim.timeout(5.0)
            outcome["detected_at"] = sim.now
            outcome["reqs"] = reqs

        sim.spawn(driver())
        sim.run(until=6_000.0)
        assert e0.sessions.is_dead(1)
        assert e0.sessions.dead_peers() == [1]
        detected = outcome["detected_at"] - crash_at
        assert detected <= detection_bound(params)
        assert e0.stats.peers_suspected >= 1
        assert e0.stats.peers_dead == 1
        # Crash mid-eager: every in-flight request fails loudly, none hang.
        failed = [r for r in outcome["reqs"] if r.failed]
        assert failed, "no request observed the peer's death"
        for req in outcome["reqs"]:
            assert req.complete
            if req.failed:
                assert isinstance(req.error, PeerDeadError)
        # The teardown left no reliability state or timers behind.
        assert e0.reliability.n_unacked == 0
        assert not e0.reliability.has_outstanding(1)
        assert e0.quiesced()
        assert cluster.conservation_ok(allow_faults=True)

    def test_new_requests_toward_a_dead_peer_raise_immediately(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        cluster.schedule_node_fault(1, FaultPlan(node_crash_at=2.0))

        def driver():
            e0.isend(1, VirtualData(4096), tag=0)
            while not e0.sessions.is_dead(1) and sim.now < 5_000.0:
                yield sim.timeout(5.0)

        sim.spawn(driver())
        sim.run(until=6_000.0)
        with pytest.raises(PeerDeadError):
            e0.isend(1, VirtualData(64), tag=1)
        with pytest.raises(PeerDeadError):
            e0.irecv(src=1)

    def test_posted_receive_fails_when_the_sender_dies(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        crash_at = 20.0
        cluster.schedule_node_fault(0, FaultPlan(node_crash_at=crash_at))
        # A pure receiver: the sourced post alone arms the detector (it
        # runs the handshake so the peer's silence is distinguishable).
        req = e1.irecv(src=0, tag=0)
        sim.run(until=2_000.0)
        assert req.failed
        assert isinstance(req.error, PeerDeadError)
        assert e1.sessions.is_dead(0)
        assert e1.stats.peers_dead == 1

    def test_crash_mid_rendezvous_aborts_the_transfer(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        crash_at = 60.0
        cluster.schedule_node_fault(1, FaultPlan(node_crash_at=crash_at))
        # 256 KB >> the 32 KB threshold: rendezvous, ~200us on the wire,
        # so the crash lands mid-transfer with the grant outstanding.
        rreq = e1.irecv(src=0, tag=0, nbytes=256 * 1024)
        sreq = e0.isend(1, VirtualData(256 * 1024), tag=0)
        sim.run(until=3_000.0)
        assert sreq.failed
        assert isinstance(sreq.error, PeerDeadError)
        assert not e0.rendezvous.involves_peer(1)
        assert e0.quiesced()
        assert cluster.conservation_ok(allow_faults=True)
        assert not rreq.complete or rreq.failed  # the dead side just stops

    def test_crashed_engine_goes_silent(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        e1.irecv(src=0, tag=0)  # gives e1 a monitored interest in node 0
        sim.schedule(100.0, cluster.node(1).crash)
        sim.run(until=120.0)
        assert e1.halted is True
        assert e1.sessions.n_monitors_armed == 0
        hb, acks = e1.stats.heartbeats_sent, e1.stats.acks_sent
        sim.run(until=3_000.0)
        # Fail-stop: a dead process sends nothing into its successor's
        # world — no heartbeat, ack or retransmit timer survives halt().
        assert e1.stats.heartbeats_sent == hb
        assert e1.stats.acks_sent == acks


class TestTeardownTimerHygiene:
    def test_nack_resend_timer_is_cancelled_on_peer_death(self):
        # Regression for the ghost-resend bug: a NACK-backoff timer armed
        # before the peer died must not re-submit the old-epoch segment
        # after the teardown.  Without the resend_gen bump in
        # FlowControlLayer.reset_peer this fails: nack_resends grows after
        # the death and the stale wrap re-enters the window.
        params = EngineParams(sessions="epoch", reliability="ack",
                              rel_timeout_us=100.0, rel_ack_delay_us=5.0,
                              hb_interval_us=25.0, hb_timeout_us=50.0,
                              flow_control="credit",
                              max_unexpected_bytes=3072,
                              nack_delay_us=3_000.0)
        sim, cluster, (e0, e1) = make_pair(params)
        outcome = {}

        def driver():
            e0.irecv(src=1, tag=99)  # sustained interest: death is declared
            for i in range(4):       # 4 KB against a 3 KB budget: 1 NACK
                e0.isend(1, VirtualData(1024), tag=i)
            while not e0.flowcontrol.pending_resends and sim.now < 1_000.0:
                yield sim.timeout(2.0)
            outcome["nacked_at"] = sim.now
            cluster.node(1).crash()
            while not e0.sessions.is_dead(1) and sim.now < 1_000.0:
                yield sim.timeout(5.0)
            outcome["resends_at_death"] = e0.stats.nack_resends

        sim.spawn(driver())
        sim.run(until=10_000.0)  # far past the 3ms resend backoff
        assert "nacked_at" in outcome, "overflow never produced a NACK"
        assert e0.sessions.is_dead(1)
        assert e0.stats.nack_resends == outcome["resends_at_death"] == 0
        assert e0.flowcontrol.pending_resends == 0
        assert e0.quiesced()
        assert cluster.conservation_ok(allow_faults=True)

    def test_credit_grant_timer_is_cancelled_on_peer_death(self):
        # The mirror image on the receiver side: a delayed credit grant
        # scheduled toward a peer that then dies must never fire.  Without
        # the grant_gen bump in reset_peer, credits_granted grows at
        # t = grant_delay and the frame goes to a corpse.
        params = EngineParams(sessions="epoch", reliability="ack",
                              rel_timeout_us=100.0, rel_ack_delay_us=5.0,
                              hb_interval_us=25.0, hb_timeout_us=50.0,
                              flow_control="credit",
                              credit_grant_delay_us=2_000.0)
        sim, cluster, (e0, e1) = make_pair(params)
        outcome = {}

        def driver():
            got = e0.irecv(src=1, tag=0, nbytes=2048)
            pending = e0.irecv(src=1, tag=1)  # keeps the monitor armed
            e1.isend(0, VirtualData(2048), tag=0)
            while not got.complete and sim.now < 1_000.0:
                yield sim.timeout(5.0)
            # The match released credit: a grant is now waiting out its
            # 2ms delay.  Kill the peer long before it fires.
            assert "[grant pending]" in e0.flowcontrol.describe_peer(1)
            cluster.node(1).crash()
            while not e0.sessions.is_dead(1) and sim.now < 1_000.0:
                yield sim.timeout(5.0)
            outcome["granted_at_death"] = e0.stats.credits_granted
            outcome["pending_req"] = pending

        sim.spawn(driver())
        sim.run(until=8_000.0)
        assert e0.sessions.is_dead(1)
        assert e0.stats.credits_granted == outcome["granted_at_death"]
        assert "[grant pending]" not in e0.flowcontrol.describe_peer(1)
        assert e0.flowcontrol.quiesced
        assert outcome["pending_req"].failed
        assert isinstance(outcome["pending_req"].error, PeerDeadError)
        assert e0.quiesced()

    def test_credit_blocked_sender_fails_over_cleanly_on_death(self):
        # Crash with credit outstanding: the blocked backlog fails, the
        # ledger zeroes, the window gate lifts — nothing leaks.
        params = EngineParams(sessions="epoch", reliability="ack",
                              rel_timeout_us=100.0, rel_ack_delay_us=10.0,
                              hb_interval_us=50.0, hb_timeout_us=200.0,
                              flow_control="credit",
                              credit_bytes=64 * 1024, credit_wraps=256)
        sim, cluster, (e0, e1) = make_pair(params)
        cluster.schedule_node_fault(1, FaultPlan(node_crash_at=30.0))
        # 160 KB against a 64 KB budget; the receiver never posts, never
        # releases: the sender wedges on credit, then the peer dies.
        reqs = [e0.isend(1, VirtualData(4096), tag=i) for i in range(40)]
        sim.run(until=3_000.0)
        assert e0.sessions.is_dead(1)
        assert e0.stats.credit_stalls >= 1
        failed = [r for r in reqs if r.failed]
        assert failed, "the credit-blocked backlog never failed"
        for req in reqs:
            assert req.complete
            if req.failed:
                assert isinstance(req.error, PeerDeadError)
        assert e0.window.backlog(1) == 0
        assert e0.quiesced()
        assert cluster.conservation_ok(allow_faults=True)


class TestQuiesce:
    def test_quiesce_drains_a_healthy_engine(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)

        def app():
            for i in range(5):
                e0.isend(1, VirtualData(2048), tag=i)
            for i in range(5):
                yield from e1.recv(src=0, tag=i)
            yield from e0.quiesce(poll_us=5.0)
            return sim.now

        sim.run_process(app())
        assert e0.quiesced() and e1.quiesced()

    def test_quiesce_times_out_while_a_handshake_hangs(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        cluster.schedule_node_fault(1, FaultPlan(node_crash_at=0.5))

        def app():
            e0.isend(1, VirtualData(4096), tag=0)
            with pytest.raises(SimulationError):
                yield from e0.quiesce(poll_us=10.0, timeout_us=100.0)

        sim.spawn(app())
        sim.run(until=3_000.0)
        # After the detector fires, the deferred frame fails and the
        # engine does reach quiescence.
        assert e0.sessions.is_dead(1)
        assert e0.quiesced()


class TestCrashRestartRecovery:
    def test_restart_fences_stale_frames_and_redelivers_byte_exact(self):
        params = EngineParams(**EPOCH)
        sim, cluster, (e0, e1) = make_pair(params)
        node1 = cluster.node(1)
        payload = bytes(range(256)) * 64  # 16 KB, eager
        outcome = {}
        # Crash after the handshake (~4.6us) but before the first data
        # frame lands (~20us); restart *before* the sender's detector
        # fires, so its retransmits (stamped with the old view of the
        # receiver) land on the new incarnation and must be fenced.
        cluster.schedule_node_fault(
            1, FaultPlan(node_crash_at=10.0, node_restart_at=50.0))

        def revive():
            e1b = NmadEngine(node1, params=params)
            outcome["e1b"] = e1b

        def post_recv():
            # Deliberately later than the sender's first retransmit
            # (~rto after tx): the fresh engine sees stale frames first.
            e1b = outcome["e1b"]
            outcome["rx"] = e1b.irecv(src=0, tag=7, nbytes=len(payload))

        sim.schedule(52.0, revive)
        sim.schedule(300.0, post_recv)

        def sender():
            req = e0.isend(1, payload, tag=7)
            while not req.complete and sim.now < 2_000.0:
                yield sim.timeout(10.0)
            outcome["first_error"] = req.error
            req2 = None
            while req2 is None and sim.now < 3_000.0:
                if not e0.sessions.is_dead(1):
                    req2 = e0.isend(1, payload, tag=7)
                else:
                    yield sim.timeout(20.0)
            outcome["req2"] = req2
            while req2 is not None and not req2.complete \
                    and sim.now < 4_000.0:
                yield sim.timeout(10.0)

        sim.spawn(sender())
        sim.run(until=4_500.0)

        e1b = outcome["e1b"]
        assert e1b.sessions.incarnation == 1
        # The first life's frames were fenced, not delivered.
        assert e1b.stats.stale_frames_fenced >= 1
        # The sender saw the failure loudly...
        assert isinstance(outcome["first_error"], PeerDeadError)
        assert e0.stats.peers_dead == 1
        # ...was revived by the new incarnation's hello...
        assert e0.stats.epochs_started >= 2
        assert not e0.sessions.is_dead(1)
        # ...and the re-send delivered byte-exactly to the new epoch.
        rx = outcome["rx"]
        assert rx.complete and not rx.failed
        assert rx.data.tobytes() == payload
        req2 = outcome["req2"]
        assert req2 is not None and req2.complete and not req2.failed
        # No epoch leaked state into the next: both engines fully drain.
        assert e0.reliability.n_unacked == 0
        assert e0.quiesced() and e1b.quiesced()
        assert cluster.conservation_ok(allow_faults=True)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(crash_at=st.integers(1, 300), restart_gap=st.integers(60, 400),
           n_msgs=st.integers(1, 5))
    def test_no_double_delivery_under_random_crash_schedules(
            self, crash_at, restart_gap, n_msgs):
        """Across a random crash/restart of the receiver, no receiver
        incarnation ever completes a tag it was not re-sent, and every
        delivery is byte-exact — old-epoch frames never ghost into the
        new epoch."""
        params = EngineParams(**EPOCH)
        sim, cluster, engines = make_pair(params)
        e0, _e1 = engines
        node1 = cluster.node(1)
        restart_at = float(crash_at + restart_gap)
        end = restart_at + 2_500.0
        cluster.schedule_node_fault(1, FaultPlan(
            node_crash_at=float(crash_at), node_restart_at=restart_at))
        payloads = {t: bytes([t + 1]) * (512 + 97 * t) for t in range(n_msgs)}

        rx0 = [engines[1].irecv(src=0, tag=t, nbytes=len(payloads[t]))
               for t in range(n_msgs)]
        outcome = {"resent": set(), "rx1": []}

        def revive():
            e1b = NmadEngine(node1, params=params)
            outcome["e1b"] = e1b
            outcome["rx1"] = [
                e1b.irecv(src=0, tag=t, nbytes=len(payloads[t]))
                for t in range(n_msgs)
            ]

        sim.schedule(restart_at + 1.0, revive)

        def sender():
            reqs = outcome["reqs"] = {
                t: e0.isend(1, payloads[t], tag=t) for t in range(n_msgs)}
            while sim.now < end - 400.0:
                for t in list(reqs):
                    if reqs[t].failed and t not in outcome["resent"]:
                        try:
                            reqs[t] = e0.isend(1, payloads[t], tag=t)
                            outcome["resent"].add(t)
                        except PeerDeadError:
                            pass  # not revived yet; retry next round
                yield sim.timeout(25.0)

        sim.spawn(sender())
        sim.run(until=end)

        for recvs in (rx0, outcome["rx1"]):
            for t, req in enumerate(recvs):
                if req.complete and not req.failed:
                    assert req.data.tobytes() == payloads[t]
        delivered_old = {t for t, req in enumerate(rx0)
                         if req.complete and not req.failed}
        delivered_new = {t for t, req in enumerate(outcome["rx1"])
                         if req.complete and not req.failed}
        # The fence property, part 1: a tag delivered in *both*
        # incarnations must have been explicitly sent twice — an old-epoch
        # duplicate never ghosts into the new epoch on its own.
        assert delivered_old & delivered_new <= outcome["resent"]
        # Part 2: anything the new incarnation completed was either a
        # deliberate re-send or a first send the sender still considers
        # cleanly delivered (e.g. flushed from behind the handshake) —
        # never a frame whose request failed without a re-send.
        reqs = outcome["reqs"]
        for t in delivered_new:
            assert t in outcome["resent"] or (
                reqs[t].complete and not reqs[t].failed)
        assert cluster.conservation_ok(allow_faults=True)


class TestUlfmSurface:
    def make_trio(self):
        params = EngineParams(**EPOCH)
        sim, cluster, engines = make_pair(params, n_nodes=3)
        world = Communicator([0, 1, 2])
        mpis = [MadMpi(engines[i], world) for i in range(3)]
        return sim, cluster, engines, world, mpis

    def test_peer_death_surfaces_then_revoke_and_shrink(self):
        sim, cluster, engines, world, (m0, m1, m2) = self.make_trio()
        cluster.schedule_node_fault(2, FaultPlan(node_crash_at=2.0))
        outcome = {}

        def app():
            req = m0.isend(b"x" * 4096, dest=2, tag=1)
            while not req.complete and sim.now < 3_000.0:
                yield sim.timeout(10.0)
            # PeerDeadError flows through the MPI request surface.
            assert req.failed
            assert isinstance(req.error, PeerDeadError)
            # ULFM step 1: revoke fences the whole communicator locally.
            world.revoke()
            with pytest.raises(CommRevokedError):
                m0.isend(b"y", dest=1)
            with pytest.raises(CommRevokedError):
                m1.irecv(source=0)
            # ULFM step 2: shrink to the survivors and carry on.
            shrunk = world.shrink(engines[0].sessions.dead_peers())
            assert tuple(shrunk.ranks_to_nodes) == (0, 1)
            rreq = m1.irecv(source=0, tag=0, comm=shrunk)
            m0.isend(b"fresh start", dest=1, tag=0, comm=shrunk)
            while not rreq.complete and sim.now < 4_000.0:
                yield sim.timeout(10.0)
            outcome["rreq"] = rreq

        sim.spawn(app())
        sim.run(until=4_500.0)
        rreq = outcome["rreq"]
        assert rreq.complete and not rreq.failed
        assert rreq.data.tobytes() == b"fresh start"
        assert engines[0].sessions.dead_peers() == [2]

    def test_shrink_refuses_an_empty_communicator(self):
        world = Communicator([0, 1])
        from repro.errors import MpiError
        with pytest.raises(MpiError):
            world.shrink([0, 1])

"""Tests for the three dispatch policies of paper §3.2.

"While any multiplexing unit is available, the communication requests are
just accumulated [on_idle].  Another possibility would be to prepare a
single ready-to-send packet to anticipate for any upcoming completion ...
and immediately re-feed it once it becomes idle [anticipate].  A third
possibility would be to run the optimization function unconditionally once
the packet backlog has reached a predefined threshold length [backlog]."
"""

import pytest

from repro.core import EngineParams, NmadEngine, VirtualData
from repro.netsim import Cluster, MX_MYRI10G, QUADRICS_QM500
from repro.sim import Simulator


def make(params, rails=(MX_MYRI10G,)):
    sim = Simulator()
    cluster = Cluster(sim, rails=rails)
    e0 = NmadEngine(cluster.node(0), params=params)
    e1 = NmadEngine(cluster.node(1), params=params)
    return sim, cluster, e0, e1


def busy_then_burst(sim, e0, e1, n_burst=6, seg=128):
    """Occupy the NIC with one large eager send, then burst small ones."""

    def app():
        recvs = [e1.irecv(src=0, tag=i) for i in range(n_burst + 1)]
        e0.isend(1, VirtualData(24_000), tag=0)   # NIC busy ~20us
        yield sim.timeout(1.0)
        for i in range(1, n_burst + 1):
            e0.isend(1, VirtualData(seg), tag=i)
            yield sim.timeout(0.2)
        yield sim.all_of([r.done for r in recvs])
        return sim.now

    return sim.run_process(app())


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="dispatch policy"):
            EngineParams(dispatch_policy="eager_beaver")

    def test_bad_backlog_threshold(self):
        with pytest.raises(ValueError):
            EngineParams(backlog_flush_threshold=0)

    def test_negative_anticipated_cost(self):
        with pytest.raises(ValueError):
            EngineParams(anticipated_pull_cost_us=-1.0)


class TestAnticipate:
    def test_prepared_packet_used_on_idle(self):
        params = EngineParams(dispatch_policy="anticipate")
        sim, _, e0, e1 = make(params)
        busy_then_burst(sim, e0, e1)
        assert e0.stats.anticipated_hits >= 1
        assert e0.quiesced() and e1.quiesced()

    def test_on_idle_never_anticipates(self):
        params = EngineParams(dispatch_policy="on_idle")
        sim, _, e0, e1 = make(params)
        busy_then_burst(sim, e0, e1)
        assert e0.stats.anticipated_hits == 0

    def test_anticipation_saves_critical_path_time(self):
        # Make the pull cost expensive so the saving is unambiguous, and
        # measure when the *burst* lands (the big send's receive copy would
        # otherwise dominate the makespan and hide the refill saving).
        def run(policy):
            # Receive-side copies are disabled so the serialized copy queue
            # (dominated by the 24KB opener) does not mask the refill delta.
            params = EngineParams(dispatch_policy=policy, pull_cost_us=2.0,
                                  anticipated_pull_cost_us=0.05,
                                  eager_copy_on_recv=False)
            sim, _, e0, e1 = make(params)

            def app():
                e1.irecv(src=0, tag=0)
                burst_recvs = [e1.irecv(src=0, tag=i) for i in range(1, 7)]
                e0.isend(1, VirtualData(24_000), tag=0)
                yield sim.timeout(1.0)
                for i in range(1, 7):
                    e0.isend(1, VirtualData(128), tag=i)
                yield sim.all_of([r.done for r in burst_recvs])
                return sim.now

            return sim.run_process(app())

        t_anticipate, t_on_idle = run("anticipate"), run("on_idle")
        assert t_anticipate < t_on_idle
        # The net saving is the pull-cost delta per refill *minus* the cost
        # of the extra packet anticipation's early freeze can introduce.
        assert t_on_idle - t_anticipate > 0.5

    def test_anticipated_contents_frozen_early(self):
        # A submit that lands after preparation cannot join the prepared
        # packet — the cost of anticipation the paper's design discussion
        # implies.  With on_idle it would have joined the aggregate.
        def packets(policy):
            params = EngineParams(dispatch_policy=policy)
            sim, _, e0, e1 = make(params)

            def app():
                recvs = [e1.irecv(src=0, tag=i) for i in range(3)]
                e0.isend(1, VirtualData(24_000), tag=0)
                yield sim.timeout(1.0)
                e0.isend(1, VirtualData(64), tag=1)   # prepared here
                yield sim.timeout(5.0)                 # NIC still busy
                e0.isend(1, VirtualData(64), tag=2)   # too late to join?
                yield sim.all_of([r.done for r in recvs])

            sim.run_process(app())
            return e0.stats.phys_packets

        assert packets("anticipate") >= packets("on_idle")

    def test_correctness_preserved_with_content(self):
        params = EngineParams(dispatch_policy="anticipate")
        sim, _, e0, e1 = make(params)
        payloads = [bytes([i]) * 200 for i in range(8)]

        def app():
            recvs = [e1.irecv(src=0, tag=i) for i in range(8)]
            e0.isend(1, VirtualData(24_000), tag=100)
            r_big = e1.irecv(src=0, tag=100)
            yield sim.timeout(0.5)
            for i, p in enumerate(payloads):
                e0.isend(1, p, tag=i)
                yield sim.timeout(0.3)
            yield sim.all_of([r.done for r in recvs + [r_big]])
            return recvs

        recvs = sim.run_process(app())
        for i, r in enumerate(recvs):
            assert r.data.tobytes() == payloads[i]

    def test_anticipated_rdv_announcement_streams_correctly(self):
        params = EngineParams(dispatch_policy="anticipate")
        sim, _, e0, e1 = make(params)
        big = bytes(i % 256 for i in range(100_000))

        def app():
            r_first = e1.irecv(src=0, tag=0)
            r_big = e1.irecv(src=0, tag=1)
            e0.isend(1, VirtualData(24_000), tag=0)   # NIC busy
            yield sim.timeout(0.5)
            e0.isend(1, big, tag=1)                    # anticipated announce
            yield sim.all_of([r_first.done, r_big.done])
            return r_big

        r_big = sim.run_process(app())
        assert r_big.data.tobytes() == big
        assert e0.quiesced()

    def test_multirail_anticipation_uses_strictest_threshold(self):
        # Prepared aggregates must be legal on *any* rail, i.e. sized
        # against the smallest rendezvous threshold (Quadrics' 16K).
        params = EngineParams(dispatch_policy="anticipate")
        sim, _, e0, e1 = make(params, rails=(MX_MYRI10G, QUADRICS_QM500))
        n = 4
        seg = 6 * 1024  # 4 x 6K = 24K: fits MX's 32K, not Quadrics' 16K

        def app():
            recvs = [e1.irecv(src=0, tag=i) for i in range(n + 2)]
            e0.isend(1, VirtualData(14_000), tag=0, rail=0)
            e0.isend(1, VirtualData(14_000), tag=1, rail=1)  # both rails busy
            yield sim.timeout(0.5)
            for i in range(2, n + 2):
                e0.isend(1, VirtualData(seg), tag=i)
            yield sim.all_of([r.done for r in recvs])

        sim.run_process(app())
        # No single eager frame's payload may exceed 16K.
        for nic in e0.node.nics:
            pass  # frame-level check below via stats
        assert e0.stats.eager_bytes == 14_000 * 2 + n * seg
        assert e0.quiesced()


class TestBacklogPolicy:
    def test_backlog_prepares_only_past_threshold(self):
        params = EngineParams(dispatch_policy="backlog",
                              backlog_flush_threshold=4)
        sim, _, e0, e1 = make(params)

        def app():
            recvs = [e1.irecv(src=0, tag=i) for i in range(4)]
            e0.isend(1, VirtualData(24_000), tag=0)
            yield sim.timeout(0.5)
            # Two waiting wraps: below the threshold, no anticipation.
            e0.isend(1, VirtualData(64), tag=1)
            e0.isend(1, VirtualData(64), tag=2)
            yield sim.timeout(0.1)
            below = e0.transfer.has_anticipated
            # A third waiting wrap crosses threshold 4?  Window holds 3
            # (the large one already left), so still below...
            e0.isend(1, VirtualData(64), tag=3)
            yield sim.timeout(0.1)
            crossed = e0.transfer.has_anticipated
            yield sim.all_of([r.done for r in recvs])
            return below, crossed

        below, crossed = sim.run_process(app())
        assert below is False
        # Threshold is 4 waiting wraps; after the third small send the
        # window held 3 wraps, still below.
        assert crossed is False
        assert e0.stats.anticipated_hits == 0

    def test_backlog_flushes_at_threshold(self):
        params = EngineParams(dispatch_policy="backlog",
                              backlog_flush_threshold=3)
        sim, _, e0, e1 = make(params)

        def app():
            recvs = [e1.irecv(src=0, tag=i) for i in range(5)]
            e0.isend(1, VirtualData(24_000), tag=0)
            yield sim.timeout(0.5)
            for i in range(1, 5):
                e0.isend(1, VirtualData(64), tag=i)
            yield sim.timeout(0.1)
            anticipated = e0.transfer.has_anticipated
            yield sim.all_of([r.done for r in recvs])
            return anticipated

        assert sim.run_process(app()) is True
        assert e0.stats.anticipated_hits == 1
        assert e0.quiesced()

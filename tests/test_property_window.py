"""Property test: the window's incremental counters never drift.

The rewritten :class:`~repro.core.window.OptimizationWindow` maintains its
byte/wrap totals (global, per rail, per destination) incrementally on
submit/take instead of recomputing them — that is the whole point of the
O(1) accounting overhaul, and also exactly the kind of code where a missed
decrement corrupts scheduling decisions silently.  This test drives random
interleavings of every mutating operation (``submit``, ``take``,
``drain_matching``, ``restore`` — the cancel-unwind path) over multiple
rails and destinations, and after each step compares every query against a
brute-force recomputation from the window's raw contents.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import VirtualData
from repro.core.packet import PacketWrap
from repro.core.window import OptimizationWindow

N_RAILS = 3
DESTS = (1, 2, 5)


def _brute_force_check(win: OptimizationWindow, live: list) -> None:
    """Assert every O(1) answer equals a recomputation from the shadow model.

    ``live`` is the shadow's insertion-ordered list of in-window wraps
    (restore() re-queues at the tail, which the shadow mirrors by
    appending).
    """
    assert sorted(w.wrap_id for w in win._all()) == \
        sorted(w.wrap_id for w in live)
    assert len(win) == len(live)
    assert win.empty == (not live)
    assert win.backlog() == len(live)
    assert win.pending_bytes() == sum(w.length for w in live)

    for rail in range(win.n_rails):
        dedicated = [w for w in live if w.rail == rail]
        common = [w for w in live if w.rail is None]
        # eligible() yields dedicated-then-common, each in insertion order.
        assert list(win.eligible(rail)) == dedicated + common
        assert win.pending_bytes(rail) == \
            sum(w.length for w in dedicated + common)

    for dest in set(w.dest for w in live) | set(DESTS):
        towards = [w for w in live if w.dest == dest]
        assert win.backlog(dest) == len(towards)
        assert win.backlog_bytes(dest) == sum(w.length for w in towards)
        for rail in range(win.n_rails):
            # Same pinned-first-then-common contract as eligible().
            expected = [w for w in towards if w.rail == rail] + \
                       [w for w in towards if w.rail is None]
            assert win.eligible_for_dest(rail, dest) == expected

    assert sorted(win.dests()) == sorted(set(w.dest for w in live))


# One random step: (action selector, dest choice, rail pin, size, index pick)
STEP = st.tuples(
    st.integers(0, 99),
    st.sampled_from(DESTS),
    st.one_of(st.none(), st.integers(0, N_RAILS - 1)),
    st.integers(1, 4096),
    st.integers(0, 1_000_000),
)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=60))
def test_incremental_counters_match_brute_force(steps):
    win = OptimizationWindow(N_RAILS)
    live: list[PacketWrap] = []     # wraps currently in the window
    parked: list[PacketWrap] = []   # taken wraps eligible for restore()
    seq = 0

    for action, dest, rail, size, pick in steps:
        if action < 45 or not live:
            # submit: fresh wrap, possibly pinned to a rail
            wrap = PacketWrap(dest=dest, flow=0, tag=0, seq=seq,
                              data=VirtualData(size), rail=rail)
            seq += 1
            win.submit(wrap)
            live.append(wrap)
        elif action < 70:
            # take: a strategy commits an arbitrary live wrap
            wrap = live.pop(pick % len(live))
            win.take(wrap)
            parked.append(wrap)
        elif action < 85:
            # drain_matching: error-path bulk removal by destination
            gone = win.drain_matching(lambda w, dest=dest: w.dest == dest)
            assert sorted(w.wrap_id for w in gone) == sorted(
                w.wrap_id for w in live if w.dest == dest)
            live = [w for w in live if w.dest != dest]
            parked.extend(gone)
        elif parked:
            # restore: the cancel path unwinds an anticipated packet
            wrap = parked.pop(pick % len(parked))
            win.restore(wrap)
            live.append(wrap)

        _brute_force_check(win, live)

    # peak_wraps is a high-water mark over the whole history; it can only
    # have been observed at some point, so it bounds the final occupancy.
    assert win.peak_wraps >= len(live)
    assert win.total_submitted == seq

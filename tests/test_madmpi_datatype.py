"""Unit tests for MPI derived datatypes (typemap algebra, pack/unpack)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatatypeError
from repro.madmpi import (
    BYTE,
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    Struct,
    Vector,
    indexed_small_large,
)


class TestByte:
    def test_byte_basics(self):
        assert BYTE.size == 1
        assert BYTE.extent == 1
        assert BYTE.flatten() == [(0, 1)]
        assert BYTE.is_contiguous


class TestContiguous:
    def test_contiguous_merges_to_one_block(self):
        t = Contiguous(100)
        assert t.size == 100
        assert t.extent == 100
        assert t.flatten() == [(0, 100)]
        assert t.is_contiguous

    def test_mul_operator(self):
        t = 64 * BYTE
        assert isinstance(t, Contiguous)
        assert t.size == 64
        assert (BYTE * 3).size == 3

    def test_nested_contiguous(self):
        t = Contiguous(4, Contiguous(25))
        assert t.flatten() == [(0, 100)]

    def test_zero_count(self):
        t = Contiguous(0)
        assert t.size == 0
        assert t.flatten() == []
        assert t.extent == 0

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            Contiguous(-1)


class TestVector:
    def test_vector_blocks(self):
        # 3 blocks of 2 bytes, stride 4 bytes: [0,2) [4,6) [8,10)
        t = Vector(3, 2, 4)
        assert t.flatten() == [(0, 2), (4, 2), (8, 2)]
        assert t.size == 6
        assert t.extent == 10
        assert not t.is_contiguous

    def test_vector_stride_equal_blocklen_is_contiguous(self):
        t = Vector(5, 4, 4)
        assert t.flatten() == [(0, 20)]
        assert t.is_contiguous

    def test_hvector_byte_stride(self):
        t = Hvector(2, 3, 10)
        assert t.flatten() == [(0, 3), (10, 3)]

    def test_vector_of_vectors(self):
        inner = Vector(2, 1, 2)       # bytes at 0 and 2, extent 3
        outer = Hvector(2, 1, 8, inner)
        assert outer.flatten() == [(0, 1), (2, 1), (8, 1), (10, 1)]


class TestIndexed:
    def test_indexed_blocks(self):
        t = Indexed([2, 3], [0, 5])
        assert t.flatten() == [(0, 2), (5, 3)]
        assert t.size == 5
        assert t.extent == 8

    def test_hindexed_unsorted_displacements_normalize(self):
        t = Hindexed([2, 2], [10, 0])
        assert t.flatten() == [(0, 2), (10, 2)]

    def test_adjacent_blocks_merge(self):
        t = Hindexed([4, 4], [0, 4])
        assert t.flatten() == [(0, 8)]

    def test_overlap_rejected(self):
        t = Hindexed([4, 4], [0, 2])
        with pytest.raises(DatatypeError, match="overlap"):
            t.flatten()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatatypeError):
            Hindexed([1, 2], [0])

    def test_indexed_scales_by_base_extent(self):
        base = Contiguous(4)
        t = Indexed([1, 1], [0, 2], base)   # displacements 0 and 8 bytes
        assert t.flatten() == [(0, 4), (8, 4)]


class TestStruct:
    def test_struct_heterogeneous(self):
        t = Struct([1, 2], [0, 10], [Contiguous(4), Contiguous(3)])
        assert t.flatten() == [(0, 4), (10, 6)]

    def test_struct_validation(self):
        with pytest.raises(DatatypeError):
            Struct([1], [0, 1], [BYTE, BYTE])


class TestPackUnpack:
    def test_pack_gathers_typed_bytes(self):
        t = Indexed([2, 2], [0, 4])
        buf = bytes(range(8))
        assert t.pack(buf) == bytes([0, 1, 4, 5])

    def test_unpack_scatters_and_leaves_gaps(self):
        t = Indexed([2, 2], [0, 4])
        buf = bytearray(b"\xff" * 8)
        t.unpack(b"ABCD", buf)
        assert bytes(buf) == b"AB\xff\xffCD\xff\xff"

    def test_roundtrip(self):
        t = Vector(4, 3, 7)
        buf = bytes(range(t.extent))
        packed = t.pack(buf)
        out = bytearray(t.extent)
        t.unpack(packed, out)
        for disp, length in t.flatten():
            assert out[disp:disp + length] == buf[disp:disp + length]

    def test_pack_buffer_too_small(self):
        with pytest.raises(DatatypeError, match="smaller than extent"):
            Contiguous(10).pack(b"short")

    def test_unpack_wrong_size(self):
        with pytest.raises(DatatypeError, match="packed data"):
            Contiguous(4).unpack(b"toolong", bytearray(4))

    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 30)),
                    min_size=1, max_size=10))
    def test_property_pack_size_matches_datatype_size(self, spec):
        # Build non-overlapping blocks by accumulating displacements.
        blocklens, displs = [], []
        cursor = 0
        for length, gap in spec:
            displs.append(cursor + gap)
            blocklens.append(length)
            cursor += gap + length
        t = Hindexed(blocklens, displs)
        buf = bytes(range(256)) * (t.extent // 256 + 1)
        packed = t.pack(buf[:t.extent])
        assert len(packed) == t.size == sum(blocklens)


class TestPaperDatatype:
    def test_fig4_shape(self):
        t = indexed_small_large(repeats=2)
        flat = t.flatten()
        assert [l for _, l in flat] == [64, 256 * 1024, 64, 256 * 1024]
        assert t.size == 2 * (64 + 256 * 1024)

    def test_fig4_noncontiguous(self):
        assert not indexed_small_large(1).is_contiguous

    def test_fig4_validation(self):
        with pytest.raises(DatatypeError):
            indexed_small_large(0)

    def test_fig4_custom_sizes(self):
        t = indexed_small_large(repeats=1, small=8, large=100, gap=4)
        assert t.flatten() == [(0, 8), (12, 100)]
